//! The two-pass assembler.

use crate::parse::{as_cond, parse_line, Token};
use risc1_core::Program;
use risc1_isa::insn::{IMM13_MAX, IMM13_MIN, IMM19_MAX, IMM19_MIN};
use risc1_isa::{Category, Instruction, Opcode, Reg, Short2, INSN_BYTES};
use std::collections::HashMap;
use std::fmt;

/// An assembly failure, with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// One item scheduled for pass 2.
enum Item {
    Insn { line: usize, insn: PendingInsn },
    Word(u32),
}

/// An instruction that may still contain an unresolved label.
enum PendingInsn {
    Ready(Instruction),
    /// `jmpr cond, label` / `callr link, label` — resolved in pass 2.
    Relative {
        op: Opcode,
        cond_or_link: CondOrLink,
        label: String,
    },
    /// `li` expansion (already sized; 1 or 2 instructions).
    Seq(Vec<Instruction>),
}

enum CondOrLink {
    Cond(risc1_isa::Cond),
    Link(Reg),
}

/// Assembles RISC I source text into a loadable [`Program`].
///
/// # Errors
/// Returns an [`AsmError`] naming the offending source line for syntax
/// errors, unknown mnemonics, bad operand shapes, out-of-range immediates,
/// duplicate or undefined labels, and `{scc}` on non-ALU instructions.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let err = |line: usize, message: String| AsmError { line, message };

    // Pass 1: parse, size, and collect labels.
    let mut items: Vec<Item> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut entry_label: Option<(usize, String)> = None;
    let mut offset: u32 = 0;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = parse_line(raw).map_err(|e| err(lineno, e.0))?;
        if let Some(label) = line.label {
            if labels.insert(label.clone(), offset).is_some() {
                return Err(err(lineno, format!("duplicate label `{label}`")));
            }
        }
        let Some(op) = line.op else { continue };
        match op.as_str() {
            ".entry" => match line.args.as_slice() {
                [Token::Sym(s)] => entry_label = Some((lineno, s.clone())),
                _ => return Err(err(lineno, ".entry takes one label".into())),
            },
            ".word" => match line.args.as_slice() {
                [Token::Imm(v)] => {
                    items.push(Item::Word(*v as u32));
                    offset += INSN_BYTES;
                }
                _ => return Err(err(lineno, ".word takes one immediate".into())),
            },
            _ => {
                let insn = translate(lineno, &op, &line.args, line.scc, offset)?;
                let words = match &insn {
                    PendingInsn::Seq(v) => v.len() as u32,
                    _ => 1,
                };
                items.push(Item::Insn { line: lineno, insn });
                offset += words * INSN_BYTES;
            }
        }
    }

    // Pass 2: resolve labels and encode.
    let mut prog = Program {
        symbols: labels.clone(),
        ..Program::default()
    };
    let mut pos: u32 = 0;
    for item in items {
        match item {
            Item::Word(w) => {
                prog.words.push(w);
                pos += INSN_BYTES;
            }
            Item::Insn { line, insn } => match insn {
                PendingInsn::Ready(i) => {
                    prog.words.push(i.encode());
                    pos += INSN_BYTES;
                }
                PendingInsn::Seq(seq) => {
                    for i in seq {
                        prog.words.push(i.encode());
                        pos += INSN_BYTES;
                    }
                }
                PendingInsn::Relative {
                    op,
                    cond_or_link,
                    label,
                } => {
                    let target = *labels
                        .get(&label)
                        .ok_or_else(|| err(line, format!("undefined label `{label}`")))?;
                    let delta = target as i64 - pos as i64;
                    if delta < IMM19_MIN as i64 || delta > IMM19_MAX as i64 {
                        return Err(err(line, format!("branch to `{label}` out of range")));
                    }
                    let i = match cond_or_link {
                        CondOrLink::Cond(c) => Instruction::jmpr(c, delta as i32),
                        CondOrLink::Link(r) => Instruction::callr(r, delta as i32),
                    };
                    debug_assert_eq!(i.opcode, op);
                    prog.words.push(i.encode());
                    pos += INSN_BYTES;
                }
            },
        }
    }

    if let Some((lineno, label)) = entry_label {
        prog.entry_offset = *labels
            .get(&label)
            .ok_or_else(|| err(lineno, format!("undefined entry label `{label}`")))?;
    }
    Ok(prog)
}

/// Translates one mnemonic + operand list into a pending instruction.
fn translate(
    lineno: usize,
    op: &str,
    args: &[Token],
    scc: bool,
    offset: u32,
) -> Result<PendingInsn, AsmError> {
    let err = |message: String| AsmError {
        line: lineno,
        message,
    };
    let reg = |t: &Token| match t {
        Token::Reg(r) => Ok(*r),
        other => Err(err(format!("expected register, got {other:?}"))),
    };
    let s2 = |t: &Token| match t {
        Token::Reg(r) => Ok(Short2::Reg(*r)),
        Token::Imm(v) => {
            if (IMM13_MIN as i64..=IMM13_MAX as i64).contains(v) {
                Ok(Short2::imm(*v as i32).expect("checked range"))
            } else {
                Err(err(format!("immediate {v} exceeds 13 bits")))
            }
        }
        other => Err(err(format!("expected register or #imm, got {other:?}"))),
    };
    let imm19 = |t: &Token| match t {
        Token::Imm(v) if (IMM19_MIN as i64..=IMM19_MAX as i64).contains(v) => Ok(*v as i32),
        Token::Imm(v) => Err(err(format!("immediate {v} exceeds 19 bits"))),
        other => Err(err(format!("expected #imm, got {other:?}"))),
    };

    // Pseudo-instructions first.
    match op {
        "nop" => {
            if !args.is_empty() {
                return Err(err("nop takes no operands".into()));
            }
            return Ok(PendingInsn::Ready(Instruction::nop()));
        }
        "halt" => {
            if !args.is_empty() {
                return Err(err("halt takes no operands".into()));
            }
            return Ok(PendingInsn::Ready(Instruction::ret(Reg::R0, Short2::ZERO)));
        }
        "mov" => {
            if args.len() != 2 {
                return Err(err("mov takes `rd, rs`".into()));
            }
            let (d, s) = (reg(&args[0])?, reg(&args[1])?);
            return Ok(PendingInsn::Ready(Instruction::reg(
                Opcode::Add,
                d,
                s,
                Short2::ZERO,
            )));
        }
        "li" => {
            if args.len() != 2 {
                return Err(err("li takes `rd, #imm32`".into()));
            }
            let d = reg(&args[0])?;
            let v = match &args[1] {
                Token::Imm(v) if (i64::from(i32::MIN)..=u32::MAX as i64).contains(v) => *v as u32,
                other => return Err(err(format!("li needs a 32-bit immediate, got {other:?}"))),
            };
            return Ok(PendingInsn::Seq(Instruction::load_constant(d, v)));
        }
        _ => {}
    }

    let opcode =
        Opcode::from_mnemonic(op).ok_or_else(|| err(format!("unknown mnemonic `{op}`")))?;
    if scc && !matches!(opcode.category(), Category::Arithmetic | Category::Shift) {
        return Err(err(format!("`{op}` cannot set condition codes")));
    }

    let insn = match opcode {
        // Three-operand short format.
        o if matches!(
            o.category(),
            Category::Arithmetic | Category::Shift | Category::Load | Category::Store
        ) =>
        {
            if args.len() != 3 {
                return Err(err(format!("`{op}` takes `rd, rs1, s2`")));
            }
            let i = Instruction::reg(o, reg(&args[0])?, reg(&args[1])?, s2(&args[2])?);
            Instruction { scc, ..i }
        }
        Opcode::Jmp => {
            if args.len() != 3 {
                return Err(err("jmp takes `cond, rs1, s2`".into()));
            }
            let c = as_cond(&args[0]).ok_or_else(|| err("bad jump condition".into()))?;
            Instruction::jmp(c, reg(&args[1])?, s2(&args[2])?)
        }
        Opcode::Jmpr => {
            if args.len() != 2 {
                return Err(err("jmpr takes `cond, label|#offset`".into()));
            }
            let c = as_cond(&args[0]).ok_or_else(|| err("bad jump condition".into()))?;
            match &args[1] {
                Token::Sym(label) => {
                    return Ok(PendingInsn::Relative {
                        op: opcode,
                        cond_or_link: CondOrLink::Cond(c),
                        label: label.clone(),
                    })
                }
                t => Instruction::jmpr(c, imm19(t)?),
            }
        }
        Opcode::Call => {
            if args.len() != 3 {
                return Err(err("call takes `link, rs1, s2`".into()));
            }
            Instruction::call(reg(&args[0])?, reg(&args[1])?, s2(&args[2])?)
        }
        Opcode::Callr => {
            if args.len() != 2 {
                return Err(err("callr takes `link, label|#offset`".into()));
            }
            let link = reg(&args[0])?;
            match &args[1] {
                Token::Sym(label) => {
                    return Ok(PendingInsn::Relative {
                        op: opcode,
                        cond_or_link: CondOrLink::Link(link),
                        label: label.clone(),
                    })
                }
                t => Instruction::callr(link, imm19(t)?),
            }
        }
        Opcode::Ret | Opcode::Reti => {
            if args.len() != 2 {
                return Err(err(format!("`{op}` takes `rs1, s2`")));
            }

            Instruction::reg(opcode, Reg::R0, reg(&args[0])?, s2(&args[1])?)
        }
        Opcode::Calli | Opcode::Gtlpc | Opcode::Getpsw => {
            if args.len() != 1 {
                return Err(err(format!("`{op}` takes `rd`")));
            }
            Instruction::reg(opcode, reg(&args[0])?, Reg::R0, Short2::ZERO)
        }
        Opcode::Putpsw => {
            if args.len() != 2 {
                return Err(err("putpsw takes `rs1, s2`".into()));
            }
            Instruction::reg(opcode, Reg::R0, reg(&args[0])?, s2(&args[1])?)
        }
        Opcode::Ldhi => {
            if args.len() != 2 {
                return Err(err("ldhi takes `rd, #imm19`".into()));
            }
            let d = reg(&args[0])?;
            match &args[1] {
                Token::Imm(v) if (0..(1i64 << 19)).contains(v) => Instruction::ldhi(d, *v as u32),
                other => return Err(err(format!("ldhi needs 19-bit payload, got {other:?}"))),
            }
        }
        _ => return Err(err(format!("`{op}` not handled"))),
    };
    let _ = offset; // reserved for future pc-relative short operands
    Ok(PendingInsn::Ready(insn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_core::{Cpu, SimConfig};
    use risc1_isa::Cond;

    #[test]
    fn assembles_every_mnemonic_shape() {
        let src = "
            start:  add   r16, r26, #40 {scc}
                    sub   r17, r16, r17
                    sll   r18, r16, #2
                    ldl   r19, r16, #0
                    stb   r19, r16, #3
                    jmp   ne, r19, #0
                    nop
                    jmpr  alw, start
                    nop
                    call  r25, r19, #0
                    nop
                    callr r25, start
                    nop
                    ret   r25, #8
                    nop
                    calli r16
                    reti  r25, #8
                    nop
                    ldhi  r20, #0x7ffff
                    gtlpc r21
                    getpsw r22
                    putpsw r22, #0
                    halt
                    mov   r23, r16
                    li    r24, #0x12345678
                    .word 0xdeadbeef
        ";
        let prog = assemble(src).expect("assembles");
        assert_eq!(prog.symbols["start"], 0);
        // li expands to 2 words; .word is one raw word.
        assert_eq!(prog.words.last().copied(), Some(0xdead_beef));
    }

    #[test]
    fn label_arithmetic_forward_and_back() {
        let src = "
                jmpr alw, fwd   ; offset +12
                nop
            back: nop
            fwd:  jmpr alw, back ; offset -4
                nop
        ";
        let prog = assemble(src).unwrap();
        let first = Instruction::decode(prog.words[0]).unwrap();
        assert_eq!(first, Instruction::jmpr(Cond::Alw, 12));
        let fourth = Instruction::decode(prog.words[3]).unwrap();
        assert_eq!(fourth, Instruction::jmpr(Cond::Alw, -4));
    }

    #[test]
    fn entry_directive_sets_offset() {
        let src = "
            .entry main
            helper: nop
            main:   halt
        ";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.entry_offset, 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("add r16, r0, #99999").unwrap_err();
        assert!(e.message.contains("13 bits"));

        let e = assemble("jmpr alw, nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = assemble("ldl r1, r2, #0 {scc}\n").unwrap_err();
        assert!(e.message.contains("condition codes"));
    }

    #[test]
    fn assembled_program_runs_correctly() {
        // Triangular numbers via a loop with a useful delay slot.
        let src = "
                add   r16, r0, #0        ; acc
                add   r17, r26, #0       ; i := arg
            loop: sub r0, r17, #0 {scc}
                jmpr  eq, done
                nop
                add   r16, r16, r17
                jmpr  alw, loop
                sub   r17, r17, #1       ; delay slot decrements i
            done: add r26, r16, #0
                halt
                nop
        ";
        let prog = assemble(src).unwrap();
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&prog).unwrap();
        cpu.set_args(&[10]);
        cpu.run().unwrap();
        assert_eq!(cpu.result(), 55);
        let stats = cpu.stats();
        assert!(
            stats.delay_slot_fill_rate().unwrap() > 0.0,
            "slots were filled"
        );
    }

    #[test]
    fn li_small_constant_is_one_word() {
        let p1 = assemble("li r16, #5\nhalt\n").unwrap();
        let p2 = assemble("li r16, #0x123456\nhalt\n").unwrap();
        assert_eq!(p1.words.len(), 2);
        assert_eq!(p2.words.len(), 3);
    }
}
