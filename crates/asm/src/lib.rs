//! # `risc1-asm` — assembler and disassembler for RISC I
//!
//! A two-pass assembler for the textual RISC I assembly used throughout the
//! examples and the CLI, plus the inverse disassembler. The syntax mirrors
//! the instruction `Display` form of [`risc1_isa`]:
//!
//! ```text
//! ; triangular numbers: t(n) = n + (n-1) + ... + 1
//!         add   r16, r0, #0        ; acc := 0
//!         add   r17, r26, #0       ; i := n   (first argument)
//! loop:   sub   r0, r17, #0 {scc}  ; flags := i - 0
//!         jmpr  eq, done
//!         nop                      ; delay slot
//!         add   r16, r16, r17
//!         jmpr  alw, loop
//!         sub   r17, r17, #1       ; delay slot does useful work
//! done:   add   r26, r16, #0       ; return value
//!         ret   r25, #8
//!         nop
//! ```
//!
//! * one instruction or directive per line; `;` starts a comment
//! * labels end with `:` and may share a line with an instruction
//! * immediates are written `#n` (decimal, `0x` hex, negative allowed)
//! * `{scc}` after the operands asserts the set-condition-codes bit
//! * `jmpr`/`callr` accept a label and assemble the PC-relative offset
//! * pseudo-instructions: `nop`, `halt` (a `ret r0, #0`, which terminates
//!   the program at depth 0), `mov rd, rs`, and `li rd, #imm32` (expands to
//!   one or two words)
//! * directives: `.entry <label>` (program entry point), `.word <n>`
//!
//! ```
//! use risc1_asm::assemble;
//! let prog = assemble("start: add r16, r0, #1\n halt\n nop\n").unwrap();
//! assert_eq!(prog.len(), 3);
//! ```

mod asm;
mod disasm;
mod parse;

pub use asm::{assemble, AsmError};
pub use disasm::{disassemble, disassemble_words};
