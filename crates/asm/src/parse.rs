//! Line-level tokenising and operand parsing shared by the assembler.

use risc1_isa::{Cond, Reg};

/// One parsed operand token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A register, `rN`.
    Reg(Reg),
    /// An immediate, `#n`.
    Imm(i64),
    /// A bare symbol (label reference or condition name).
    Sym(String),
}

/// A source line reduced to its parts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Line {
    /// Label defined on this line, without the colon.
    pub label: Option<String>,
    /// Mnemonic or directive (lowercased), if any.
    pub op: Option<String>,
    /// Operand tokens.
    pub args: Vec<Token>,
    /// Whether the `{scc}` marker was present.
    pub scc: bool,
}

/// A parse failure with no positional info; the assembler attaches the line
/// number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

/// Splits a raw source line into label / mnemonic / operands.
pub fn parse_line(raw: &str) -> Result<Line, ParseError> {
    let mut line = Line::default();
    let code = raw.split(';').next().unwrap_or("").trim();
    if code.is_empty() {
        return Ok(line);
    }

    let mut rest = code;
    if let Some(colon) = rest.find(':') {
        let (lbl, after) = rest.split_at(colon);
        let lbl = lbl.trim();
        if !is_ident(lbl) {
            return Err(ParseError(format!("invalid label `{lbl}`")));
        }
        line.label = Some(lbl.to_string());
        rest = after[1..].trim();
    }
    if rest.is_empty() {
        return Ok(line);
    }

    if let Some(stripped) = rest.strip_suffix("{scc}") {
        line.scc = true;
        rest = stripped.trim_end();
    } else if rest.contains("{scc}") {
        return Err(ParseError("`{scc}` must come last".into()));
    }

    let (op, operands) = match rest.split_once(char::is_whitespace) {
        Some((op, tail)) => (op, tail.trim()),
        None => (rest, ""),
    };
    line.op = Some(op.to_ascii_lowercase());

    if !operands.is_empty() {
        for part in operands.split(',') {
            line.args.push(parse_token(part.trim())?);
        }
    }
    Ok(line)
}

fn parse_token(s: &str) -> Result<Token, ParseError> {
    if s.is_empty() {
        return Err(ParseError("empty operand".into()));
    }
    if let Some(imm) = s.strip_prefix('#') {
        return parse_int(imm)
            .map(Token::Imm)
            .ok_or_else(|| ParseError(format!("bad immediate `{s}`")));
    }
    if let Some(n) = s
        .strip_prefix(['r', 'R'])
        .and_then(|d| d.parse::<u8>().ok())
    {
        return Reg::new(n)
            .map(Token::Reg)
            .ok_or_else(|| ParseError(format!("no such register `{s}`")));
    }
    if is_ident(s) {
        return Ok(Token::Sym(s.to_string()));
    }
    // Bare integers (no `#`) are accepted for directives like `.word`, so
    // disassembler output reassembles unchanged.
    if let Some(v) = parse_int(s) {
        return Ok(Token::Imm(v));
    }
    Err(ParseError(format!("unrecognised operand `{s}`")))
}

/// Parses a decimal or `0x` hexadecimal integer with optional sign.
pub fn parse_int(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// Resolves a symbol token to a condition name.
pub fn as_cond(t: &Token) -> Option<Cond> {
    match t {
        Token::Sym(s) => Cond::from_name(s),
        _ => None,
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_line() {
        let l = parse_line("loop: add r16, r0, #-3 {scc} ; comment").unwrap();
        assert_eq!(l.label.as_deref(), Some("loop"));
        assert_eq!(l.op.as_deref(), Some("add"));
        assert!(l.scc);
        assert_eq!(
            l.args,
            vec![Token::Reg(Reg::R16), Token::Reg(Reg::R0), Token::Imm(-3)]
        );
    }

    #[test]
    fn blank_and_comment_lines() {
        assert_eq!(parse_line("").unwrap(), Line::default());
        assert_eq!(parse_line("   ; only a comment").unwrap(), Line::default());
    }

    #[test]
    fn label_only_line() {
        let l = parse_line("top:").unwrap();
        assert_eq!(l.label.as_deref(), Some("top"));
        assert!(l.op.is_none());
    }

    #[test]
    fn hex_and_negative_immediates() {
        assert_eq!(parse_int("0x1f"), Some(31));
        assert_eq!(parse_int("-0x10"), Some(-16));
        assert_eq!(parse_int("-12"), Some(-12));
        assert_eq!(parse_int("zz"), None);
    }

    #[test]
    fn symbols_and_conditions() {
        let l = parse_line("jmpr eq, done").unwrap();
        assert_eq!(as_cond(&l.args[0]), Some(Cond::Eq));
        assert_eq!(l.args[1], Token::Sym("done".into()));
    }

    #[test]
    fn rejects_bad_register_and_label() {
        assert!(parse_line("add r32, r0, #0").is_err());
        assert!(parse_line("3bad: nop").is_err());
        assert!(parse_line("add r1, {scc} r2, #0").is_err());
    }

    #[test]
    fn mnemonics_are_case_insensitive() {
        let l = parse_line("ADD R16, R0, #1").unwrap();
        assert_eq!(l.op.as_deref(), Some("add"));
        assert_eq!(l.args[0], Token::Reg(Reg::R16));
    }
}
