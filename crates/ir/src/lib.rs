//! # `risc1-ir` — the shared mini-C intermediate representation and its two
//! code generators
//!
//! The RISC I paper's evaluation method is: take a set of C benchmarks,
//! compile *the same source* for RISC I and for the commercial CISC
//! machines, and compare execution time, code size, instruction mix and
//! procedure-call cost. The C compilers for those machines are long gone,
//! so this crate plays their role:
//!
//! * [`ast`] — a small, C-flavoured IR: `i32` scalars, word/byte global
//!   arrays, expressions, `if`/`while`, procedure calls (≤ 6 register
//!   arguments, matching the RISC I window convention);
//! * [`interp`] — a reference interpreter, the oracle for differential
//!   testing of both backends;
//! * [`risc`] — the RISC I code generator: register-window calling
//!   convention, locals in LOCAL registers, software multiply/divide
//!   runtime (RISC I has no multiply instruction — true to the chip),
//!   and an optional delay-slot-filling peephole pass ([`delay`]);
//! * [`cx`] — the CX code generator: stack frames via `CALLS`/`RET`,
//!   memory operands, native multiply/divide — idiomatic code for a
//!   VAX-class machine;
//! * [`m68`] — the MC code generator: the same calling structure on the
//!   16-bit-word machine (`LINK`/`UNLK` frames, two-address ALU ops).
//!
//! ## Example: one source, two machines, one answer
//!
//! ```
//! use risc1_ir::ast::dsl::*;
//! use risc1_ir::{compile_cx, compile_risc, run_cx, run_risc, RiscOpts};
//!
//! // fn main(n) { return n + 2; }
//! let m = module(vec![
//!     function("main", 1, 1, vec![ret(add(local(0), konst(2)))]),
//! ], vec![]);
//!
//! let risc = compile_risc(&m, RiscOpts::default()).unwrap();
//! let cx = compile_cx(&m).unwrap();
//! assert_eq!(run_risc(&risc, &[40]).unwrap().0, 42);
//! assert_eq!(run_cx(&cx, &[40]).unwrap().0, 42);
//! ```

pub mod ast;
pub mod campaign;
pub mod cx;
pub mod delay;
pub mod interp;
pub mod layout;
pub mod m68;
pub mod rasm;
pub mod replay;
pub mod risc;
pub mod runner;
pub mod shard;
pub mod supervise;

pub use ast::{BinOp, CmpOp, Expr, Function, Global, Module, Stmt, ValidateError};
pub use campaign::{default_threads, parallel_map, parse_threads, seed_jobs};
pub use cx::compile_cx;
pub use interp::{interpret, InterpError};
pub use m68::compile_mc;
pub use replay::{
    minimize_journal, outcome_signature, record_risc_injected, recorded_outcome, replay_journal,
};
pub use risc::{compile_risc, RiscOpts};
pub use runner::{
    run_cx, run_cx_with, run_mc, run_mc_with, run_risc, run_risc_deadline, run_risc_injected,
    run_risc_resumed, run_risc_with, snapshot_risc_prefix, CodegenError, InjectOutcome,
    InjectReport, InjectSetupError, TimedOutcome,
};
pub use shard::{
    run_sharded, run_sharded_injected, run_sharded_with, ShardError, ShardPlan, ShardedReport,
    StitchError, MAX_SHARDS,
};
pub use supervise::{
    run_risc_supervised, SupervisorConfig, SupervisorOutcome, SupervisorReport, DEFAULT_CKPT_EVERY,
};
