//! Supervised execution: periodic checkpoints, a watchdog budget, and
//! rollback-to-last-checkpoint with bounded exponential-backoff retry.
//!
//! The supervisor wraps the injected run loop of
//! [`run_risc_injected`](crate::run_risc_injected) with three mechanisms:
//!
//! 1. **Checkpoint every N instructions** via an incremental
//!    [`Checkpointer`] (dirty pages only; cost modeled deterministically
//!    in cycles, never perturbing the simulated machine).
//! 2. **Rollback and retry**: a structured fault rolls the machine back to
//!    the last checkpoint and retries with a *fresh injector stream*
//!    (derived from the campaign seed and the attempt number) and an
//!    exponential **backoff** — injection is suppressed for
//!    `backoff_base << (attempt-1)` steps after each rollback, modelling a
//!    supervisor that eases off a struggling machine. Retries are bounded
//!    by `max_retries`; past that the fault surfaces.
//!
//!    A fault can manifest long after the perturbation that caused it (a
//!    flipped loop bound burns fuel for thousands of instructions first),
//!    so the *last* checkpoint may itself hold poisoned state. When a
//!    retry makes no forward progress — it faults at an instruction count
//!    no later than the previous fault — the supervisor **escalates**:
//!    the next rollback reverts all the way to the campaign baseline
//!    (snapshot id 1) instead of the latest checkpoint, trading lost work
//!    for a provably clean restart point.
//! 3. **Watchdog budget**: a total instruction budget across *all*
//!    attempts (work discarded by rollbacks counts). When it expires the
//!    run ends in [`SupervisorOutcome::WatchdogExpired`] instead of
//!    looping forever on a fault that rollback cannot clear.
//!
//! Everything is deterministic: same program, arguments, configuration
//! and campaign — same attempts, same rollbacks, same outcome.

use crate::runner::{setup_injected_cpu, InjectSetupError};
use risc1_core::{
    CheckpointStats, Checkpointer, Deadline, ExecError, ExecStats, FaultInjector, Halt,
    InjectConfig, InjectEvent, Program, SimConfig,
};

/// Default checkpoint interval, in retired instructions.
pub const DEFAULT_CKPT_EVERY: u64 = 25_000;

/// Supervisor policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Take a checkpoint every this many retired instructions.
    pub ckpt_every: u64,
    /// Maximum rollback-and-retry attempts after the first run.
    pub max_retries: u32,
    /// Backoff unit: after the k-th rollback, injection is suppressed for
    /// `backoff_base << (k-1)` steps (shift saturating at 16).
    pub backoff_base: u64,
    /// Total instruction budget across all attempts (discarded work
    /// included). `None` leaves only the per-run fuel limit.
    pub watchdog_fuel: Option<u64>,
    /// Wall-clock deadline across all attempts, polled between steps
    /// (every [`risc1_core::deadline::DEADLINE_POLL_STEPS`] steps, so it
    /// never perturbs the simulated machine). `None` leaves the run
    /// unbounded in host time. Setting it trades determinism of the
    /// *outcome kind* for liveness — the serve layer's per-job watchdog.
    pub deadline: Option<Deadline>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            ckpt_every: DEFAULT_CKPT_EVERY,
            max_retries: 8,
            backoff_base: 64,
            watchdog_fuel: None,
            deadline: None,
        }
    }
}

/// How a supervised run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorOutcome {
    /// The program reached a clean halt (possibly after rollbacks).
    Halted {
        /// The program's return value.
        result: i32,
    },
    /// Retries were exhausted; this is the final attempt's fault.
    Faulted {
        /// The fault that ended the last attempt.
        error: ExecError,
    },
    /// The cross-attempt instruction budget ran out.
    WatchdogExpired,
    /// The cross-attempt wall-clock deadline passed
    /// ([`SupervisorConfig::deadline`]).
    DeadlineExceeded,
}

/// Everything a supervised run produced.
#[derive(Debug, Clone)]
pub struct SupervisorReport {
    /// How the run ended.
    pub outcome: SupervisorOutcome,
    /// Simulator statistics of the machine at termination (the surviving
    /// timeline — rolled-back work is not in here).
    pub stats: ExecStats,
    /// Attempts made (1 = no rollback was needed).
    pub attempts: u32,
    /// Rollbacks performed (`attempts - 1`, unless setup failed).
    pub rollbacks: u32,
    /// Rollbacks that escalated past the latest checkpoint to the campaign
    /// baseline because a retry made no forward progress (the latest
    /// checkpoint may hold poisoned state). Always ≤ `rollbacks`.
    pub escalations: u32,
    /// Instructions discarded by rollbacks across all attempts.
    pub lost_instructions: u64,
    /// Checkpoint cost accounting (modeled cycles, pages/bytes copied).
    pub checkpoints: CheckpointStats,
    /// Perturbations applied across all attempts, in order.
    pub events: Vec<InjectEvent>,
}

impl SupervisorReport {
    /// True when the run halted cleanly.
    pub fn is_halted(&self) -> bool {
        matches!(self.outcome, SupervisorOutcome::Halted { .. })
    }

    /// Checkpoint overhead as a fraction of the surviving timeline's
    /// cycles: modeled checkpoint cycles / execution cycles.
    pub fn checkpoint_overhead(&self) -> f64 {
        if self.stats.cycles == 0 {
            0.0
        } else {
            self.checkpoints.modeled_cycles as f64 / self.stats.cycles as f64
        }
    }
}

/// The injector stream for attempt `k` (1-based) of a campaign: attempt 1
/// uses the campaign seed verbatim; each retry re-derives a fresh,
/// deterministic stream so a retry never replays the exact perturbation
/// sequence that just killed the machine.
fn attempt_injector(base: InjectConfig, attempt: u32) -> FaultInjector {
    let mut cfg = base;
    cfg.seed = base
        .seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(attempt - 1)));
    FaultInjector::new(cfg)
}

/// Runs a compiled RISC I program under supervision: periodic incremental
/// checkpoints, rollback-and-retry on structured faults, exponential
/// injection backoff, and an optional cross-attempt watchdog budget.
/// `inject: None` supervises a fault-free run (useful for pricing
/// checkpoint overhead alone).
///
/// # Errors
/// [`InjectSetupError`] when the run could not be arranged at all.
pub fn run_risc_supervised(
    prog: &Program,
    args: &[i32],
    cfg: SimConfig,
    inject: Option<InjectConfig>,
    recovery: bool,
    sup: SupervisorConfig,
) -> Result<SupervisorReport, InjectSetupError> {
    let mut cpu = setup_injected_cpu(prog, args, cfg, recovery)?;
    let mut ckpt = Checkpointer::new(&mut cpu);
    let baseline = ckpt.latest().clone();
    let mut injector = inject.map(|c| attempt_injector(c, 1));
    let mut attempts: u32 = 1;
    let mut rollbacks: u32 = 0;
    let mut escalations: u32 = 0;
    let mut lost: u64 = 0;
    let mut suppress: u64 = 0;
    let mut prev_fault_at: Option<u64> = None;
    let mut events: Vec<InjectEvent> = Vec::new();

    let mut polls: u64 = 0;
    let outcome = loop {
        let retired = cpu.stats().instructions;
        if let Some(budget) = sup.watchdog_fuel {
            if retired + lost >= budget {
                break SupervisorOutcome::WatchdogExpired;
            }
        }
        if let Some(d) = sup.deadline {
            if Deadline::should_poll(polls) && d.expired() {
                break SupervisorOutcome::DeadlineExceeded;
            }
        }
        polls += 1;
        if retired >= ckpt.latest().at_instruction() + sup.ckpt_every {
            ckpt.checkpoint(&mut cpu);
        }
        if suppress > 0 {
            suppress -= 1;
        } else if let Some(inj) = injector.as_mut() {
            inj.pre_step(&mut cpu);
        }
        match cpu.step() {
            Ok(Halt::Running) => {}
            Ok(Halt::Returned) => {
                break SupervisorOutcome::Halted {
                    result: cpu.result(),
                }
            }
            Err(error) => {
                if let Some(inj) = &injector {
                    events.extend_from_slice(inj.events());
                }
                if attempts > sup.max_retries {
                    break SupervisorOutcome::Faulted { error };
                }
                // No forward progress since the last rollback means the
                // latest checkpoint likely holds the corruption that is
                // killing us — escalate to the campaign baseline.
                let fault_at = cpu.stats().instructions;
                let stuck = prev_fault_at.is_some_and(|prev| fault_at <= prev);
                prev_fault_at = if stuck { None } else { Some(fault_at) };
                let restored = if stuck {
                    escalations += 1;
                    lost += fault_at.saturating_sub(baseline.at_instruction());
                    ckpt.revert_to(&mut cpu, &baseline)
                } else {
                    lost += fault_at.saturating_sub(ckpt.latest().at_instruction());
                    ckpt.rollback(&mut cpu)
                };
                if restored.is_err() {
                    // The held checkpoint itself failed verification —
                    // nothing to retry from; surface the original fault.
                    break SupervisorOutcome::Faulted { error };
                }
                rollbacks += 1;
                attempts += 1;
                injector = inject.map(|c| attempt_injector(c, attempts));
                suppress = sup.backoff_base << u64::from((attempts - 2).min(16));
            }
        }
    };
    if let Some(inj) = &injector {
        // Events of the final (non-faulting) attempt.
        if !matches!(outcome, SupervisorOutcome::Faulted { .. }) {
            events.extend_from_slice(inj.events());
        }
    }
    Ok(SupervisorReport {
        outcome,
        stats: cpu.stats(),
        attempts,
        rollbacks,
        escalations,
        lost_instructions: lost,
        checkpoints: ckpt.stats(),
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;
    use crate::risc::{compile_risc, RiscOpts};

    fn loop_program() -> Program {
        let m = module(
            vec![function(
                "main",
                1,
                3,
                vec![
                    assign(1, konst(0)),
                    assign(2, konst(0)),
                    while_loop(
                        lt(local(2), local(0)),
                        vec![
                            assign(1, add(local(1), local(2))),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    ret(local(1)),
                ],
            )],
            vec![],
        );
        compile_risc(&m, RiscOpts::default()).unwrap()
    }

    #[test]
    fn unsupervised_result_is_preserved_and_checkpoints_happen() {
        let prog = loop_program();
        let (clean, stats) = crate::run_risc(&prog, &[500]).unwrap();
        let report = run_risc_supervised(
            &prog,
            &[500],
            SimConfig::default(),
            None,
            false,
            SupervisorConfig {
                ckpt_every: 200,
                ..SupervisorConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcome, SupervisorOutcome::Halted { result: clean });
        assert_eq!(report.stats, stats, "checkpointing must not perturb");
        assert_eq!(report.attempts, 1);
        assert_eq!(report.rollbacks, 0);
        assert!(report.checkpoints.checkpoints > 0);
        assert!(report.checkpoint_overhead() >= 0.0);
    }

    #[test]
    fn supervisor_is_deterministic() {
        let prog = loop_program();
        let inject = Some(InjectConfig::with_seed(11));
        let run = || {
            run_risc_supervised(
                &prog,
                &[300],
                SimConfig::default(),
                inject,
                true,
                SupervisorConfig {
                    ckpt_every: 500,
                    ..SupervisorConfig::default()
                },
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn watchdog_bounds_hopeless_retries() {
        let prog = loop_program();
        // An absurd injection rate guarantees recurring faults; the
        // watchdog must end the run rather than retrying forever.
        let report = run_risc_supervised(
            &prog,
            &[10_000],
            SimConfig::default(),
            Some(InjectConfig {
                seed: 5,
                rate: 2_000,
                ..InjectConfig::with_seed(5)
            }),
            false,
            SupervisorConfig {
                ckpt_every: 1_000,
                max_retries: u32::MAX,
                backoff_base: 1,
                watchdog_fuel: Some(30_000),
                deadline: None,
            },
        )
        .unwrap();
        match report.outcome {
            SupervisorOutcome::WatchdogExpired => {
                assert!(report.stats.instructions + report.lost_instructions >= 30_000);
            }
            // Acceptable alternates under extreme rates: the machine dies
            // of its own fuel, or even squeaks through. No deadline is
            // configured here, so that arm is unreachable.
            SupervisorOutcome::Faulted { .. }
            | SupervisorOutcome::Halted { .. }
            | SupervisorOutcome::DeadlineExceeded => {}
        }
    }
}
