//! The delay-slot-filling peephole pass.
//!
//! RISC I's delayed jumps expose one instruction slot after every transfer;
//! a naive compiler leaves a NOP there, a good one moves useful work in.
//! The paper reports its optimizer filled most slots. This pass implements
//! the classic safe transformation: hoist the instruction *preceding* a
//! PC-relative jump into its slot.
//!
//! The move `[X, jmpr, nop] → [jmpr, X]` is semantics-preserving iff:
//!
//! * `X` is safe in the jump's delay slot per
//!   [`Instruction::safe_in_delay_slot_of`] — the one hazard definition
//!   shared with the `risc1-lint` analyzer (not a transfer, no flag write a
//!   conditional jump would consume, no operand clobber),
//! * no label binds to `X`, to the jump, or to the NOP — otherwise some
//!   other path would observe `X` executed a different number of times.
//!
//! Only `jmpr` slots are filled. `jmp rs1` reads a register the hoisted
//! instruction might write; `callr`/`ret` slots execute in a *different
//! register window*, so caller instructions cannot move there at all.

use crate::rasm::{RItem, RiscAsm};
use risc1_isa::Instruction;

/// Runs the filler over a builder's stream in place. Returns the number of
/// slots filled.
pub fn fill_delay_slots(asm: &mut RiscAsm) -> usize {
    let mut filled = 0;
    let mut i = 1; // need a predecessor
    while i + 1 < asm.items.len() {
        let is_candidate = match (&asm.items[i - 1], &asm.items[i], &asm.items[i + 1]) {
            (RItem::Insn(x), RItem::Jmpr { cond, .. }, RItem::Insn(slot)) => {
                // Hoisting a NOP would be a no-op; otherwise defer entirely
                // to the shared hazard predicate, instantiated with the
                // actual jump (its condition decides whether flags matter).
                slot.is_nop()
                    && !x.is_nop()
                    && x.safe_in_delay_slot_of(&Instruction::jmpr(*cond, 0))
            }
            _ => false,
        };
        let label_blocks = asm
            .labels
            .iter()
            .flatten()
            .any(|&t| t == i - 1 || t == i || t == i + 1);
        if is_candidate && !label_blocks {
            // [X, jmpr, nop] → [jmpr, X]
            asm.items.swap(i - 1, i);
            asm.items.remove(i + 1);
            for t in asm.labels.iter_mut().flatten() {
                if *t > i + 1 {
                    *t -= 1;
                }
            }
            filled += 1;
            // The jump now sits at i−1; continue after the moved X.
        }
        i += 1;
    }
    filled
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_core::Program;
    use risc1_isa::{Cond, Instruction, Opcode, Reg, Short2};

    fn imm(v: i32) -> Short2 {
        Short2::imm(v).unwrap()
    }

    fn add(d: Reg, s: Reg, v: i32) -> Instruction {
        Instruction::reg(Opcode::Add, d, s, imm(v))
    }

    /// Build `[X, jmpr alw out, nop, …poison…, out: halt]`, fill, run, and
    /// check X still executes exactly once.
    #[test]
    fn filled_program_behaves_identically() {
        let build = |fill: bool| {
            let mut a = RiscAsm::new();
            let out = a.new_label();
            a.push(add(Reg::R16, Reg::R0, 7)); // X
            a.jmpr(Cond::Alw, out);
            a.push(add(Reg::R17, Reg::R0, 99)); // skipped poison
            a.bind(out);
            a.push(Instruction::ret(Reg::R0, Short2::ZERO)); // halt
            a.push(Instruction::nop());
            let n = if fill { fill_delay_slots(&mut a) } else { 0 };
            (a.finish(0).unwrap(), n)
        };
        let (plain, n0) = build(false);
        let (filled, n1) = build(true);
        assert_eq!(n0, 0);
        assert_eq!(n1, 1);
        assert_eq!(filled.words.len() + 1, plain.words.len(), "one NOP gone");

        let run = |p: &Program| {
            let mut cpu = risc1_core::Cpu::new(risc1_core::SimConfig::default());
            cpu.load_program(p).unwrap();
            cpu.run().unwrap();
            (
                cpu.reg(Reg::R16),
                cpu.reg(Reg::R17),
                cpu.stats().instructions,
            )
        };
        let (a16, a17, ai) = run(&plain);
        let (b16, b17, bi) = run(&filled);
        assert_eq!((a16, a17), (7, 0));
        assert_eq!((b16, b17), (7, 0), "semantics preserved");
        assert_eq!(bi + 1, ai, "one instruction fewer executed");
    }

    #[test]
    fn scc_setter_is_not_hoisted() {
        let mut a = RiscAsm::new();
        let out = a.new_label();
        a.push(Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R16, imm(0)));
        a.jmpr(Cond::Eq, out);
        a.bind(out);
        a.push(Instruction::nop());
        assert_eq!(fill_delay_slots(&mut a), 0);
    }

    #[test]
    fn labelled_predecessor_is_not_hoisted() {
        let mut a = RiscAsm::new();
        let out = a.new_label();
        let join = a.new_label();
        a.bind(join);
        a.push(add(Reg::R16, Reg::R16, 1)); // join target: must not move
        a.jmpr(Cond::Alw, out);
        a.bind(out);
        a.push(Instruction::nop());
        assert_eq!(fill_delay_slots(&mut a), 0);
    }

    #[test]
    fn transfer_predecessor_is_not_hoisted() {
        let mut a = RiscAsm::new();
        let out = a.new_label();
        a.push(Instruction::ret(Reg::R25, imm(8)));
        a.jmpr(Cond::Alw, out);
        a.bind(out);
        a.push(Instruction::nop());
        assert_eq!(fill_delay_slots(&mut a), 0);
    }

    #[test]
    fn loop_back_edge_gets_filled_and_loop_still_terminates() {
        // acc += i; i -= 1; while i > 0 — the decrement lands in the slot.
        let mut a = RiscAsm::new();
        let top = a.new_label();
        let out = a.new_label();
        a.push(add(Reg::R16, Reg::R0, 0)); // acc = 0
        a.push(add(Reg::R17, Reg::R0, 10)); // i = 10
        a.bind(top);
        a.push(Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R17, imm(0)));
        a.jmpr(Cond::Eq, out);
        a.push(Instruction::reg(
            Opcode::Add,
            Reg::R16,
            Reg::R16,
            Short2::Reg(Reg::R17),
        ));
        a.push(Instruction::reg(Opcode::Sub, Reg::R17, Reg::R17, imm(1)));
        a.jmpr(Cond::Alw, top);
        a.bind(out);
        a.push(Instruction::ret(Reg::R0, Short2::ZERO));
        a.push(Instruction::nop());

        let filled = fill_delay_slots(&mut a);
        assert_eq!(filled, 1, "back-edge slot takes the decrement");
        let p = a.finish(0).unwrap();
        let mut cpu = risc1_core::Cpu::new(risc1_core::SimConfig::default());
        cpu.load_program(&p).unwrap();
        cpu.run().unwrap();
        assert_eq!(cpu.reg(Reg::R16), 55);
        let s = cpu.stats();
        assert!(s.delay_slot_fill_rate().unwrap() > 0.0);
    }
}
