//! The mini-C abstract syntax: modules, functions, statements, expressions.
//!
//! Semantics are 32-bit two's-complement throughout (wrapping add/sub/mul,
//! truncating signed division, shift counts taken mod 32, byte loads
//! zero-extended) — both code generators and the interpreter agree on this
//! exactly, which is what makes three-way differential testing possible.
//!
//! ## Call placement restriction
//!
//! Procedure calls may appear only as the entire right-hand side of an
//! assignment (`x = f(a, b)`) or as an expression statement (`f(a, b);`),
//! and call arguments must themselves be call-free. This mirrors what a
//! simple 1981 compiler would do with temporaries and keeps expression
//! temporaries dead across calls on *both* targets. [`Module::validate`]
//! enforces it. Multiplication and division are ordinary operators — on
//! RISC I they lower to runtime routines whose window isolates them from
//! the caller's temporaries.

use std::collections::HashMap;
use std::fmt;

/// Index of a local variable within a function (parameters come first).
pub type VarId = usize;
/// Index of a function within a module.
pub type FuncId = usize;
/// Index of a global array within a module.
pub type GlobalId = usize;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (software routine on RISC I).
    Mul,
    /// Truncating signed division (software routine on RISC I; division by
    /// zero is a runtime error on every target).
    Div,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (count mod 32).
    Shl,
    /// Arithmetic right shift (count mod 32).
    Shr,
}

/// Comparison operators (signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// The negated comparison (used to branch around `then`-blocks).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluates the comparison on concrete values.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Expressions. All expressions are side-effect free except [`Expr::Call`],
/// whose placement is restricted (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A 32-bit constant.
    Const(i32),
    /// A local variable (parameter or scratch).
    Local(VarId),
    /// `global[idx]` — 32-bit word load from a word array.
    LoadW(GlobalId, Box<Expr>),
    /// `global[idx]` — zero-extended byte load from a byte array.
    LoadB(GlobalId, Box<Expr>),
    /// `a <op> b`.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `f(args…)` — at most 6 arguments, call-free arguments.
    Call(FuncId, Vec<Expr>),
}

impl Expr {
    /// Whether the expression tree contains a call.
    pub fn has_call(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Local(_) => false,
            Expr::LoadW(_, i) | Expr::LoadB(_, i) => i.has_call(),
            Expr::Bin(_, a, b) => a.has_call() || b.has_call(),
            Expr::Call(..) => true,
        }
    }
}

/// A branch condition: `a <cmp> b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    /// The comparison.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: Expr,
    /// Right operand.
    pub rhs: Expr,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `local := expr` (the only place a call may appear as the whole RHS).
    Assign(VarId, Expr),
    /// `global[idx] := value` — 32-bit word store.
    StoreW(GlobalId, Expr, Expr),
    /// `global[idx] := value` — byte store (low 8 bits).
    StoreB(GlobalId, Expr, Expr),
    /// `if cond { then } else { els }`.
    If {
        /// The condition.
        cond: Cond,
        /// Taken when the condition holds.
        then: Vec<Stmt>,
        /// Taken otherwise (may be empty).
        els: Vec<Stmt>,
    },
    /// `while cond { body }`.
    While {
        /// Loop condition, tested before each iteration.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr` (call-free expression).
    Return(Expr),
    /// Expression statement — a call for its side effects.
    Expr(Expr),
}

/// A global array definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Diagnostic name.
    pub name: String,
    /// Element count.
    pub len: usize,
    /// Element width: `false` = 32-bit words, `true` = bytes.
    pub bytes: bool,
    /// Optional initial words/bytes (shorter than `len` is zero-padded).
    pub init: Vec<i32>,
}

/// One procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Diagnostic name.
    pub name: String,
    /// Number of parameters (locals `0..params`).
    pub params: usize,
    /// Total locals including parameters.
    pub locals: usize,
    /// Body. Falling off the end returns 0.
    pub body: Vec<Stmt>,
}

/// A whole program. Function 0 is the entry point (`main`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// Functions; index 0 is `main`.
    pub functions: Vec<Function>,
    /// Global arrays.
    pub globals: Vec<Global>,
}

/// A structural validity error found by [`Module::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// Module has no functions.
    NoEntry,
    /// An expression names a function that does not exist.
    BadFuncRef(FuncId),
    /// An expression names a global that does not exist.
    BadGlobalRef(GlobalId),
    /// A variable index is out of the function's `locals` range.
    BadVarRef {
        /// Offending function.
        func: FuncId,
        /// Offending variable index.
        var: VarId,
    },
    /// A function declares more parameters than locals.
    ParamsExceedLocals(FuncId),
    /// More than 6 parameters (the register-window argument limit).
    TooManyParams(FuncId),
    /// A call site passes the wrong number of arguments.
    ArityMismatch {
        /// Calling function.
        func: FuncId,
        /// Called function.
        callee: FuncId,
        /// Arguments supplied.
        got: usize,
    },
    /// A call appears nested inside an expression (see module docs).
    NestedCall(FuncId),
    /// A word index is applied to a byte array or vice versa.
    WidthMismatch(GlobalId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NoEntry => write!(f, "module has no functions"),
            ValidateError::BadFuncRef(i) => write!(f, "reference to nonexistent function {i}"),
            ValidateError::BadGlobalRef(i) => write!(f, "reference to nonexistent global {i}"),
            ValidateError::BadVarRef { func, var } => {
                write!(f, "function {func} uses out-of-range local {var}")
            }
            ValidateError::ParamsExceedLocals(i) => {
                write!(f, "function {i} declares more params than locals")
            }
            ValidateError::TooManyParams(i) => {
                write!(f, "function {i} has more than 6 parameters")
            }
            ValidateError::ArityMismatch { func, callee, got } => write!(
                f,
                "function {func} calls function {callee} with {got} arguments"
            ),
            ValidateError::NestedCall(i) => write!(
                f,
                "function {i} nests a call inside an expression (calls must be a whole assignment RHS or a statement)"
            ),
            ValidateError::WidthMismatch(g) => {
                write!(f, "global {g} accessed at the wrong width")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Module {
    /// Finds a function index by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Checks every structural invariant the code generators rely on.
    ///
    /// # Errors
    /// The first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.functions.is_empty() {
            return Err(ValidateError::NoEntry);
        }
        let arities: HashMap<FuncId, usize> = self
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.params))
            .collect();
        for (fid, func) in self.functions.iter().enumerate() {
            if func.params > func.locals {
                return Err(ValidateError::ParamsExceedLocals(fid));
            }
            if func.params > 6 {
                return Err(ValidateError::TooManyParams(fid));
            }
            self.check_block(fid, func, &func.body, &arities)?;
        }
        Ok(())
    }

    fn check_block(
        &self,
        fid: FuncId,
        func: &Function,
        block: &[Stmt],
        arities: &HashMap<FuncId, usize>,
    ) -> Result<(), ValidateError> {
        for stmt in block {
            match stmt {
                Stmt::Assign(v, e) => {
                    if *v >= func.locals {
                        return Err(ValidateError::BadVarRef { func: fid, var: *v });
                    }
                    // The RHS may be a top-level call; its arguments must be
                    // call-free, and anything else must be call-free.
                    match e {
                        Expr::Call(callee, args) => {
                            self.check_call(fid, *callee, args, arities)?;
                            for a in args {
                                self.check_expr(fid, func, a, false)?;
                            }
                        }
                        other => self.check_expr(fid, func, other, false)?,
                    }
                }
                Stmt::Expr(Expr::Call(callee, args)) => {
                    self.check_call(fid, *callee, args, arities)?;
                    for a in args {
                        self.check_expr(fid, func, a, false)?;
                    }
                }
                Stmt::Expr(e) => self.check_expr(fid, func, e, false)?,
                Stmt::StoreW(g, i, v) => {
                    self.check_global(*g, false)?;
                    self.check_expr(fid, func, i, false)?;
                    self.check_expr(fid, func, v, false)?;
                }
                Stmt::StoreB(g, i, v) => {
                    self.check_global(*g, true)?;
                    self.check_expr(fid, func, i, false)?;
                    self.check_expr(fid, func, v, false)?;
                }
                Stmt::If { cond, then, els } => {
                    self.check_expr(fid, func, &cond.lhs, false)?;
                    self.check_expr(fid, func, &cond.rhs, false)?;
                    self.check_block(fid, func, then, arities)?;
                    self.check_block(fid, func, els, arities)?;
                }
                Stmt::While { cond, body } => {
                    self.check_expr(fid, func, &cond.lhs, false)?;
                    self.check_expr(fid, func, &cond.rhs, false)?;
                    self.check_block(fid, func, body, arities)?;
                }
                Stmt::Return(e) => self.check_expr(fid, func, e, false)?,
            }
        }
        Ok(())
    }

    fn check_call(
        &self,
        fid: FuncId,
        callee: FuncId,
        args: &[Expr],
        arities: &HashMap<FuncId, usize>,
    ) -> Result<(), ValidateError> {
        let arity = *arities
            .get(&callee)
            .ok_or(ValidateError::BadFuncRef(callee))?;
        if args.len() != arity {
            return Err(ValidateError::ArityMismatch {
                func: fid,
                callee,
                got: args.len(),
            });
        }
        Ok(())
    }

    fn check_global(&self, g: GlobalId, want_bytes: bool) -> Result<(), ValidateError> {
        let def = self.globals.get(g).ok_or(ValidateError::BadGlobalRef(g))?;
        if def.bytes != want_bytes {
            return Err(ValidateError::WidthMismatch(g));
        }
        Ok(())
    }

    fn check_expr(
        &self,
        fid: FuncId,
        func: &Function,
        e: &Expr,
        _top: bool,
    ) -> Result<(), ValidateError> {
        match e {
            Expr::Const(_) => Ok(()),
            Expr::Local(v) => {
                if *v >= func.locals {
                    Err(ValidateError::BadVarRef { func: fid, var: *v })
                } else {
                    Ok(())
                }
            }
            Expr::LoadW(g, i) => {
                self.check_global(*g, false)?;
                self.check_expr(fid, func, i, false)
            }
            Expr::LoadB(g, i) => {
                self.check_global(*g, true)?;
                self.check_expr(fid, func, i, false)
            }
            Expr::Bin(_, a, b) => {
                self.check_expr(fid, func, a, false)?;
                self.check_expr(fid, func, b, false)
            }
            Expr::Call(..) => Err(ValidateError::NestedCall(fid)),
        }
    }
}

/// Terse constructors for writing IR programs by hand — the workload suite
/// is built entirely from these.
pub mod dsl {
    use super::*;

    /// A module from functions and globals.
    pub fn module(functions: Vec<Function>, globals: Vec<Global>) -> Module {
        Module { functions, globals }
    }

    /// A function.
    pub fn function(name: &str, params: usize, locals: usize, body: Vec<Stmt>) -> Function {
        Function {
            name: name.to_string(),
            params,
            locals,
            body,
        }
    }

    /// A word-array global, zero-initialised.
    pub fn global_words(name: &str, len: usize) -> Global {
        Global {
            name: name.to_string(),
            len,
            bytes: false,
            init: Vec::new(),
        }
    }

    /// A word-array global with initial contents.
    pub fn global_init(name: &str, init: Vec<i32>) -> Global {
        Global {
            name: name.to_string(),
            len: init.len(),
            bytes: false,
            init,
        }
    }

    /// A byte-array global, zero-initialised.
    pub fn global_bytes(name: &str, len: usize) -> Global {
        Global {
            name: name.to_string(),
            len,
            bytes: true,
            init: Vec::new(),
        }
    }

    /// A byte-array global with initial contents (values taken mod 256).
    pub fn global_bytes_init(name: &str, init: Vec<i32>) -> Global {
        Global {
            name: name.to_string(),
            len: init.len(),
            bytes: true,
            init,
        }
    }

    /// Constant.
    pub fn konst(v: i32) -> Expr {
        Expr::Const(v)
    }
    /// Local variable reference.
    pub fn local(v: VarId) -> Expr {
        Expr::Local(v)
    }
    /// Word load `g[idx]`.
    pub fn loadw(g: GlobalId, idx: Expr) -> Expr {
        Expr::LoadW(g, Box::new(idx))
    }
    /// Byte load `g[idx]` (zero-extended).
    pub fn loadb(g: GlobalId, idx: Expr) -> Expr {
        Expr::LoadB(g, Box::new(idx))
    }
    /// Call `f(args…)`.
    pub fn call(f: FuncId, args: Vec<Expr>) -> Expr {
        Expr::Call(f, args)
    }

    macro_rules! binops {
        ($($name:ident => $op:ident),* $(,)?) => {
            $(#[doc = concat!("`a ", stringify!($name), " b`.")]
              pub fn $name(a: Expr, b: Expr) -> Expr {
                  Expr::Bin(BinOp::$op, Box::new(a), Box::new(b))
              })*
        };
    }
    binops! {
        add => Add, sub => Sub, mul => Mul, div => Div,
        band => And, bor => Or, bxor => Xor, shl => Shl, shr => Shr,
    }

    /// A comparison condition.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Cond {
        Cond { op, lhs, rhs }
    }
    /// `lhs == rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Cond {
        cmp(CmpOp::Eq, lhs, rhs)
    }
    /// `lhs != rhs`.
    pub fn ne(lhs: Expr, rhs: Expr) -> Cond {
        cmp(CmpOp::Ne, lhs, rhs)
    }
    /// `lhs < rhs`.
    pub fn lt(lhs: Expr, rhs: Expr) -> Cond {
        cmp(CmpOp::Lt, lhs, rhs)
    }
    /// `lhs <= rhs`.
    pub fn le(lhs: Expr, rhs: Expr) -> Cond {
        cmp(CmpOp::Le, lhs, rhs)
    }
    /// `lhs > rhs`.
    pub fn gt(lhs: Expr, rhs: Expr) -> Cond {
        cmp(CmpOp::Gt, lhs, rhs)
    }
    /// `lhs >= rhs`.
    pub fn ge(lhs: Expr, rhs: Expr) -> Cond {
        cmp(CmpOp::Ge, lhs, rhs)
    }

    /// `var := expr`.
    pub fn assign(v: VarId, e: Expr) -> Stmt {
        Stmt::Assign(v, e)
    }
    /// `g[idx] := value` (words).
    pub fn storew(g: GlobalId, idx: Expr, value: Expr) -> Stmt {
        Stmt::StoreW(g, idx, value)
    }
    /// `g[idx] := value` (bytes).
    pub fn storeb(g: GlobalId, idx: Expr, value: Expr) -> Stmt {
        Stmt::StoreB(g, idx, value)
    }
    /// `if cond { then }`.
    pub fn if_then(cond: Cond, then: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then,
            els: Vec::new(),
        }
    }
    /// `if cond { then } else { els }`.
    pub fn if_else(cond: Cond, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
        Stmt::If { cond, then, els }
    }
    /// `while cond { body }`.
    pub fn while_loop(cond: Cond, body: Vec<Stmt>) -> Stmt {
        Stmt::While { cond, body }
    }
    /// `return expr`.
    pub fn ret(e: Expr) -> Stmt {
        Stmt::Return(e)
    }
    /// Expression statement (a call for effect).
    pub fn expr(e: Expr) -> Stmt {
        Stmt::Expr(e)
    }
}

pub use dsl::module;

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;

    #[test]
    fn validate_accepts_wellformed() {
        let m = module(
            vec![
                function(
                    "main",
                    1,
                    2,
                    vec![assign(1, call(1, vec![local(0)])), ret(local(1))],
                ),
                function("helper", 1, 1, vec![ret(add(local(0), konst(1)))]),
            ],
            vec![],
        );
        assert_eq!(m.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_nested_call() {
        let m = module(
            vec![function(
                "main",
                0,
                1,
                vec![ret(add(call(0, vec![]), konst(1)))],
            )],
            vec![],
        );
        assert_eq!(m.validate(), Err(ValidateError::NestedCall(0)));
    }

    #[test]
    fn validate_rejects_call_in_argument() {
        let m = module(
            vec![
                function(
                    "main",
                    0,
                    1,
                    vec![assign(0, call(1, vec![call(1, vec![konst(1)])]))],
                ),
                function("f", 1, 1, vec![ret(local(0))]),
            ],
            vec![],
        );
        assert_eq!(m.validate(), Err(ValidateError::NestedCall(0)));
    }

    #[test]
    fn validate_rejects_arity_and_refs() {
        let m = module(
            vec![function("main", 0, 0, vec![expr(call(7, vec![]))])],
            vec![],
        );
        assert_eq!(m.validate(), Err(ValidateError::BadFuncRef(7)));

        let m = module(vec![function("main", 0, 0, vec![ret(local(3))])], vec![]);
        assert_eq!(
            m.validate(),
            Err(ValidateError::BadVarRef { func: 0, var: 3 })
        );

        let m = module(
            vec![function("main", 0, 0, vec![ret(loadw(0, konst(0)))])],
            vec![],
        );
        assert_eq!(m.validate(), Err(ValidateError::BadGlobalRef(0)));
    }

    #[test]
    fn validate_rejects_width_mismatch() {
        let m = module(
            vec![function("main", 0, 0, vec![ret(loadb(0, konst(0)))])],
            vec![global_words("w", 4)],
        );
        assert_eq!(m.validate(), Err(ValidateError::WidthMismatch(0)));
    }

    #[test]
    fn validate_rejects_too_many_params() {
        let m = module(vec![function("main", 7, 7, vec![])], vec![]);
        assert_eq!(m.validate(), Err(ValidateError::TooManyParams(0)));
    }

    #[test]
    fn cmpop_negation_is_complement() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(1, 2), (2, 1), (3, 3), (-1, 1)] {
                assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn has_call_walks_the_tree() {
        assert!(!add(local(0), konst(1)).has_call());
        assert!(loadw(0, call(0, vec![])).has_call());
    }
}
