//! Deterministic record–replay of fault-injection campaigns.
//!
//! [`record_risc_injected`] runs a campaign exactly like
//! [`run_risc_injected`](crate::run_risc_injected) while writing a
//! [`Journal`] of every applied perturbation, keyed by **step index** (the
//! count of pre-step points — trap and interrupt delivery steps retire no
//! instruction, so instruction indices are not unique keys).
//! [`replay_journal`] re-executes a journal bit for bit without any PRNG:
//! it applies the recorded events at the recorded steps. The two must
//! agree on outcome signature, instruction count, and per-cause trap
//! counts — `tests/checkpoint_replay.rs` enforces this across every
//! workload and many seeds.
//!
//! [`minimize_journal`] is a ddmin-style delta debugger: it shrinks a
//! failing journal to a (1-minimal) subset of events that still reproduces
//! the same outcome signature.

use crate::runner::{setup_injected_cpu, InjectOutcome, InjectReport, InjectSetupError};
use risc1_core::{
    FaultInjector, Halt, InjectConfig, Journal, JournalEvent, Program, RecordedOutcome, SimConfig,
    JOURNAL_VERSION,
};

/// The stable textual identity of an outcome: `halt <result>` for a clean
/// halt, or the fault's Display string. Fault Display deliberately omits
/// replay context (snapshot id / journal position), so the signature is
/// identical between a recording and its replay.
pub fn outcome_signature(outcome: &InjectOutcome) -> String {
    match outcome {
        InjectOutcome::Halted { result } => format!("halt {result}"),
        InjectOutcome::Faulted { error } => format!("fault: {error}"),
    }
}

/// Condenses a finished run into the comparable [`RecordedOutcome`]
/// triple: signature, instructions retired, per-cause trap counts.
pub fn recorded_outcome(report: &InjectReport) -> RecordedOutcome {
    RecordedOutcome {
        signature: outcome_signature(&report.outcome),
        instructions: report.stats.instructions,
        trap_counts: report.stats.trap_counts,
    }
}

/// [`run_risc_injected`](crate::run_risc_injected), but additionally
/// records a complete [`Journal`] of the campaign — program image, args,
/// configuration, every applied event, and the outcome.
///
/// # Errors
/// [`InjectSetupError`] when the run could not be arranged.
pub fn record_risc_injected(
    prog: &Program,
    args: &[i32],
    cfg: SimConfig,
    inject: InjectConfig,
    recovery: bool,
) -> Result<(Journal, InjectReport), InjectSetupError> {
    let mut injector = FaultInjector::new(inject);
    let mut cpu = setup_injected_cpu(prog, args, cfg.clone(), recovery)?;
    let mut events = Vec::new();
    let mut step: u64 = 0;
    let outcome = loop {
        let before = injector.events().len();
        injector.pre_step(&mut cpu);
        // At most one event per pre_step; detect it by length (some modes
        // bail without applying anything, e.g. an empty wstack region).
        if injector.events().len() > before {
            let ev = injector.events()[before];
            events.push(JournalEvent {
                step,
                at_instruction: ev.at_instruction,
                kind: ev.kind,
            });
        }
        let halt = cpu.step();
        step += 1;
        match halt {
            Ok(Halt::Running) => {}
            Ok(Halt::Returned) => {
                break InjectOutcome::Halted {
                    result: cpu.result(),
                }
            }
            Err(error) => break InjectOutcome::Faulted { error },
        }
    };
    let report = InjectReport {
        outcome,
        stats: cpu.stats(),
        events: injector.events().to_vec(),
    };
    let journal = Journal {
        version: JOURNAL_VERSION,
        seed: inject.seed,
        rate: inject.rate,
        recovery,
        cfg,
        words: prog.words.clone(),
        entry_offset: prog.entry_offset,
        data: prog.data.clone(),
        args: args.to_vec(),
        events,
        outcome: Some(recorded_outcome(&report)),
    };
    Ok((journal, report))
}

/// Re-executes a recorded campaign bit for bit: no PRNG, just the
/// journal's events applied at their recorded step indices.
///
/// # Errors
/// [`InjectSetupError`] when the journal's program/args cannot be set up
/// under its configuration.
pub fn replay_journal(journal: &Journal) -> Result<InjectReport, InjectSetupError> {
    let prog = journal.program();
    let mut cpu = setup_injected_cpu(&prog, &journal.args, journal.cfg.clone(), journal.recovery)?;
    let mut next = 0usize; // index of the next journal event to apply
    let mut applied = Vec::new();
    let mut step: u64 = 0;
    let outcome = loop {
        while let Some(ev) = journal.events.get(next) {
            if ev.step != step {
                break;
            }
            Journal::apply_event(&mut cpu, ev.kind);
            applied.push(risc1_core::InjectEvent {
                at_instruction: cpu.stats().instructions,
                kind: ev.kind,
            });
            next += 1;
            cpu.note_journal_position(next as u64);
        }
        let halt = cpu.step();
        step += 1;
        match halt {
            Ok(Halt::Running) => {}
            Ok(Halt::Returned) => {
                break InjectOutcome::Halted {
                    result: cpu.result(),
                }
            }
            Err(error) => break InjectOutcome::Faulted { error },
        }
    };
    Ok(InjectReport {
        outcome,
        stats: cpu.stats(),
        events: applied,
    })
}

/// Shrinks a journal to a 1-minimal subset of its events that still
/// reproduces the same outcome signature, via ddmin-style delta
/// debugging. The returned journal carries a freshly replayed outcome
/// (same signature; instruction/trap counts of the minimized run).
///
/// The target signature is the journal's recorded outcome when present,
/// otherwise the outcome of replaying the journal as-is.
///
/// # Errors
/// [`InjectSetupError`] when the journal cannot be replayed at all.
pub fn minimize_journal(journal: &Journal) -> Result<Journal, InjectSetupError> {
    let target = match &journal.outcome {
        Some(o) => o.signature.clone(),
        None => recorded_outcome(&replay_journal(journal)?).signature,
    };
    let reproduces = |events: &[JournalEvent]| -> Result<bool, InjectSetupError> {
        let mut candidate = journal.clone();
        candidate.events = events.to_vec();
        candidate.outcome = None;
        let report = replay_journal(&candidate)?;
        Ok(outcome_signature(&report.outcome) == target)
    };

    // ddmin over the event list: try ever-finer chunkings, keeping any
    // subset or complement that still reproduces the target signature.
    let mut events = journal.events.clone();
    let mut granularity = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(granularity);
        let chunks: Vec<&[JournalEvent]> = events.chunks(chunk).collect();
        let mut reduced = None;
        // Subsets first (a single chunk alone), then complements (all but
        // one chunk).
        'search: {
            for c in &chunks {
                if reproduces(c)? {
                    reduced = Some((c.to_vec(), 2));
                    break 'search;
                }
            }
            for i in 0..chunks.len() {
                let complement: Vec<JournalEvent> = chunks
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .flat_map(|(_, c)| c.iter().copied())
                    .collect();
                if reproduces(&complement)? {
                    reduced = Some((complement, granularity.saturating_sub(1).max(2)));
                    break 'search;
                }
            }
        }
        match reduced {
            Some((next_events, next_gran)) => {
                events = next_events;
                granularity = next_gran.min(events.len().max(2));
            }
            None => {
                if granularity >= events.len() {
                    break;
                }
                granularity = (granularity * 2).min(events.len());
            }
        }
    }
    // The empty set may suffice (e.g. the failure was never injection's
    // fault to begin with).
    if events.len() == 1 && reproduces(&[])? {
        events.clear();
    }

    let mut minimized = journal.clone();
    minimized.events = events;
    minimized.outcome = None;
    let report = replay_journal(&minimized)?;
    minimized.outcome = Some(recorded_outcome(&report));
    Ok(minimized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;
    use crate::risc::{compile_risc, RiscOpts};
    use risc1_core::InjectKind;

    fn sum_program() -> Program {
        let m = module(
            vec![function(
                "main",
                1,
                3,
                vec![
                    assign(1, konst(0)),
                    assign(2, konst(0)),
                    while_loop(
                        lt(local(2), local(0)),
                        vec![
                            assign(1, add(local(1), local(2))),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    ret(local(1)),
                ],
            )],
            vec![],
        );
        compile_risc(&m, RiscOpts::default()).unwrap()
    }

    #[test]
    fn record_then_replay_is_bit_identical() {
        let prog = sum_program();
        for seed in 0..8u64 {
            let inject = InjectConfig {
                seed,
                rate: 120,
                ..InjectConfig::with_seed(seed)
            };
            let (journal, recorded) =
                record_risc_injected(&prog, &[60], SimConfig::default(), inject, seed % 2 == 0)
                    .unwrap();
            let replayed = replay_journal(&journal).unwrap();
            assert_eq!(
                recorded_outcome(&replayed),
                journal.outcome.clone().unwrap(),
                "seed {seed}"
            );
            assert_eq!(replayed.stats, recorded.stats, "seed {seed}");
            // Journals survive serialization and still replay identically.
            let back = Journal::from_json(&journal.to_json()).unwrap();
            let again = replay_journal(&back).unwrap();
            assert_eq!(again.stats, recorded.stats, "seed {seed} via JSON");
        }
    }

    #[test]
    fn replay_without_events_equals_clean_run() {
        let prog = sum_program();
        let (clean, stats) = crate::run_risc(&prog, &[25]).unwrap();
        let journal = Journal {
            version: JOURNAL_VERSION,
            seed: 0,
            rate: 0,
            recovery: false,
            cfg: SimConfig::default(),
            words: prog.words.clone(),
            entry_offset: prog.entry_offset,
            data: prog.data.clone(),
            args: vec![25],
            events: vec![],
            outcome: None,
        };
        let report = replay_journal(&journal).unwrap();
        assert_eq!(report.outcome, InjectOutcome::Halted { result: clean });
        assert_eq!(report.stats, stats);
    }

    #[test]
    fn minimizer_shrinks_to_the_single_lethal_event() {
        let prog = sum_program();
        // Record a clean-ish campaign, then plant a lethal fuel cut among
        // harmless interrupts: minimization must isolate it.
        let (mut journal, _) = record_risc_injected(
            &prog,
            &[60],
            SimConfig::default(),
            InjectConfig {
                seed: 3,
                rate: 0,
                ..InjectConfig::with_seed(3)
            },
            true,
        )
        .unwrap();
        assert!(journal.events.is_empty());
        journal.events = (0..10)
            .map(|i| JournalEvent {
                step: 4 + i,
                at_instruction: 0,
                kind: InjectKind::SpuriousInterrupt,
            })
            .collect();
        journal.events.push(JournalEvent {
            step: 40,
            at_instruction: 0,
            kind: InjectKind::FuelJitter { new_limit: 50 },
        });
        let report = replay_journal(&journal).unwrap();
        assert!(
            matches!(report.outcome, InjectOutcome::Faulted { .. }),
            "the fuel cut must be lethal"
        );
        journal.outcome = Some(recorded_outcome(&report));

        let minimized = minimize_journal(&journal).unwrap();
        assert_eq!(minimized.events.len(), 1, "{:?}", minimized.events);
        assert!(matches!(
            minimized.events[0].kind,
            InjectKind::FuelJitter { new_limit: 50 }
        ));
        // The minimized journal still reproduces the signature.
        assert_eq!(
            minimized.outcome.as_ref().unwrap().signature,
            journal.outcome.as_ref().unwrap().signature
        );
    }
}
