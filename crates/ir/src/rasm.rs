//! Label-aware RISC I instruction-stream builder.
//!
//! The code generator emits a symbolic item stream ([`RItem`]) in which
//! PC-relative transfers reference labels; [`RiscAsm::finish`] resolves
//! them into a loadable [`Program`]. Keeping the stream symbolic until the
//! end is what lets the delay-slot filler ([`crate::delay`]) reorder
//! instructions without breaking branch offsets.

use risc1_core::Program;
use risc1_isa::encoding::fits_imm19;
use risc1_isa::{Cond, Instruction, Reg, INSN_BYTES};
use std::collections::HashMap;
use std::fmt;

/// A label in the instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RLabel(pub(crate) usize);

/// One symbolic item: a concrete instruction or a label-relative transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RItem {
    /// A fully formed instruction.
    Insn(Instruction),
    /// `jmpr cond, label`.
    Jmpr {
        /// Jump condition.
        cond: Cond,
        /// Target.
        label: RLabel,
    },
    /// `callr link, label`.
    Callr {
        /// Link register (named in the callee's window).
        link: Reg,
        /// Target.
        label: RLabel,
    },
}

impl RItem {
    /// Whether the item is a transfer of control.
    pub fn is_transfer(&self) -> bool {
        match self {
            RItem::Insn(i) => i.opcode.is_transfer(),
            RItem::Jmpr { .. } | RItem::Callr { .. } => true,
        }
    }
}

/// A resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RasmError {
    /// A label was referenced but never bound.
    UnboundLabel(RLabel),
    /// A transfer's displacement exceeded the 19-bit field.
    BranchOutOfRange {
        /// The target label.
        label: RLabel,
        /// The displacement in bytes.
        delta: i64,
    },
}

impl fmt::Display for RasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RasmError::UnboundLabel(l) => write!(f, "label {l:?} never bound"),
            RasmError::BranchOutOfRange { label, delta } => {
                write!(f, "branch to {label:?} out of range ({delta} bytes)")
            }
        }
    }
}

impl std::error::Error for RasmError {}

/// The builder.
#[derive(Debug, Default)]
pub struct RiscAsm {
    /// The symbolic stream (public within the crate for the delay filler).
    pub(crate) items: Vec<RItem>,
    /// Label bindings: label id → item index.
    pub(crate) labels: Vec<Option<usize>>,
    symbols: HashMap<String, usize>,
}

impl RiscAsm {
    /// An empty builder.
    pub fn new() -> RiscAsm {
        RiscAsm::default()
    }

    /// Current item index.
    pub fn here(&self) -> usize {
        self.items.len()
    }

    /// Allocates an unbound label.
    pub fn new_label(&mut self) -> RLabel {
        self.labels.push(None);
        RLabel(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted item.
    pub fn bind(&mut self, label: RLabel) {
        debug_assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.items.len());
    }

    /// Records a symbol at the next item (diagnostics).
    pub fn symbol(&mut self, name: &str) {
        self.symbols.insert(name.to_string(), self.items.len());
    }

    /// Emits a concrete instruction.
    pub fn push(&mut self, insn: Instruction) {
        self.items.push(RItem::Insn(insn));
    }

    /// Emits `jmpr cond, label` followed by its delay-slot NOP.
    pub fn jmpr(&mut self, cond: Cond, label: RLabel) {
        self.items.push(RItem::Jmpr { cond, label });
        self.push(Instruction::nop());
    }

    /// Emits `callr link, label` followed by its delay-slot NOP.
    /// (Call slots stay NOPs: the slot executes in the *callee's* window,
    /// so hoisting caller code into it would read the wrong registers.)
    pub fn callr(&mut self, link: Reg, label: RLabel) {
        self.items.push(RItem::Callr { link, label });
        self.push(Instruction::nop());
    }

    /// Resolves labels and produces the program. Set `entry` to the item
    /// index execution should start at (e.g. recorded with [`here`] before
    /// emitting `main`).
    ///
    /// # Errors
    /// [`RasmError`] on unbound labels or out-of-range branches.
    ///
    /// [`here`]: RiscAsm::here
    pub fn finish(self, entry: usize) -> Result<Program, RasmError> {
        self.resolve(entry)
    }

    /// [`finish`] by reference: resolves the current stream without
    /// consuming the builder, so it can also serve mid-build checks such
    /// as [`lint`].
    ///
    /// # Errors
    /// [`RasmError`] on unbound labels or out-of-range branches.
    ///
    /// [`finish`]: RiscAsm::finish
    /// [`lint`]: RiscAsm::lint
    pub fn resolve(&self, entry: usize) -> Result<Program, RasmError> {
        let mut words = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let insn = match item {
                RItem::Insn(i) => *i,
                RItem::Jmpr { cond, label } => {
                    let delta = self.delta(idx, *label)?;
                    Instruction::jmpr(*cond, delta)
                }
                RItem::Callr { link, label } => {
                    let delta = self.delta(idx, *label)?;
                    Instruction::callr(*link, delta)
                }
            };
            words.push(insn.encode());
        }
        Ok(Program {
            words,
            entry_offset: entry as u32 * INSN_BYTES,
            data: Vec::new(),
            symbols: self
                .symbols
                .iter()
                .map(|(k, &v)| (k.clone(), v as u32 * INSN_BYTES))
                .collect(),
        })
    }

    /// Resolves the stream and runs the static analyzer over it — the
    /// adapter that lets codegen output be linted without reassembling.
    ///
    /// # Errors
    /// [`RasmError`] when the stream itself does not resolve.
    pub fn lint(
        &self,
        entry: usize,
        config: &risc1_lint::LintConfig,
    ) -> Result<Vec<risc1_lint::Diagnostic>, RasmError> {
        Ok(risc1_lint::lint_program(&self.resolve(entry)?, config))
    }

    fn delta(&self, at: usize, label: RLabel) -> Result<i32, RasmError> {
        let target = self.labels[label.0].ok_or(RasmError::UnboundLabel(label))?;
        let delta = (target as i64 - at as i64) * i64::from(INSN_BYTES);
        if !fits_imm19(delta as i32) || i64::from(delta as i32) != delta {
            return Err(RasmError::BranchOutOfRange { label, delta });
        }
        Ok(delta as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_isa::{Opcode, Short2};

    #[test]
    fn labels_resolve_to_byte_offsets() {
        let mut a = RiscAsm::new();
        let top = a.new_label();
        let out = a.new_label();
        a.bind(top);
        a.push(Instruction::nop()); // 0
        a.jmpr(Cond::Eq, out); // 1 (+ nop at 2)
        a.jmpr(Cond::Alw, top); // 3 (+ nop at 4)
        a.bind(out);
        a.push(Instruction::ret(Reg::R25, Short2::ZERO)); // 5
        let p = a.finish(0).unwrap();
        let j1 = Instruction::decode(p.words[1]).unwrap();
        assert_eq!(j1, Instruction::jmpr(Cond::Eq, 16), "item 1 → item 5");
        let j2 = Instruction::decode(p.words[3]).unwrap();
        assert_eq!(j2, Instruction::jmpr(Cond::Alw, -12), "item 3 → item 0");
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = RiscAsm::new();
        let l = a.new_label();
        a.jmpr(Cond::Alw, l);
        assert!(matches!(a.finish(0), Err(RasmError::UnboundLabel(_))));
    }

    #[test]
    fn entry_offset_in_bytes() {
        let mut a = RiscAsm::new();
        a.push(Instruction::nop());
        let entry = a.here();
        a.push(Instruction::reg(
            Opcode::Add,
            Reg::R16,
            Reg::R0,
            Short2::ZERO,
        ));
        let p = a.finish(entry).unwrap();
        assert_eq!(p.entry_offset, 4);
    }
}
