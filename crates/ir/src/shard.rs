//! Sharded checkpoint-parallel execution of one long run.
//!
//! A single long simulation occupies exactly one host thread, no matter
//! how fast the engine tiers get. Both related zkVM executors (Ziren,
//! zkMIPS) break that wall the same way: a fast first pass emits periodic
//! checkpoints, then *shards* re-execute from those checkpoints in
//! parallel, and the shard results are stitched back into the whole-run
//! answer. This module is that trick for RISC I, built entirely from
//! primitives the repository already trusts:
//!
//! * **Planning pass** — the program runs once under the trace engine
//!   (the fastest tier), and an incremental [`Checkpointer`] captures a
//!   [`Snapshot`] every `shard_cycles` retired instructions. Instruction
//!   counts make exact boundaries because [`Cpu::run_until_instructions`]
//!   never overshoots and the stopping condition is purely architectural
//!   — a boundary may legitimately land *inside a delay slot* (the
//!   pending transfer is part of the snapshot).
//! * **Shard execution** — each snapshot is rebound to the caller's
//!   engine ([`Snapshot::rebind_engine`], sound because the tiers are
//!   bit-identical) and [`parallel_map`] re-executes every shard from its
//!   snapshot to the next boundary on worker threads.
//! * **Stitching** — the stitcher re-derives the whole-run result from
//!   the shard parts and *proves* it equals the sequential run: chained
//!   boundary digests, per-shard statistics deltas folded back together,
//!   and a dirty-page overlay law for memory. Any mismatch is a
//!   [`StitchError`], not a wrong answer.
//!
//! Equality throughout is [`Cpu::arch_digest`] equality: the simulated
//! machine alone. Host telemetry (superblock/fusion counters, checkpoint
//! ids, journal cursors, wall-clock) depends on how the timeline was
//! chopped and which tier executed it, so it is excluded — the same
//! exclusion the snapshot round-trip and four-engine equivalence laws
//! already make. DESIGN.md §17 spells out the boundary rules and the
//! stitch law.

use crate::campaign::{default_threads, parallel_map};
use crate::runner::{setup_injected_cpu, InjectOutcome, InjectReport, InjectSetupError};
use risc1_core::snapshot::RestoreError;
use risc1_core::{
    page_sum, Checkpointer, Cpu, ExecEngine, ExecStats, FaultInjector, Halt, InjectConfig,
    InjectEvent, Program, SimConfig, Snapshot,
};
use std::fmt;
use std::time::{Duration, Instant};

/// Admission cap on the number of shards one plan may hold. Each shard
/// carries a full materialized [`Snapshot`] (default config: ~1 MiB of
/// memory image), so an unbounded plan of a billion-instruction run at a
/// tiny `shard_cycles` would exhaust host memory long before it exhausted
/// the simulator. Callers who hit the cap should raise `shard_cycles`.
pub const MAX_SHARDS: usize = 256;

/// Why a sharded run could not be arranged or proven.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// `shard_cycles` was zero.
    BadShardCycles,
    /// The program could not be loaded / argument setup failed.
    Setup(InjectSetupError),
    /// The run needs more than [`MAX_SHARDS`] shards at this
    /// `shard_cycles`.
    TooManyShards {
        /// Shards the plan had already accumulated when it gave up.
        planned: usize,
    },
    /// A shard worker failed to restore its start snapshot.
    Restore(RestoreError),
    /// The stitcher could not prove the shard results equal the
    /// sequential run.
    Stitch(StitchError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::BadShardCycles => write!(f, "--shard-cycles must be at least 1"),
            ShardError::Setup(e) => write!(f, "sharded run setup: {e}"),
            ShardError::TooManyShards { planned } => write!(
                f,
                "run needs more than {MAX_SHARDS} shards (planned {planned}); \
                 raise shard_cycles"
            ),
            ShardError::Restore(e) => write!(f, "shard restore: {e}"),
            ShardError::Stitch(e) => write!(f, "stitch: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<InjectSetupError> for ShardError {
    fn from(e: InjectSetupError) -> Self {
        ShardError::Setup(e)
    }
}

/// A stitch-law violation: which shard broke which invariant. Every
/// variant means the parallel re-execution did *not* reproduce the
/// planning pass — by construction this cannot happen on deterministic
/// hardware, so any occurrence is a simulator bug worth the detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StitchError {
    /// A shard's end state digest does not match the next shard's start
    /// snapshot.
    Boundary {
        /// Index of the offending shard.
        shard: usize,
        /// Digest the plan recorded at this boundary.
        expected: u64,
        /// Digest the shard re-execution produced.
        found: u64,
    },
    /// A shard stopped at the wrong instruction count.
    BoundaryInstruction {
        /// Index of the offending shard.
        shard: usize,
        /// Boundary the plan assigned.
        expected: u64,
        /// Instruction count the shard actually stopped at.
        found: u64,
    },
    /// The folded per-shard statistics deltas disagree with the final
    /// shard's cumulative statistics.
    Stats,
    /// The dirty-page overlay of all shards does not reproduce the final
    /// memory page digests.
    Memory {
        /// Digest of the overlay fold.
        expected: u64,
        /// Digest of the final shard's memory.
        found: u64,
    },
    /// The final shard's outcome differs from the planning pass.
    Outcome,
    /// An injected run's replayed event schedule differs from the
    /// planning pass.
    Events,
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::Boundary {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard} ended with arch digest {found:#018x}, \
                 plan recorded {expected:#018x} at that boundary"
            ),
            StitchError::BoundaryInstruction {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard} stopped at instruction {found}, plan assigned {expected}"
            ),
            StitchError::Stats => write!(
                f,
                "folded per-shard statistics deltas disagree with the final cumulative statistics"
            ),
            StitchError::Memory { expected, found } => write!(
                f,
                "dirty-page overlay digest {expected:#018x} != final memory digest {found:#018x}"
            ),
            StitchError::Outcome => write!(f, "final shard outcome differs from the planning pass"),
            StitchError::Events => write!(
                f,
                "replayed injection schedule differs from the planning pass"
            ),
        }
    }
}

impl std::error::Error for StitchError {}

/// One planned shard: where it starts (a full snapshot, plus the
/// injector's mid-schedule state for injected runs) and where it must
/// stop.
#[derive(Debug, Clone)]
struct Shard {
    snap: Snapshot,
    injector: Option<FaultInjector>,
    /// Boundary this shard must run to (`instructions == end`); the final
    /// shard instead runs to the plan's recorded end of program.
    end: u64,
    /// Whether this is the final shard (ends by halting/faulting rather
    /// than at a boundary).
    last: bool,
}

/// The product of the planning pass: shard start points plus everything
/// the stitcher needs to hold the parallel re-execution to the sequential
/// answer.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<Shard>,
    /// Arch digest the plan recorded at each shard's *end* (index i =
    /// digest at the end of shard i; the last entry is the final state).
    end_digests: Vec<u64>,
    /// The planning pass's whole-run report — outcome, cumulative stats,
    /// applied injection events.
    final_report: InjectReport,
    /// Page digests of the initial memory (shard 0's start).
    baseline_page_sums: Vec<u64>,
    /// Wall-clock the planning pass took (host telemetry).
    plan_wall: Duration,
}

impl ShardPlan {
    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The instruction boundaries the plan cut at (end of each shard).
    pub fn boundaries(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.end).collect()
    }
}

/// What one shard worker brought back.
struct ShardRun {
    stats_at_start: ExecStats,
    stats: ExecStats,
    end_instruction: u64,
    end_digest: u64,
    /// `page_sum` of every page this shard wrote, by page index.
    dirty: Vec<(usize, u64)>,
    /// FNV digest over the shard's final full page-digest vector.
    mem_digest: u64,
    outcome: Option<InjectOutcome>,
    events: Vec<InjectEvent>,
}

/// A sharded run, proven equal to its sequential counterpart.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Outcome, cumulative statistics and injection events — bit-identical
    /// to the sequential run of the same `(program, args, config,
    /// injection)`.
    pub report: InjectReport,
    /// FNV-1a digest over the final memory's page digests.
    pub mem_digest: u64,
    /// Final [`Cpu::arch_digest`] of the whole run.
    pub arch_digest: u64,
    /// Instruction boundaries the run was cut at.
    pub boundaries: Vec<u64>,
    /// Worker threads the shard phase actually used.
    pub threads: usize,
    /// Wall-clock of the planning pass (host telemetry — excluded from
    /// every equality above).
    pub plan_wall: Duration,
    /// Wall-clock of the parallel shard phase plus stitching.
    pub exec_wall: Duration,
}

impl ShardedReport {
    /// Number of shards executed.
    pub fn shards(&self) -> usize {
        self.boundaries.len()
    }
}

/// Runs `prog` sharded under the default configuration: plan under the
/// trace engine, re-execute `shard_cycles`-instruction shards on
/// `threads` workers (0 = [`default_threads`]), stitch, and prove the
/// stitched result equals sequential execution.
///
/// # Errors
/// [`ShardError`] when the run cannot be arranged, a shard cannot
/// restore, or the stitch law fails.
pub fn run_sharded(
    prog: &Program,
    args: &[i32],
    shard_cycles: u64,
    threads: usize,
) -> Result<ShardedReport, ShardError> {
    run_sharded_with(prog, args, SimConfig::default(), shard_cycles, threads)
}

/// [`run_sharded`] with an explicit simulator configuration. Shards
/// execute under `cfg.engine`; the planning pass always uses the trace
/// engine and rebinds its snapshots.
///
/// # Errors
/// As [`run_sharded`].
pub fn run_sharded_with(
    prog: &Program,
    args: &[i32],
    cfg: SimConfig,
    shard_cycles: u64,
    threads: usize,
) -> Result<ShardedReport, ShardError> {
    let plan = plan_shards(prog, args, &cfg, None, false, shard_cycles)?;
    execute_plan(plan, threads)
}

/// Sharded execution of a *fault-injected* run: the planning pass applies
/// the seeded schedule step by step (capturing the injector's mid-stream
/// state at every boundary), shards resume both the machine and the
/// injector, and the stitcher additionally proves the replayed event
/// schedule matches the plan. `recovery` installs the trap-unit recovery
/// stubs exactly as [`crate::run_risc_injected`] would.
///
/// # Errors
/// As [`run_sharded`].
pub fn run_sharded_injected(
    prog: &Program,
    args: &[i32],
    cfg: SimConfig,
    inject: InjectConfig,
    recovery: bool,
    shard_cycles: u64,
    threads: usize,
) -> Result<ShardedReport, ShardError> {
    let plan = plan_shards(prog, args, &cfg, Some(inject), recovery, shard_cycles)?;
    execute_plan(plan, threads)
}

/// The planning pass: one sequential execution that drops a checkpoint
/// every `shard_cycles` retired instructions.
///
/// Uninjected plans run under the trace engine regardless of `cfg.engine`
/// — planning is pure execution, the tiers are bit-identical, and trace
/// is the fastest — and every captured snapshot is rebound to the
/// caller's engine. Injected plans run under `cfg.engine` directly: the
/// injector needs a `pre_step` hook before every step anyway, which
/// forfeits burst execution.
fn plan_shards(
    prog: &Program,
    args: &[i32],
    cfg: &SimConfig,
    inject: Option<InjectConfig>,
    recovery: bool,
    shard_cycles: u64,
) -> Result<ShardPlan, ShardError> {
    if shard_cycles == 0 {
        return Err(ShardError::BadShardCycles);
    }
    let started = Instant::now();
    let mut plan_cfg = cfg.clone();
    if inject.is_none() {
        plan_cfg.engine = ExecEngine::Trace;
    }
    let mut injector = inject.map(FaultInjector::new);
    let mut cpu = setup_injected_cpu(prog, args, plan_cfg, recovery)?;
    let mut ckpt = Checkpointer::new(&mut cpu);

    let new_shard = |snap: &Snapshot, injector: &Option<FaultInjector>| {
        let mut snap = snap.clone();
        snap.rebind_engine(cfg.engine);
        Shard {
            snap,
            injector: injector.clone(),
            end: 0,
            last: false,
        }
    };

    let mut shards = vec![new_shard(ckpt.latest(), &injector)];
    let mut end_digests = Vec::new();
    let mut next_boundary = shard_cycles;
    let outcome = loop {
        let stopped = match &mut injector {
            // Uninjected: burst straight to the boundary.
            None => cpu.run_until_instructions(next_boundary),
            // Injected: the canonical one-step loop with a `pre_step`
            // roll before every step, bit-identical to
            // `run_risc_injected`; the boundary check sits between
            // steps, exactly where the worker's check will sit.
            Some(inj) => loop {
                if cpu.instructions_retired() >= next_boundary {
                    break Ok(Halt::Running);
                }
                inj.pre_step(&mut cpu);
                match cpu.step() {
                    Ok(Halt::Running) => {}
                    other => break other,
                }
            },
        };
        match stopped {
            Ok(Halt::Running) => {
                // Clean boundary: close the current shard and open the
                // next one from a fresh checkpoint.
                shards.last_mut().expect("nonempty").end = next_boundary;
                end_digests.push(cpu.arch_digest());
                if shards.len() >= MAX_SHARDS {
                    return Err(ShardError::TooManyShards {
                        planned: shards.len(),
                    });
                }
                ckpt.checkpoint(&mut cpu);
                shards.push(new_shard(ckpt.latest(), &injector));
                next_boundary += shard_cycles;
            }
            Ok(Halt::Returned) => {
                break InjectOutcome::Halted {
                    result: cpu.result(),
                }
            }
            Err(error) => break InjectOutcome::Faulted { error },
        }
    };
    {
        let last = shards.last_mut().expect("nonempty");
        last.end = cpu.instructions_retired();
        last.last = true;
    }
    end_digests.push(cpu.arch_digest());
    let baseline_page_sums = shards[0].snap.page_sums().to_vec();
    Ok(ShardPlan {
        shards,
        end_digests,
        final_report: InjectReport {
            outcome,
            stats: cpu.stats(),
            events: injector.map(|i| i.events().to_vec()).unwrap_or_default(),
        },
        baseline_page_sums,
        plan_wall: started.elapsed(),
    })
}

/// One shard worker: restore, run to the boundary, report what happened.
fn run_shard(shard: &Shard) -> Result<ShardRun, ShardError> {
    let mut cpu = Cpu::new(shard.snap.config().clone());
    cpu.restore(&shard.snap).map_err(ShardError::Restore)?;
    // Restore marks every page dirty (the snapshot baseline is gone);
    // re-arm tracking so `dirty_pages` afterwards means "pages this
    // shard wrote".
    cpu.mem.clear_dirty();
    let stats_at_start = cpu.stats();
    let mut injector = shard.injector.clone();
    // Interior shards stop dead on their boundary. The final shard runs
    // to the program's own end instead — a halt, a structured fault, or
    // fuel exhaustion — so a terminal fault *after* the last boundary is
    // reproduced rather than skipped.
    let target = if shard.last { u64::MAX } else { shard.end };
    let stopped = match &mut injector {
        None => cpu.run_until_instructions(target),
        Some(inj) => loop {
            if cpu.instructions_retired() >= target {
                break Ok(Halt::Running);
            }
            inj.pre_step(&mut cpu);
            match cpu.step() {
                Ok(Halt::Running) => {}
                other => break other,
            }
        },
    };
    let outcome = match stopped {
        Ok(Halt::Running) => None,
        Ok(Halt::Returned) => Some(InjectOutcome::Halted {
            result: cpu.result(),
        }),
        Err(error) => Some(InjectOutcome::Faulted { error }),
    };
    let dirty: Vec<(usize, u64)> = cpu
        .mem
        .dirty_pages()
        .map(|idx| (idx, page_sum(cpu.mem.page(idx))))
        .collect();
    let mut h = risc1_core::snapshot::Fnv64::new();
    h.write_u64(cpu.mem.page_count() as u64);
    for idx in 0..cpu.mem.page_count() {
        h.write_u64(page_sum(cpu.mem.page(idx)));
    }
    Ok(ShardRun {
        stats_at_start,
        stats: cpu.stats(),
        end_instruction: cpu.instructions_retired(),
        end_digest: cpu.arch_digest(),
        dirty,
        mem_digest: h.finish(),
        outcome,
        events: injector.map(|i| i.events().to_vec()).unwrap_or_default(),
    })
}

/// Adds `end − start` of every architectural counter onto `acc`.
/// `max_depth` is a running maximum, not a sum, so it folds as the max of
/// cumulative values (each shard's cumulative max already includes its
/// predecessors' history via the restored window file).
fn fold_delta(acc: &mut ExecStats, start: &ExecStats, end: &ExecStats) {
    macro_rules! add {
        ($($f:ident),*) => { $( acc.$f += end.$f - start.$f; )* };
    }
    add!(
        instructions,
        cycles,
        bubble_cycles,
        ifetches,
        data_reads,
        data_writes,
        calls,
        rets,
        taken_transfers,
        window_overflows,
        window_underflows,
        trap_cycles,
        delay_slots,
        delay_slot_nops,
        trap_entries,
        trap_returns,
        trap_entry_cycles,
        interrupts_taken
    );
    acc.max_depth = acc.max_depth.max(end.max_depth);
    for i in 0..end.trap_counts.len() {
        acc.trap_counts[i] += end.trap_counts[i] - start.trap_counts[i];
    }
    for (op, n) in end.opcode_counts.iter() {
        let delta = n - start.opcode_counts.get(op);
        if delta > 0 {
            acc.opcode_counts.add(op, delta);
        }
    }
}

/// The architectural projection of [`ExecStats`] equality (its
/// `PartialEq` already ignores host telemetry).
fn stats_equal(a: &ExecStats, b: &ExecStats) -> bool {
    a == b
}

/// Fans the plan's shards across `threads` workers and stitches the
/// results, holding every stitch invariant.
fn execute_plan(plan: ShardPlan, threads: usize) -> Result<ShardedReport, ShardError> {
    let started = Instant::now();
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let effective = threads.clamp(1, plan.shards.len());
    let runs = parallel_map(&plan.shards, effective, |_, shard| run_shard(shard));
    let runs: Vec<ShardRun> = runs.into_iter().collect::<Result<_, _>>()?;

    // Stitch law 1 — boundary chaining: every shard stopped exactly on
    // its assigned instruction boundary, in exactly the machine state the
    // plan recorded there; and each non-final shard's end state is the
    // next shard's start snapshot.
    for (i, run) in runs.iter().enumerate() {
        if run.end_instruction != plan.shards[i].end {
            return Err(ShardError::Stitch(StitchError::BoundaryInstruction {
                shard: i,
                expected: plan.shards[i].end,
                found: run.end_instruction,
            }));
        }
        if run.end_digest != plan.end_digests[i] {
            return Err(ShardError::Stitch(StitchError::Boundary {
                shard: i,
                expected: plan.end_digests[i],
                found: run.end_digest,
            }));
        }
        if i + 1 < runs.len() && run.end_digest != plan.shards[i + 1].snap.arch_digest() {
            return Err(ShardError::Stitch(StitchError::Boundary {
                shard: i,
                expected: plan.shards[i + 1].snap.arch_digest(),
                found: run.end_digest,
            }));
        }
    }

    // Stitch law 2 — statistics: the per-shard deltas, folded in shard
    // order onto the first shard's starting statistics, must reproduce
    // the final shard's cumulative statistics (and those must equal the
    // planning pass's, which law 1 already pins via the digest).
    let last = runs.last().expect("plans have at least one shard");
    let mut folded = runs[0].stats_at_start.clone();
    for run in &runs {
        fold_delta(&mut folded, &run.stats_at_start, &run.stats);
    }
    if !stats_equal(&folded, &last.stats) || !stats_equal(&last.stats, &plan.final_report.stats) {
        return Err(ShardError::Stitch(StitchError::Stats));
    }

    // Stitch law 3 — memory: overlaying each shard's dirty-page digests
    // in shard order onto the baseline page digests must reproduce the
    // final memory, page for page.
    let mut overlay = plan.baseline_page_sums.clone();
    for run in &runs {
        for &(idx, sum) in &run.dirty {
            overlay[idx] = sum;
        }
    }
    let mut h = risc1_core::snapshot::Fnv64::new();
    h.write_u64(overlay.len() as u64);
    for &s in &overlay {
        h.write_u64(s);
    }
    let overlay_digest = h.finish();
    if overlay_digest != last.mem_digest {
        return Err(ShardError::Stitch(StitchError::Memory {
            expected: overlay_digest,
            found: last.mem_digest,
        }));
    }

    // Stitch law 4 — outcome and injection schedule: the final shard
    // ends the run the same way the plan did, having applied the same
    // fault events.
    if last.outcome.as_ref() != Some(&plan.final_report.outcome) {
        return Err(ShardError::Stitch(StitchError::Outcome));
    }
    if last.events != plan.final_report.events {
        return Err(ShardError::Stitch(StitchError::Events));
    }

    let boundaries = plan.boundaries();
    Ok(ShardedReport {
        report: InjectReport {
            outcome: plan.final_report.outcome,
            stats: last.stats.clone(),
            events: last.events.clone(),
        },
        mem_digest: last.mem_digest,
        arch_digest: last.end_digest,
        boundaries,
        threads: effective,
        plan_wall: plan.plan_wall,
        exec_wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_risc_injected, run_risc_with};
    use crate::{compile_risc, RiscOpts};
    use risc1_core::inject::InjectModes;

    fn sieve_prog() -> Program {
        let w = risc1_workloads_stub::sieve_module();
        compile_risc(&w, RiscOpts::default()).expect("sieve compiles")
    }

    /// A tiny self-contained loop program so the unit tests do not need
    /// the workloads crate (a dependency cycle): sums 1..=n.
    mod risc1_workloads_stub {
        use crate::ast::dsl::*;
        use crate::Module;

        pub fn sieve_module() -> Module {
            let main = function(
                "main",
                1,
                3,
                vec![
                    assign(1, konst(0)),
                    assign(2, konst(1)),
                    while_loop(
                        le(local(2), local(0)),
                        vec![
                            assign(1, add(local(1), local(2))),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    ret(local(1)),
                ],
            );
            module(vec![main], vec![])
        }
    }

    #[test]
    fn sharded_matches_sequential_for_every_engine_and_thread_count() {
        let prog = sieve_prog();
        let args = [600];
        let (seq_result, seq_stats) =
            run_risc_with(&prog, &args, SimConfig::default()).expect("sequential runs");
        for engine in [ExecEngine::Uncached, ExecEngine::Superblock] {
            let cfg = SimConfig {
                engine,
                ..SimConfig::default()
            };
            for threads in [1, 4] {
                for shard_cycles in [700, 4096] {
                    let sharded =
                        run_sharded_with(&prog, &args, cfg.clone(), shard_cycles, threads)
                            .expect("sharded runs");
                    assert!(sharded.shards() > 1, "run long enough to actually shard");
                    assert_eq!(
                        sharded.report.outcome,
                        InjectOutcome::Halted { result: seq_result }
                    );
                    assert_eq!(sharded.report.stats, seq_stats, "{engine:?} t{threads}");
                }
            }
        }
    }

    #[test]
    fn sharded_report_is_thread_count_invariant() {
        let prog = sieve_prog();
        let one = run_sharded(&prog, &[400], 500, 1).expect("t1");
        let many = run_sharded(&prog, &[400], 500, 8).expect("t8");
        assert_eq!(one.arch_digest, many.arch_digest);
        assert_eq!(one.mem_digest, many.mem_digest);
        assert_eq!(one.report, many.report);
        assert_eq!(one.boundaries, many.boundaries);
    }

    #[test]
    fn short_runs_become_a_single_shard() {
        let prog = sieve_prog();
        let sharded = run_sharded(&prog, &[3], 1_000_000, 4).expect("runs");
        assert_eq!(sharded.shards(), 1);
        let (seq, _) = run_risc_with(&prog, &[3], SimConfig::default()).expect("seq");
        assert_eq!(
            sharded.report.outcome,
            InjectOutcome::Halted { result: seq }
        );
    }

    #[test]
    fn tiny_shard_cycles_hit_delay_slot_boundaries() {
        // With a 7-instruction shard grain, boundaries land on every
        // alignment relative to delayed transfers, including inside
        // delay slots with a pending target.
        let prog = sieve_prog();
        let (seq_result, seq_stats) =
            run_risc_with(&prog, &[40], SimConfig::default()).expect("seq");
        let sharded = run_sharded(&prog, &[40], 7, 3).expect("sharded");
        assert!(sharded.shards() > 10);
        assert_eq!(
            sharded.report.outcome,
            InjectOutcome::Halted { result: seq_result }
        );
        assert_eq!(sharded.report.stats, seq_stats);
    }

    #[test]
    fn injected_sharding_replays_the_exact_schedule() {
        let prog = sieve_prog();
        let cfg = SimConfig::default();
        let inject = InjectConfig {
            seed: 0xfeed,
            rate: 40,
            modes: InjectModes::transparent(),
        };
        let seq = run_risc_injected(&prog, &[400], cfg.clone(), inject, true)
            .expect("sequential injected");
        let sharded = run_sharded_injected(&prog, &[400], cfg, inject, true, 900, 4)
            .expect("sharded injected");
        assert_eq!(sharded.report, seq, "outcome + stats + events all match");
        assert!(sharded.shards() > 1);
    }

    #[test]
    fn zero_shard_cycles_is_rejected() {
        let prog = sieve_prog();
        assert_eq!(
            run_sharded(&prog, &[5], 0, 1).unwrap_err(),
            ShardError::BadShardCycles
        );
    }

    #[test]
    fn shard_cap_is_enforced() {
        let prog = sieve_prog();
        match run_sharded(&prog, &[2000], 1, 1) {
            Err(ShardError::TooManyShards { planned }) => assert_eq!(planned, MAX_SHARDS),
            other => panic!("expected TooManyShards, got {other:?}"),
        }
    }
}
