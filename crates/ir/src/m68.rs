//! The MC (16-bit-word, 68000-class) code generator.
//!
//! Calling convention: arguments pushed right-to-left, `JSR`, caller pops
//! with `ADDSP`; callee builds a frame with `LINK`/`UNLK`. Parameter *i*
//! lives at `8+4i(fp)` (saved FP at `0(fp)`, return address at `4(fp)`),
//! non-parameter local *j* at `−4(j+1)(fp)`. Results return in `D0`;
//! expression temporaries use `D1`–`D5`; `A0` is the address temporary for
//! dynamic array indexing. MC's ALU is two-address (`dst := dst op src`),
//! so every non-trivial expression node costs a `move` plus the operation
//! — exactly the code a 1981 compiler emitted for the 68000.

use crate::ast::{BinOp, CmpOp, Cond, Expr, Function, Module, Stmt};
use crate::layout::{Layout, ARGV_BASE};
use crate::runner::CodegenError;
use risc1_m68::{Ea, McAsm, McLabel, McOp, McProgram};

const MAX_TEMPS: u8 = 5; // D1..D5

/// Compiles a validated module to an MC program. Arguments are read from
/// [`ARGV_BASE`] by the entry stub.
///
/// # Errors
/// Validation errors, or [`CodegenError::OutOfRegisters`] when an
/// expression needs more than the five data-register temporaries.
pub fn compile_mc(module: &Module) -> Result<McProgram, CodegenError> {
    module.validate()?;
    let layout = Layout::of(module);
    let mut gen = McGen {
        asm: McAsm::new(),
        layout,
        fn_labels: Vec::new(),
    };
    for _ in &module.functions {
        let l = gen.asm.new_label();
        gen.fn_labels.push(l);
    }

    // Entry stub.
    let nargs = module.functions[0].params;
    for j in (0..nargs).rev() {
        gen.asm
            .emit(McOp::Move, Ea::Abs(ARGV_BASE + 4 * j as u32), Ea::Push);
    }
    gen.asm.branch(McOp::Jsr, gen.fn_labels[0]);
    if nargs > 0 {
        gen.asm.ext16(McOp::AddSp, 4 * nargs as i16);
    }
    gen.asm.emit0(McOp::Halt);

    for (fid, func) in module.functions.iter().enumerate() {
        gen.asm.bind(gen.fn_labels[fid]);
        gen.asm.symbol(&func.name);
        gen.function(func)?;
    }

    let mut prog = gen.asm.finish().map_err(CodegenError::McBuild)?;
    prog.data = gen.layout.data_images(module);
    Ok(prog)
}

struct McGen {
    asm: McAsm,
    layout: Layout,
    fn_labels: Vec<McLabel>,
}

impl McGen {
    fn temp(&self, depth: u8) -> Result<Ea, CodegenError> {
        if depth >= MAX_TEMPS {
            return Err(CodegenError::OutOfRegisters {
                func: "<mc expression>".to_string(),
            });
        }
        Ok(Ea::D(1 + depth))
    }

    fn local_operand(func: &Function, v: usize) -> Ea {
        if v < func.params {
            Ea::Frame(8 + 4 * v as i16)
        } else {
            Ea::Frame(-4 * (v as i16 - func.params as i16 + 1))
        }
    }

    fn function(&mut self, func: &Function) -> Result<(), CodegenError> {
        let frame_locals = func.locals - func.params;
        self.asm.ext16(McOp::Link, 4 * frame_locals as i16);
        for j in 0..frame_locals {
            self.asm
                .emit_dst(McOp::Clr, Self::local_operand(func, func.params + j));
        }
        self.block(func, &func.body)?;
        // Implicit return 0.
        self.asm.emit_dst(McOp::Clr, Ea::D(0));
        self.asm.emit0(McOp::Unlk);
        self.asm.emit0(McOp::Rts);
        Ok(())
    }

    fn block(&mut self, func: &Function, stmts: &[Stmt]) -> Result<(), CodegenError> {
        for s in stmts {
            self.stmt(func, s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, func: &Function, stmt: &Stmt) -> Result<(), CodegenError> {
        match stmt {
            Stmt::Assign(v, Expr::Call(f, args)) => {
                self.user_call(func, *f, args)?;
                self.asm
                    .emit(McOp::Move, Ea::D(0), Self::local_operand(func, *v));
            }
            Stmt::Expr(Expr::Call(f, args)) => self.user_call(func, *f, args)?,
            Stmt::Assign(v, e) => {
                let o = self.eval(func, e, 0)?;
                self.asm.emit(McOp::Move, o, Self::local_operand(func, *v));
            }
            Stmt::StoreW(g, idx, val) => {
                let o_v = self.eval(func, val, 0)?;
                let dst = self.element_dst(func, *g, idx, 1, false)?;
                self.asm.emit(McOp::Move, o_v, dst);
            }
            Stmt::StoreB(g, idx, val) => {
                let o_v = self.eval(func, val, 0)?;
                let dst = self.element_dst(func, *g, idx, 1, true)?;
                self.asm.emit(McOp::MoveB, o_v, dst);
            }
            Stmt::Return(e) => {
                let o = self.eval(func, e, 0)?;
                self.asm.emit(McOp::Move, o, Ea::D(0));
                self.asm.emit0(McOp::Unlk);
                self.asm.emit0(McOp::Rts);
            }
            Stmt::If { cond, then, els } => {
                let else_l = self.asm.new_label();
                self.branch_unless(func, cond, else_l)?;
                self.block(func, then)?;
                if els.is_empty() {
                    self.asm.bind(else_l);
                } else {
                    let end_l = self.asm.new_label();
                    self.asm.branch(McOp::Bra, end_l);
                    self.asm.bind(else_l);
                    self.block(func, els)?;
                    self.asm.bind(end_l);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.asm.new_label();
                let out = self.asm.new_label();
                self.asm.bind(top);
                self.branch_unless(func, cond, out)?;
                self.block(func, body)?;
                self.asm.branch(McOp::Bra, top);
                self.asm.bind(out);
            }
            Stmt::Expr(_) => {}
        }
        Ok(())
    }

    fn branch_unless(
        &mut self,
        func: &Function,
        cond: &Cond,
        target: McLabel,
    ) -> Result<(), CodegenError> {
        let lhs = self.eval(func, &cond.lhs, 0)?;
        let rhs = self.eval(func, &cond.rhs, 1)?;
        // flags := dst − src with dst = lhs.
        self.asm.emit(McOp::Cmp, rhs, lhs);
        let br = match cond.op.negate() {
            CmpOp::Eq => McOp::Beq,
            CmpOp::Ne => McOp::Bne,
            CmpOp::Lt => McOp::Blt,
            CmpOp::Le => McOp::Ble,
            CmpOp::Gt => McOp::Bgt,
            CmpOp::Ge => McOp::Bge,
        };
        self.asm.branch(br, target);
        Ok(())
    }

    /// Evaluates an expression to an operand; non-trivial results land in
    /// data-register temp `depth`.
    fn eval(&mut self, func: &Function, e: &Expr, depth: u8) -> Result<Ea, CodegenError> {
        Ok(match e {
            Expr::Const(v) => Ea::imm(*v),
            Expr::Local(v) => Self::local_operand(func, *v),
            Expr::LoadW(g, idx) => {
                if let Expr::Const(c) = idx.as_ref() {
                    Ea::Abs(self.layout.addr(*g).wrapping_add((*c as u32) << 2))
                } else {
                    let t = self.temp(depth)?;
                    let src = self.element_dst(func, *g, idx, depth, false)?;
                    self.asm.emit(McOp::Move, src, t);
                    t
                }
            }
            Expr::LoadB(g, idx) => {
                let src = if let Expr::Const(c) = idx.as_ref() {
                    Ea::Abs(self.layout.addr(*g).wrapping_add(*c as u32))
                } else {
                    self.element_dst(func, *g, idx, depth, true)?
                };
                let t = self.temp(depth)?;
                // Byte moves into a data register zero-extend.
                self.asm.emit(McOp::MoveB, src, t);
                t
            }
            Expr::Bin(op, a, b) => {
                let oa = self.eval(func, a, depth)?;
                let ob = self.eval(func, b, depth + 1)?;
                let t = self.temp(depth)?;
                if oa != t {
                    self.asm.emit(McOp::Move, oa, t);
                }
                let mc = match op {
                    BinOp::Add => McOp::Add,
                    BinOp::Sub => McOp::Sub,
                    BinOp::Mul => McOp::Mul,
                    BinOp::Div => McOp::Divs,
                    BinOp::And => McOp::And,
                    BinOp::Or => McOp::Or,
                    BinOp::Xor => McOp::Eor,
                    BinOp::Shl => McOp::Lsl,
                    BinOp::Shr => McOp::Asr,
                };
                self.asm.emit(mc, ob, t);
                t
            }
            Expr::Call(..) => unreachable!("validated: calls only at statement position"),
        })
    }

    /// Materialises the memory operand for `g[idx]`. Dynamic indices route
    /// through `A0`: `idx<<scale + base → A0`, operand `(A0)`.
    fn element_dst(
        &mut self,
        func: &Function,
        g: usize,
        idx: &Expr,
        depth: u8,
        byte: bool,
    ) -> Result<Ea, CodegenError> {
        let base = self.layout.addr(g);
        if let Expr::Const(c) = idx {
            let shift = if byte { 0 } else { 2 };
            return Ok(Ea::Abs(base.wrapping_add((*c as u32) << shift)));
        }
        let oi = self.eval(func, idx, depth)?;
        let t = self.temp(depth)?;
        if oi != t {
            self.asm.emit(McOp::Move, oi, t);
        }
        if !byte {
            self.asm.emit(McOp::Lsl, Ea::Imm16(2), t);
        }
        self.asm.emit(McOp::Add, Ea::Imm(base), t);
        self.asm.emit(McOp::Move, t, Ea::A(0));
        Ok(Ea::Ind(0))
    }

    fn user_call(&mut self, func: &Function, f: usize, args: &[Expr]) -> Result<(), CodegenError> {
        for a in args.iter().rev() {
            let o = self.eval(func, a, 0)?;
            self.asm.emit(McOp::Move, o, Ea::Push);
        }
        self.asm.branch(McOp::Jsr, self.fn_labels[f]);
        if !args.is_empty() {
            self.asm.ext16(McOp::AddSp, 4 * args.len() as i16);
        }
        Ok(())
    }
}
