//! The RISC I code generator.
//!
//! ## Conventions (the register-window calling standard)
//!
//! | registers | use |
//! |-----------|-----|
//! | `r1` | program stack pointer (reserved, unused by generated code) |
//! | `r10`–`r15` | outgoing arguments (become the callee's `r26`–`r31`) |
//! | `r16`–`r16+L−1` | the function's `L` named locals (params copied in) |
//! | `r16+L`–`r24` | expression temporaries |
//! | `r25` | return address, written by `CALL` into the callee's window |
//! | `r26`–`r31` | incoming arguments; `r26` doubles as the return value |
//!
//! A function returns with `ret r25, #8` (the call site plus its delay
//! slot). Results travel "for free" through the window overlap: the callee
//! writes `r26`, which *is* the caller's `r10`.
//!
//! RISC I has no multiply or divide instruction; `*` and `/` lower to calls
//! to runtime routines (`__mul`, `__div`) appended to the program — exactly
//! what the Berkeley C compiler did, and a real cost the paper's
//! multiply-heavy benchmarks pay.
//!
//! Global `r8` is reserved as the **global data pointer**: a small entry
//! stub loads it with [`crate::layout::GLOBALS_BASE`] once, and every
//! global-array access addresses `r8 + offset`, folding constant element
//! addresses into a single load/store — the idiom contemporary compilers
//! used on register-rich machines.
//!
//! Expression temporaries never live across a call: user calls are
//! restricted to statement position (see [`crate::ast`]), and the runtime
//! routines execute in their own register window, so LOCAL-register
//! temporaries survive them untouched.

use crate::ast::{BinOp, CmpOp, Cond, Expr, Function, Module, Stmt};
use crate::delay::fill_delay_slots;
use crate::layout::Layout;
use crate::rasm::{RLabel, RiscAsm};
use crate::runner::CodegenError;
use risc1_core::Program;
use risc1_isa::insn::{IMM13_MAX, IMM13_MIN};
use risc1_isa::{Cond as JCond, Instruction, Opcode, Reg, Short2};

/// Options for the RISC backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RiscOpts {
    /// Run the delay-slot-filling peephole pass (E9 toggles this).
    pub fill_delay_slots: bool,
}

impl Default for RiscOpts {
    fn default() -> Self {
        RiscOpts {
            fill_delay_slots: true,
        }
    }
}

const LOCAL_BASE: u8 = 16;
const TEMP_LIMIT: u8 = 25; // r25 is the link register
const ARG_BASE: u8 = 10;
const PARAM_BASE: u8 = 26;
/// Global register reserved as the global-data base pointer.
const GLOBAL_PTR: Reg = Reg::R8;

/// Compiles a validated module to a RISC I program. `main` (function 0) is
/// the entry point; its arguments arrive in `r26…` (set them with
/// [`risc1_core::Cpu::set_args`]) and its return lands in `r26`.
///
/// # Errors
/// Validation errors, or [`CodegenError::OutOfRegisters`] when a function's
/// locals plus its deepest expression exceed the 9 LOCAL registers
/// available (the documented limit of this 1981-style compiler).
pub fn compile_risc(module: &Module, opts: RiscOpts) -> Result<Program, CodegenError> {
    module.validate()?;
    let layout = Layout::of(module);
    let mut gen = RiscGen {
        asm: RiscAsm::new(),
        layout,
        fn_labels: Vec::new(),
        mul_label: None,
        div_label: None,
        module,
    };
    for _ in &module.functions {
        let l = gen.asm.new_label();
        gen.fn_labels.push(l);
    }

    // Entry stub: establish the global-data pointer, forward the harness
    // arguments (in this window's HIGH registers) to main's LOW registers,
    // call main, expose its result in r26, halt via ret-at-depth-0.
    let stub = gen.asm.new_label();
    gen.asm.bind(stub);
    gen.asm.symbol("__start");
    let mut entry_item = gen.asm.here();
    for i in Instruction::load_constant(GLOBAL_PTR, crate::layout::GLOBALS_BASE) {
        gen.asm.push(i);
    }
    for p in 0..module.functions[0].params {
        gen.asm.push(Instruction::reg(
            Opcode::Add,
            Reg::new(ARG_BASE + p as u8).expect("≤6"),
            Reg::new(PARAM_BASE + p as u8).expect("≤6"),
            Short2::ZERO,
        ));
    }
    gen.asm.callr(Reg::R25, gen.fn_labels[0]);
    gen.asm.push(Instruction::reg(
        Opcode::Add,
        Reg::R26,
        Reg::R10,
        Short2::ZERO,
    ));
    gen.asm.push(Instruction::ret(Reg::R0, Short2::ZERO));
    gen.asm.push(Instruction::nop());

    for (fid, func) in module.functions.iter().enumerate() {
        gen.asm.bind(gen.fn_labels[fid]);
        gen.asm.symbol(&func.name);
        gen.function(fid, func)?;
    }
    gen.emit_runtime();

    if opts.fill_delay_slots {
        fill_delay_slots(&mut gen.asm);
        // Re-derive the entry item from the (possibly shifted) stub label.
        entry_item = gen.asm.labels[stub.0].expect("stub bound");
    }

    let mut prog = gen.asm.finish(entry_item).map_err(CodegenError::Rasm)?;
    prog.data = gen.layout.data_images(module);
    Ok(prog)
}

struct RiscGen<'m> {
    asm: RiscAsm,
    layout: Layout,
    fn_labels: Vec<RLabel>,
    mul_label: Option<RLabel>,
    div_label: Option<RLabel>,
    module: &'m Module,
}

impl<'m> RiscGen<'m> {
    fn local_reg(&self, v: usize) -> Reg {
        Reg::new(LOCAL_BASE + v as u8).expect("validated local index")
    }

    fn temp_reg(&self, func: &Function, depth: u8) -> Result<Reg, CodegenError> {
        let n = LOCAL_BASE + func.locals as u8 + depth;
        if n >= TEMP_LIMIT {
            return Err(CodegenError::OutOfRegisters {
                func: func.name.clone(),
            });
        }
        Ok(Reg::new(n).expect("below r25"))
    }

    fn function(&mut self, _fid: usize, func: &Function) -> Result<(), CodegenError> {
        // Prologue: copy incoming parameters into their LOCAL homes.
        for p in 0..func.params {
            let src = Reg::new(PARAM_BASE + p as u8).expect("≤6 params");
            self.mov(self.local_reg(p), src);
        }
        self.block(func, &func.body)?;
        // Implicit `return 0` for control that falls off the end.
        self.push(Instruction::reg(
            Opcode::Add,
            Reg::R26,
            Reg::R0,
            Short2::ZERO,
        ));
        self.emit_ret();
        Ok(())
    }

    fn block(&mut self, func: &Function, stmts: &[Stmt]) -> Result<(), CodegenError> {
        for s in stmts {
            self.stmt(func, s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, func: &Function, stmt: &Stmt) -> Result<(), CodegenError> {
        match stmt {
            Stmt::Assign(v, Expr::Call(f, args)) => {
                self.user_call(func, *f, args)?;
                self.mov(self.local_reg(*v), Reg::R10);
            }
            Stmt::Expr(Expr::Call(f, args)) => {
                self.user_call(func, *f, args)?;
            }
            Stmt::Assign(v, e) => {
                let dest = self.local_reg(*v);
                match self.simple_s2(e) {
                    Some(s2) => self.push(Instruction::reg(Opcode::Add, dest, Reg::R0, s2)),
                    None => {
                        let t = self.eval(func, e, 0)?;
                        self.mov(dest, t);
                    }
                }
            }
            Stmt::StoreW(g, idx, val) => self.store(func, *g, idx, val, false)?,
            Stmt::StoreB(g, idx, val) => self.store(func, *g, idx, val, true)?,
            Stmt::Return(e) => {
                match self.simple_s2(e) {
                    Some(s2) => self.push(Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, s2)),
                    None => {
                        let t = self.eval(func, e, 0)?;
                        self.mov(Reg::R26, t);
                    }
                }
                self.emit_ret();
            }
            Stmt::If { cond, then, els } => {
                let else_l = self.asm.new_label();
                self.branch_unless(func, cond, else_l)?;
                self.block(func, then)?;
                if els.is_empty() {
                    self.asm.bind(else_l);
                } else {
                    let end_l = self.asm.new_label();
                    self.asm.jmpr(JCond::Alw, end_l);
                    self.asm.bind(else_l);
                    self.block(func, els)?;
                    self.asm.bind(end_l);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.asm.new_label();
                let out = self.asm.new_label();
                self.asm.bind(top);
                self.branch_unless(func, cond, out)?;
                self.block(func, body)?;
                self.asm.jmpr(JCond::Alw, top);
                self.asm.bind(out);
            }
            Stmt::Expr(_) => {
                // Call-free expression statements have no effects: nothing
                // to emit.
            }
        }
        Ok(())
    }

    /// Emits `flags := lhs − rhs; jmpr !op, target`.
    fn branch_unless(
        &mut self,
        func: &Function,
        cond: &Cond,
        target: RLabel,
    ) -> Result<(), CodegenError> {
        let ra = self.eval(func, &cond.lhs, 0)?;
        let s2 = self.eval_s2(func, &cond.rhs, 1)?;
        self.push(Instruction::reg_scc(Opcode::Sub, Reg::R0, ra, s2));
        let jc = match cond.op.negate() {
            CmpOp::Eq => JCond::Eq,
            CmpOp::Ne => JCond::Ne,
            CmpOp::Lt => JCond::Lt,
            CmpOp::Le => JCond::Le,
            CmpOp::Gt => JCond::Gt,
            CmpOp::Ge => JCond::Ge,
        };
        self.asm.jmpr(jc, target);
        Ok(())
    }

    /// Evaluates `e` and returns a register holding its value. Locals pass
    /// through without a copy; anything else lands in temp slot `depth`.
    fn eval(&mut self, func: &Function, e: &Expr, depth: u8) -> Result<Reg, CodegenError> {
        if let Expr::Local(v) = e {
            return Ok(self.local_reg(*v));
        }
        let t = self.temp_reg(func, depth)?;
        self.eval_into(func, e, t, depth)?;
        Ok(t)
    }

    /// Evaluates `e` into a [`Short2`] operand (immediates and locals used
    /// directly; anything else through temp slot `depth`).
    fn eval_s2(&mut self, func: &Function, e: &Expr, depth: u8) -> Result<Short2, CodegenError> {
        if let Some(s2) = self.simple_s2(e) {
            return Ok(s2);
        }
        Ok(Short2::Reg(self.eval(func, e, depth)?))
    }

    /// A `Short2` for the expression if it needs no code at all.
    fn simple_s2(&self, e: &Expr) -> Option<Short2> {
        match e {
            Expr::Const(v) if (IMM13_MIN..=IMM13_MAX).contains(v) => Short2::imm(*v),
            Expr::Local(v) => Some(Short2::Reg(self.local_reg(*v))),
            _ => None,
        }
    }

    fn eval_into(
        &mut self,
        func: &Function,
        e: &Expr,
        dest: Reg,
        depth: u8,
    ) -> Result<(), CodegenError> {
        match e {
            Expr::Const(v) => {
                for i in Instruction::load_constant(dest, *v as u32) {
                    self.push(i);
                }
            }
            Expr::Local(v) => self.mov(dest, self.local_reg(*v)),
            Expr::Bin(BinOp::Mul, a, b) => self.runtime_call(func, a, b, depth, dest, true)?,
            Expr::Bin(BinOp::Div, a, b) => self.runtime_call(func, a, b, depth, dest, false)?,
            Expr::Bin(op, a, b) => {
                let ra = self.eval(func, a, depth)?;
                let s2 = self.eval_s2(func, b, depth + 1)?;
                let opcode = match op {
                    BinOp::Add => Opcode::Add,
                    BinOp::Sub => Opcode::Sub,
                    BinOp::And => Opcode::And,
                    BinOp::Or => Opcode::Or,
                    BinOp::Xor => Opcode::Xor,
                    BinOp::Shl => Opcode::Sll,
                    BinOp::Shr => Opcode::Sra,
                    BinOp::Mul | BinOp::Div => unreachable!("handled above"),
                };
                self.push(Instruction::reg(opcode, dest, ra, s2));
            }
            Expr::LoadW(g, idx) => self.load(func, *g, idx, dest, depth, false)?,
            Expr::LoadB(g, idx) => self.load(func, *g, idx, dest, depth, true)?,
            Expr::Call(..) => {
                unreachable!("validated: calls only at statement position")
            }
        }
        Ok(())
    }

    /// Computes the address of `g[idx]` into `dest` (clobbering temp
    /// `depth`+), returning the constant byte offset to fold into the
    /// load/store if the whole address is constant.
    fn element_addr(
        &mut self,
        func: &Function,
        g: usize,
        idx: &Expr,
        dest: Reg,
        depth: u8,
        byte: bool,
    ) -> Result<Option<(Reg, Short2)>, CodegenError> {
        let base = self.layout.addr(g);
        let gp_off = base - crate::layout::GLOBALS_BASE;
        let scale = if byte { 0 } else { 2 };
        if let Expr::Const(c) = idx {
            // Constant element: fold the whole offset into the load/store
            // displacement off the global pointer — zero extra code.
            let off = gp_off.wrapping_add((*c as u32) << scale);
            if off <= IMM13_MAX as u32 {
                return Ok(Some((
                    GLOBAL_PTR,
                    Short2::imm(off as i32).expect("checked"),
                )));
            }
            let addr = base.wrapping_add((*c as u32) << scale);
            for i in Instruction::load_constant(dest, addr) {
                self.push(i);
            }
            return Ok(Some((dest, Short2::ZERO)));
        }
        // Dynamic index: dest := (idx << scale) + r8, displacement = gp_off.
        self.eval_into(func, idx, dest, depth)?;
        if scale != 0 {
            self.push(Instruction::reg(
                Opcode::Sll,
                dest,
                dest,
                Short2::imm(scale).expect("small"),
            ));
        }
        self.push(Instruction::reg(
            Opcode::Add,
            dest,
            dest,
            Short2::Reg(GLOBAL_PTR),
        ));
        if gp_off <= IMM13_MAX as u32 {
            return Ok(Some((dest, Short2::imm(gp_off as i32).expect("checked"))));
        }
        // Far global: materialise the remaining offset in a second temp.
        let tb = self.temp_reg(func, depth + 1)?;
        for i in Instruction::load_constant(tb, gp_off) {
            self.push(i);
        }
        self.push(Instruction::reg(Opcode::Add, dest, dest, Short2::Reg(tb)));
        Ok(Some((dest, Short2::ZERO)))
    }

    fn load(
        &mut self,
        func: &Function,
        g: usize,
        idx: &Expr,
        dest: Reg,
        depth: u8,
        byte: bool,
    ) -> Result<(), CodegenError> {
        let (rs1, s2) = self
            .element_addr(func, g, idx, dest, depth, byte)?
            .expect("always some");
        let op = if byte { Opcode::Ldbu } else { Opcode::Ldl };
        self.push(Instruction::reg(op, dest, rs1, s2));
        Ok(())
    }

    fn store(
        &mut self,
        func: &Function,
        g: usize,
        idx: &Expr,
        val: &Expr,
        byte: bool,
    ) -> Result<(), CodegenError> {
        // Data first, then the address. Locals pass through without a
        // temp, leaving the full temp file to the address computation.
        let data = self.eval(func, val, 0)?;
        let addr_depth = if matches!(val, Expr::Local(_)) { 0 } else { 1 };
        let addr_t = self.temp_reg(func, addr_depth)?;
        let (rs1, s2) = self
            .element_addr(func, g, idx, addr_t, addr_depth, byte)?
            .expect("always some");
        let op = if byte { Opcode::Stb } else { Opcode::Stl };
        self.push(Instruction::reg(op, data, rs1, s2));
        Ok(())
    }

    /// Emits a call to `__mul`/`__div` with operands evaluated into the
    /// argument registers. Temporaries survive: the routine runs in its own
    /// window.
    fn runtime_call(
        &mut self,
        func: &Function,
        a: &Expr,
        b: &Expr,
        depth: u8,
        dest: Reg,
        is_mul: bool,
    ) -> Result<(), CodegenError> {
        let ra = self.eval(func, a, depth)?;
        let s2 = self.eval_s2(func, b, depth + 1)?;
        self.push(Instruction::reg(Opcode::Add, Reg::R10, ra, Short2::ZERO));
        self.push(Instruction::reg(Opcode::Add, Reg::R11, Reg::R0, s2));
        let label = if is_mul {
            *self.mul_label.get_or_insert_with(|| self.asm.new_label())
        } else {
            *self.div_label.get_or_insert_with(|| self.asm.new_label())
        };
        self.asm.callr(Reg::R25, label);
        self.mov(dest, Reg::R10);
        Ok(())
    }

    fn user_call(&mut self, func: &Function, f: usize, args: &[Expr]) -> Result<(), CodegenError> {
        // Stage arguments in temporaries first: evaluating a later argument
        // may itself lower to a runtime call that clobbers r10–r15.
        let mut staged: Vec<Short2> = Vec::with_capacity(args.len());
        for (j, a) in args.iter().enumerate() {
            if let Some(s2) = self.simple_s2(a) {
                staged.push(s2);
            } else {
                let t = self.eval(func, a, j as u8)?;
                // `eval` may return a local passthrough (safe) or the temp
                // for slot j — either survives subsequent arguments because
                // later slots are higher.
                staged.push(Short2::Reg(t));
            }
        }
        for (j, s2) in staged.into_iter().enumerate() {
            let arg = Reg::new(ARG_BASE + j as u8).expect("≤6 args");
            self.push(Instruction::reg(Opcode::Add, arg, Reg::R0, s2));
        }
        self.asm.callr(Reg::R25, self.fn_labels[f]);
        Ok(())
    }

    fn emit_ret(&mut self) {
        self.push(Instruction::ret(Reg::R25, Short2::imm(8).expect("8")));
        self.push(Instruction::nop());
    }

    fn mov(&mut self, dest: Reg, src: Reg) {
        if dest != src {
            self.push(Instruction::reg(Opcode::Add, dest, src, Short2::ZERO));
        }
    }

    fn push(&mut self, i: Instruction) {
        self.asm.push(i);
    }

    /// Appends the `__mul`/`__div` runtime routines if referenced.
    fn emit_runtime(&mut self) {
        let _ = self.module;
        if let Some(l) = self.mul_label {
            self.asm.bind(l);
            self.asm.symbol("__mul");
            self.emit_mul();
        }
        if let Some(l) = self.div_label {
            self.asm.bind(l);
            self.asm.symbol("__div");
            self.emit_div();
        }
    }

    /// Shift-add multiply: args in r26/r27, result in r26.
    ///
    /// Sign-normalises the multiplier first (negation is exact mod 2³², so
    /// `±(|a|·|b|)` equals `a·b` for every input including `i32::MIN`);
    /// runtime is then proportional to the magnitude of `b` — a small
    /// multiplier costs only a few iterations, as in the real routines.
    fn emit_mul(&mut self) {
        use Opcode::*;
        let imm = |v: i32| Short2::imm(v).expect("small");
        let top = self.asm.new_label();
        let skip = self.asm.new_label();
        let done = self.asm.new_label();
        let a_pos = self.asm.new_label();
        let b_pos = self.asm.new_label();
        let no_neg = self.asm.new_label();
        let r = |n: u8| Reg::new(n).expect("reg");
        // r16 acc, r17 |a|, r18 |b|, r19 scratch, r20 sign
        self.push(Instruction::reg(
            Xor,
            r(20),
            Reg::R26,
            Short2::Reg(Reg::R27),
        ));
        self.push(Instruction::reg(Add, r(16), Reg::R0, imm(0)));
        self.push(Instruction::reg_scc(Add, r(17), Reg::R26, imm(0)));
        self.asm.jmpr(JCond::Ge, a_pos);
        self.push(Instruction::reg(Subr, r(17), r(17), imm(0)));
        self.asm.bind(a_pos);
        self.push(Instruction::reg_scc(Add, r(18), Reg::R27, imm(0)));
        self.asm.jmpr(JCond::Ge, b_pos);
        self.push(Instruction::reg(Subr, r(18), r(18), imm(0)));
        self.asm.bind(b_pos);
        self.asm.bind(top);
        self.push(Instruction::reg_scc(Sub, Reg::R0, r(18), imm(0)));
        self.asm.jmpr(JCond::Eq, done);
        self.push(Instruction::reg(And, r(19), r(18), imm(1)));
        self.push(Instruction::reg_scc(Sub, Reg::R0, r(19), imm(0)));
        self.asm.jmpr(JCond::Eq, skip);
        self.push(Instruction::reg(Add, r(16), r(16), Short2::Reg(r(17))));
        self.asm.bind(skip);
        self.push(Instruction::reg(Sll, r(17), r(17), imm(1)));
        self.push(Instruction::reg(Srl, r(18), r(18), imm(1)));
        self.asm.jmpr(JCond::Alw, top);
        self.asm.bind(done);
        self.push(Instruction::reg_scc(Add, Reg::R0, r(20), imm(0)));
        self.asm.jmpr(JCond::Ge, no_neg);
        self.push(Instruction::reg(Subr, r(16), r(16), imm(0)));
        self.asm.bind(no_neg);
        self.push(Instruction::reg(Add, Reg::R26, r(16), Short2::ZERO));
        self.emit_ret();
    }

    /// Signed restoring divide: args in r26 (dividend) / r27 (divisor),
    /// truncating quotient in r26. Divide-by-zero executes a deliberately
    /// misaligned load so the simulator reports a fault (the machine's
    /// equivalent of the VAX arithmetic trap).
    fn emit_div(&mut self) {
        use Opcode::*;
        let imm = |v: i32| Short2::imm(v).expect("small");
        let r = |n: u8| Reg::new(n).expect("reg");
        let (a_pos, b_pos, top, no_sub, after, no_neg) = (
            self.asm.new_label(),
            self.asm.new_label(),
            self.asm.new_label(),
            self.asm.new_label(),
            self.asm.new_label(),
            self.asm.new_label(),
        );
        // r16 |a|, r17 |b|, r18 quotient, r19 remainder, r20 i, r21 bit,
        // r22 sign, r23 scratch
        // trap on divide by zero
        self.push(Instruction::reg_scc(Sub, Reg::R0, Reg::R27, imm(0)));
        self.asm.jmpr(JCond::Ne, a_pos);
        self.push(Instruction::reg(Ldl, Reg::R0, Reg::R0, imm(1))); // misaligned: trap
        self.asm.bind(a_pos);
        // sign := a ^ b (bit 31); |a|, |b|
        self.push(Instruction::reg(
            Xor,
            r(22),
            Reg::R26,
            Short2::Reg(Reg::R27),
        ));
        self.push(Instruction::reg(Add, r(16), Reg::R26, imm(0)));
        self.push(Instruction::reg_scc(Sub, Reg::R0, r(16), imm(0)));
        self.asm.jmpr(JCond::Ge, b_pos);
        self.push(Instruction::reg(Subr, r(16), r(16), imm(0))); // r16 := 0 - r16
        self.asm.bind(b_pos);
        let b_done = self.asm.new_label();
        self.push(Instruction::reg(Add, r(17), Reg::R27, imm(0)));
        self.push(Instruction::reg_scc(Sub, Reg::R0, r(17), imm(0)));
        self.asm.jmpr(JCond::Ge, b_done);
        self.push(Instruction::reg(Subr, r(17), r(17), imm(0)));
        self.asm.bind(b_done);
        // q := 0; rem := 0; i := 31
        self.push(Instruction::reg(Add, r(18), Reg::R0, imm(0)));
        self.push(Instruction::reg(Add, r(19), Reg::R0, imm(0)));
        self.push(Instruction::reg(Add, r(20), Reg::R0, imm(31)));
        self.asm.bind(top);
        // rem := rem<<1 | ((|a| >> i) & 1)
        self.push(Instruction::reg(Sll, r(19), r(19), imm(1)));
        self.push(Instruction::reg(Srl, r(23), r(16), Short2::Reg(r(20))));
        self.push(Instruction::reg(And, r(23), r(23), imm(1)));
        self.push(Instruction::reg(Or, r(19), r(19), Short2::Reg(r(23))));
        // if rem >= |b| (unsigned): rem -= |b|; q |= 1 << i
        self.push(Instruction::reg_scc(
            Sub,
            Reg::R0,
            r(19),
            Short2::Reg(r(17)),
        ));
        self.asm.jmpr(JCond::Lo, no_sub);
        self.push(Instruction::reg(Sub, r(19), r(19), Short2::Reg(r(17))));
        self.push(Instruction::reg(Add, r(23), Reg::R0, imm(1)));
        self.push(Instruction::reg(Sll, r(23), r(23), Short2::Reg(r(20))));
        self.push(Instruction::reg(Or, r(18), r(18), Short2::Reg(r(23))));
        self.asm.bind(no_sub);
        // i -= 1; while i >= 0
        self.push(Instruction::reg_scc(Sub, r(20), r(20), imm(1)));
        self.asm.jmpr(JCond::Ge, top);
        // apply sign
        self.push(Instruction::reg_scc(Sub, Reg::R0, r(22), imm(0)));
        self.asm.jmpr(JCond::Ge, no_neg);
        self.push(Instruction::reg(Subr, r(18), r(18), imm(0)));
        self.asm.bind(no_neg);
        self.push(Instruction::reg(Add, Reg::R26, r(18), Short2::ZERO));
        self.emit_ret();
        let _ = after;
    }
}
