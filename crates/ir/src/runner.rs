//! Compile-and-run helpers shared by tests, workloads and experiments.

use crate::ast::ValidateError;
use crate::layout::ARGV_BASE;
use crate::rasm::RasmError;
use risc1_cisc::{BuildError, CxConfig, CxCpu, CxProgram, CxStats};
use risc1_core::inject::RECOVERY_STUB_BASE;
use risc1_core::snapshot::RestoreError;
use risc1_core::{
    Cpu, Deadline, ExecError, ExecStats, FaultInjector, Halt, InjectConfig, InjectEvent,
    JournalEvent, Program, SimConfig, Snapshot,
};
use risc1_m68::{McBuildError, McConfig, McCpu, McProgram, McStats};
use std::fmt;

/// A code-generation failure (either backend).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// The module failed structural validation.
    Validate(ValidateError),
    /// RISC label resolution failed.
    Rasm(RasmError),
    /// CX stream building failed.
    CxBuild(BuildError),
    /// MC stream building failed.
    McBuild(McBuildError),
    /// An expression (plus the function's locals) exceeded the register
    /// budget of the simple 1981-style allocator.
    OutOfRegisters {
        /// Function (or context) that overflowed.
        func: String,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Validate(e) => write!(f, "validation: {e}"),
            CodegenError::Rasm(e) => write!(f, "risc assembly: {e}"),
            CodegenError::CxBuild(e) => write!(f, "cx assembly: {e}"),
            CodegenError::McBuild(e) => write!(f, "mc assembly: {e}"),
            CodegenError::OutOfRegisters { func } => {
                write!(f, "out of registers compiling `{func}`")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<ValidateError> for CodegenError {
    fn from(e: ValidateError) -> Self {
        CodegenError::Validate(e)
    }
}

/// Runs a compiled RISC I program with the given `main` arguments under the
/// default configuration, returning `(result, stats)`.
///
/// # Errors
/// Propagates simulator faults as boxed errors.
pub fn run_risc(prog: &Program, args: &[i32]) -> Result<(i32, ExecStats), risc1_core::ExecError> {
    run_risc_with(prog, args, SimConfig::default())
}

/// [`run_risc`] with an explicit simulator configuration.
///
/// # Errors
/// Propagates simulator faults.
pub fn run_risc_with(
    prog: &Program,
    args: &[i32],
    cfg: SimConfig,
) -> Result<(i32, ExecStats), risc1_core::ExecError> {
    // In debug builds, hold the code generator to the analyzer's bar:
    // nothing it emits may carry an error-severity finding (delay-slot
    // faults, undecodable words, paths that run off the end of code).
    #[cfg(debug_assertions)]
    {
        let diags = risc1_lint::lint_program(prog, &risc1_lint::LintConfig::from_sim(&cfg));
        assert!(
            !risc1_lint::has_errors(&diags),
            "codegen produced a program the linter rejects:\n{}",
            risc1_lint::render_text(&diags)
        );
    }
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(prog).expect("program fits memory");
    cpu.set_args(args);
    // Mirror the arguments into the ARGV area for uniformity with CX.
    for (i, &a) in args.iter().enumerate() {
        let _ = cpu
            .mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes());
    }
    cpu.run()?;
    Ok((cpu.result(), cpu.stats()))
}

/// How a fault-injected run ended.
///
/// This is the harness trichotomy: every injected execution either halts
/// cleanly (possibly after recovering from injected faults via the trap
/// unit) or stops with a *structured* simulator fault. A fourth outcome —
/// a panic — must never happen; `tests/fault_injection.rs` enforces this
/// over every workload and many seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectOutcome {
    /// The program reached a clean halt with `result` in `r26`.
    Halted {
        /// The program's return value.
        result: i32,
    },
    /// Execution terminated with a structured fault.
    Faulted {
        /// The fault that ended the run.
        error: ExecError,
    },
}

/// Everything an injected run produced: outcome, execution statistics
/// (including trap entry/return counters) and the injection schedule that
/// was actually applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectReport {
    /// How the run ended.
    pub outcome: InjectOutcome,
    /// Simulator statistics at termination.
    pub stats: ExecStats,
    /// The faults the injector applied, in order.
    pub events: Vec<InjectEvent>,
}

impl InjectReport {
    /// True when the run halted cleanly.
    pub fn is_halted(&self) -> bool {
        matches!(self.outcome, InjectOutcome::Halted { .. })
    }

    /// True when the run halted cleanly *and* produced `expect` — i.e. the
    /// injected faults were fully absorbed.
    pub fn recovered(&self, expect: i32) -> bool {
        self.outcome == InjectOutcome::Halted { result: expect }
    }
}

/// A failure to *arrange* an injected run (before any instruction
/// executes): the image does not fit memory, or more than six register
/// arguments were supplied. Distinct from [`InjectOutcome::Faulted`],
/// which is a structured fault of the simulated machine itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectSetupError {
    /// Loading the program image (or the recovery stubs) faulted.
    Load(risc1_core::MemError),
    /// More than six register arguments.
    Args(risc1_core::TooManyArgs),
}

impl fmt::Display for InjectSetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectSetupError::Load(e) => write!(f, "loading program: {e}"),
            InjectSetupError::Args(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InjectSetupError {}

/// Runs a compiled RISC I program under deterministic fault injection.
///
/// Identical `(prog, args, cfg, inject, recovery)` inputs produce an
/// identical injection schedule, trap counts and final state. With
/// `recovery` set, per-cause recovery stubs are installed at
/// [`RECOVERY_STUB_BASE`] (below `code_base`, an area program images never
/// touch) before execution, so vectorable faults enter handlers instead of
/// terminating the run.
///
/// This function never panics on any seed: setup problems come back as
/// `Err`, and every execution ends in the [`InjectOutcome`] trichotomy.
///
/// # Errors
/// [`InjectSetupError`] when the run could not be arranged at all.
pub fn run_risc_injected(
    prog: &Program,
    args: &[i32],
    cfg: SimConfig,
    inject: InjectConfig,
    recovery: bool,
) -> Result<InjectReport, InjectSetupError> {
    let mut injector = FaultInjector::new(inject);
    let mut cpu = setup_injected_cpu(prog, args, cfg, recovery)?;
    let outcome = loop {
        injector.pre_step(&mut cpu);
        match cpu.step() {
            Ok(Halt::Running) => {}
            Ok(Halt::Returned) => {
                break InjectOutcome::Halted {
                    result: cpu.result(),
                }
            }
            Err(error) => break InjectOutcome::Faulted { error },
        }
    };
    Ok(InjectReport {
        outcome,
        stats: cpu.stats(),
        events: injector.events().to_vec(),
    })
}

/// How a deadline-watched run ended: either the full [`InjectReport`] of a
/// completed execution, or a timeout with the partial statistics and
/// injection schedule gathered before the wall clock ran out.
///
/// This deliberately wraps — rather than extends — [`InjectOutcome`]: the
/// trichotomy (recovered / structured fault / clean halt) is a determinism
/// law, and a wall-clock expiry is host-dependent, so it lives one layer
/// out where nothing bit-compares it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimedOutcome {
    /// The run completed before the deadline (or had none).
    Finished(InjectReport),
    /// The wall-clock deadline passed mid-run.
    TimedOut {
        /// Simulator statistics at the moment the run was stopped.
        stats: ExecStats,
        /// Faults the injector had applied so far.
        events: Vec<InjectEvent>,
    },
}

impl TimedOutcome {
    /// The completed report, if the run finished.
    pub fn finished(self) -> Option<InjectReport> {
        match self {
            TimedOutcome::Finished(report) => Some(report),
            TimedOutcome::TimedOut { .. } => None,
        }
    }
}

/// [`run_risc_injected`] generalised for the serve layer: optional
/// injection (`None` runs the pristine program), an optional wall-clock
/// [`Deadline`] polled between steps (every
/// [`risc1_core::deadline::DEADLINE_POLL_STEPS`] steps, so the check never
/// perturbs the machine), and an optional journal-event sink filled the
/// way [`record_risc_injected`](crate::record_risc_injected) fills a
/// [`Journal`] — the sink is caller-owned so events survive even if the
/// caller later has to abandon the run.
///
/// When the deadline does not fire, the returned report is bit-identical
/// to [`run_risc_injected`] of the same `(prog, args, cfg, inject,
/// recovery)` — the chaos test in `tests/serve_chaos.rs` holds the serve
/// stack to exactly this law.
///
/// # Errors
/// [`InjectSetupError`] when the run could not be arranged at all.
pub fn run_risc_deadline(
    prog: &Program,
    args: &[i32],
    cfg: SimConfig,
    inject: Option<InjectConfig>,
    recovery: bool,
    deadline: Option<Deadline>,
    mut journal_events: Option<&mut Vec<JournalEvent>>,
) -> Result<TimedOutcome, InjectSetupError> {
    let mut injector = inject.map(FaultInjector::new);
    let mut cpu = setup_injected_cpu(prog, args, cfg, recovery)?;
    let mut step: u64 = 0;
    let outcome = loop {
        if let Some(d) = deadline {
            if Deadline::should_poll(step) && d.expired() {
                let events = injector.map_or_else(Vec::new, |i| i.events().to_vec());
                return Ok(TimedOutcome::TimedOut {
                    stats: cpu.stats(),
                    events,
                });
            }
        }
        if let Some(injector) = injector.as_mut() {
            let before = injector.events().len();
            injector.pre_step(&mut cpu);
            if injector.events().len() > before {
                if let Some(sink) = journal_events.as_deref_mut() {
                    let ev = injector.events()[before];
                    sink.push(JournalEvent {
                        step,
                        at_instruction: ev.at_instruction,
                        kind: ev.kind,
                    });
                }
            }
        }
        let halt = cpu.step();
        step += 1;
        match halt {
            Ok(Halt::Running) => {}
            Ok(Halt::Returned) => {
                break InjectOutcome::Halted {
                    result: cpu.result(),
                }
            }
            Err(error) => break InjectOutcome::Faulted { error },
        }
    };
    Ok(TimedOutcome::Finished(InjectReport {
        outcome,
        stats: cpu.stats(),
        events: injector.map_or_else(Vec::new, |i| i.events().to_vec()),
    }))
}

/// Warm start: restores `snap` into a fresh CPU and runs the remaining
/// suffix to completion (under an optional wall-clock deadline, polled the
/// same way [`run_risc_deadline`] polls). The snapshot carries the full
/// architectural statistics of its prefix, so the finished report is
/// bit-identical to a cold run of the same program and configuration —
/// while the host only executes `final − at_instruction` instructions.
///
/// Injection is deliberately unsupported on this path: the injector's PRNG
/// schedule is keyed by absolute step index from reset, which a warm start
/// cannot reproduce.
///
/// # Errors
/// [`RestoreError`] when the snapshot fails verification (corruption,
/// version skew, or a configuration mismatch).
pub fn run_risc_resumed(
    snap: &Snapshot,
    deadline: Option<Deadline>,
) -> Result<TimedOutcome, RestoreError> {
    let mut cpu = Cpu::new(snap.config().clone());
    cpu.restore(snap)?;
    let mut step: u64 = 0;
    let outcome = loop {
        if let Some(d) = deadline {
            if Deadline::should_poll(step) && d.expired() {
                return Ok(TimedOutcome::TimedOut {
                    stats: cpu.stats(),
                    events: Vec::new(),
                });
            }
        }
        let halt = cpu.step();
        step += 1;
        match halt {
            Ok(Halt::Running) => {}
            Ok(Halt::Returned) => {
                break InjectOutcome::Halted {
                    result: cpu.result(),
                }
            }
            Err(error) => break InjectOutcome::Faulted { error },
        }
    };
    Ok(TimedOutcome::Finished(InjectReport {
        outcome,
        stats: cpu.stats(),
        events: Vec::new(),
    }))
}

/// Captures a checksummed snapshot of a pristine (no-injection) run after
/// exactly `steps` machine steps — the producer side of warm starts:
/// campaigns over a common prefix snapshot it once and submit the
/// remainder as [`run_risc_resumed`] jobs.
///
/// # Errors
/// [`InjectSetupError`] when the run could not be arranged;
/// `Err(InjectSetupError::Load)` never occurs from stepping itself — a
/// program that halts or faults before `steps` simply yields the snapshot
/// at that earlier point.
pub fn snapshot_risc_prefix(
    prog: &Program,
    args: &[i32],
    cfg: SimConfig,
    recovery: bool,
    steps: u64,
) -> Result<Snapshot, InjectSetupError> {
    let mut cpu = setup_injected_cpu(prog, args, cfg, recovery)?;
    for _ in 0..steps {
        match cpu.step() {
            Ok(Halt::Running) => {}
            Ok(Halt::Returned) | Err(_) => break,
        }
    }
    Ok(cpu.snapshot())
}

/// Arranges a CPU for an injected / recorded / replayed / supervised run:
/// loads the program, sets register + ARGV-mirror arguments, and (when
/// `recovery` is set) installs the per-cause recovery stubs at
/// [`RECOVERY_STUB_BASE`]. Shared by every injection-flavoured entry point
/// so they all start from bit-identical machines.
pub(crate) fn setup_injected_cpu(
    prog: &Program,
    args: &[i32],
    cfg: SimConfig,
    recovery: bool,
) -> Result<Cpu, InjectSetupError> {
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(prog).map_err(InjectSetupError::Load)?;
    cpu.try_set_args(args).map_err(InjectSetupError::Args)?;
    if recovery {
        risc1_core::inject::install_recovery_handlers(&mut cpu, RECOVERY_STUB_BASE)
            .map_err(InjectSetupError::Load)?;
    }
    for (i, &a) in args.iter().enumerate() {
        let _ = cpu
            .mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes());
    }
    Ok(cpu)
}

/// Runs a compiled CX program with the given `main` arguments under the
/// default configuration, returning `(result, stats)`.
///
/// # Errors
/// Propagates simulator faults.
pub fn run_cx(prog: &CxProgram, args: &[i32]) -> Result<(i32, CxStats), risc1_cisc::CxError> {
    run_cx_with(prog, args, CxConfig::default())
}

/// [`run_cx`] with an explicit machine configuration.
///
/// # Errors
/// Propagates simulator faults.
pub fn run_cx_with(
    prog: &CxProgram,
    args: &[i32],
    cfg: CxConfig,
) -> Result<(i32, CxStats), risc1_cisc::CxError> {
    let mut cpu = CxCpu::new(cfg);
    cpu.load_program(prog).expect("program fits memory");
    for (i, &a) in args.iter().enumerate() {
        let _ = cpu
            .mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes());
    }
    cpu.run()?;
    Ok((cpu.result(), cpu.stats()))
}

/// Runs a compiled MC program with the given `main` arguments under the
/// default configuration, returning `(result, stats)`.
///
/// # Errors
/// Propagates simulator faults.
pub fn run_mc(prog: &McProgram, args: &[i32]) -> Result<(i32, McStats), risc1_m68::McError> {
    run_mc_with(prog, args, McConfig::default())
}

/// [`run_mc`] with an explicit machine configuration.
///
/// # Errors
/// Propagates simulator faults.
pub fn run_mc_with(
    prog: &McProgram,
    args: &[i32],
    cfg: McConfig,
) -> Result<(i32, McStats), risc1_m68::McError> {
    let mut cpu = McCpu::new(cfg);
    cpu.load_program(prog).expect("program fits memory");
    for (i, &a) in args.iter().enumerate() {
        let _ = cpu
            .mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes());
    }
    cpu.run()?;
    Ok((cpu.result(), cpu.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;
    use crate::interp::interpret;
    use crate::risc::{compile_risc, RiscOpts};
    use crate::{compile_cx, Module};
    use proptest::prelude::*;

    /// Compile and run a module on all four engines; assert agreement and
    /// return the value.
    fn tri_run(m: &Module, args: &[i32]) -> i32 {
        let oracle = interpret(m, args).expect("interpreter succeeds");
        let risc = compile_risc(m, RiscOpts::default()).expect("risc compiles");
        let (rv, _) = run_risc(&risc, args).expect("risc runs");
        let cx = compile_cx(m).expect("cx compiles");
        let (cv, _) = run_cx(&cx, args).expect("cx runs");
        let mc = crate::m68::compile_mc(m).expect("mc compiles");
        let (mv, _) = run_mc(&mc, args).expect("mc runs");
        assert_eq!(rv, oracle.value, "risc vs interpreter");
        assert_eq!(cv, oracle.value, "cx vs interpreter");
        assert_eq!(mv, oracle.value, "mc vs interpreter");
        oracle.value
    }

    #[test]
    fn arithmetic_module_agrees_everywhere() {
        let m = module(
            vec![function(
                "main",
                2,
                3,
                vec![
                    assign(2, add(mul(local(0), local(1)), konst(1))),
                    ret(sub(local(2), shr(local(0), konst(1)))),
                ],
            )],
            vec![],
        );
        assert_eq!(tri_run(&m, &[6, 7]), 6 * 7 + 1 - 3);
        assert_eq!(tri_run(&m, &[-5, 3]), -5 * 3 + 1 - (-3));
    }

    #[test]
    fn recursion_agrees_everywhere() {
        let fib = function(
            "fib",
            1,
            3,
            vec![
                if_then(lt(local(0), konst(2)), vec![ret(local(0))]),
                assign(1, call(1, vec![sub(local(0), konst(1))])),
                assign(2, call(1, vec![sub(local(0), konst(2))])),
                ret(add(local(1), local(2))),
            ],
        );
        let main = function(
            "main",
            1,
            2,
            vec![assign(1, call(1, vec![local(0)])), ret(local(1))],
        );
        let m = module(vec![main, fib], vec![]);
        assert_eq!(tri_run(&m, &[12]), 144);
    }

    #[test]
    fn arrays_agree_everywhere() {
        // Write i*i into a word array, xor-reduce; plus a byte array.
        let m = module(
            vec![function(
                "main",
                1,
                3,
                vec![
                    assign(1, konst(0)),
                    while_loop(
                        lt(local(1), local(0)),
                        vec![
                            storew(0, local(1), mul(local(1), local(1))),
                            storeb(1, local(1), add(local(1), konst(200))),
                            assign(1, add(local(1), konst(1))),
                        ],
                    ),
                    assign(1, konst(0)),
                    assign(2, konst(0)),
                    while_loop(
                        lt(local(1), local(0)),
                        vec![
                            assign(2, bxor(local(2), loadw(0, local(1)))),
                            assign(2, add(local(2), loadb(1, local(1)))),
                            assign(1, add(local(1), konst(1))),
                        ],
                    ),
                    ret(local(2)),
                ],
            )],
            vec![global_words("sq", 40), global_bytes("by", 40)],
        );
        tri_run(&m, &[17]);
    }

    #[test]
    fn division_agrees_everywhere() {
        let m = module(
            vec![function("main", 2, 2, vec![ret(div(local(0), local(1)))])],
            vec![],
        );
        for (a, b) in [
            (100, 7),
            (-100, 7),
            (100, -7),
            (-100, -7),
            (6, 3),
            (0, 5),
            (7, 100),
        ] {
            assert_eq!(tri_run(&m, &[a, b]), a / b, "{a}/{b}");
        }
    }

    #[test]
    fn delay_slot_filling_preserves_semantics_and_saves_cycles() {
        let m = module(
            vec![function(
                "main",
                1,
                3,
                vec![
                    assign(1, konst(0)),
                    assign(2, konst(0)),
                    while_loop(
                        lt(local(2), local(0)),
                        vec![
                            assign(1, add(local(1), local(2))),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    ret(local(1)),
                ],
            )],
            vec![],
        );
        let plain = compile_risc(
            &m,
            RiscOpts {
                fill_delay_slots: false,
            },
        )
        .unwrap();
        let filled = compile_risc(
            &m,
            RiscOpts {
                fill_delay_slots: true,
            },
        )
        .unwrap();
        let (v0, s0) = run_risc(&plain, &[50]).unwrap();
        let (v1, s1) = run_risc(&filled, &[50]).unwrap();
        assert_eq!(v0, 1225);
        assert_eq!(v1, 1225);
        assert!(s1.cycles < s0.cycles, "filled slots save cycles");
        assert!(s1.delay_slot_fill_rate().unwrap() > s0.delay_slot_fill_rate().unwrap());
        assert!(filled.code_bytes() < plain.code_bytes());
    }

    #[test]
    fn out_of_registers_is_reported() {
        // A function with 9 locals leaves no temp registers at all.
        let m = module(
            vec![function(
                "main",
                0,
                9,
                vec![ret(add(add(local(0), local(1)), add(local(2), local(3))))],
            )],
            vec![],
        );
        assert!(matches!(
            compile_risc(&m, RiscOpts::default()),
            Err(CodegenError::OutOfRegisters { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random arithmetic expressions evaluate identically on the
        /// interpreter, RISC I and CX — the central differential test.
        #[test]
        fn random_expressions_agree(ops in proptest::collection::vec((0u8..7, any::<i8>()), 1..25),
                                    a in -1000i32..1000, b in -1000i32..1000) {
            // Build a straight-line program over two params and an
            // accumulator, from a random op list.
            let mut body = vec![assign(2, local(0))];
            for (op, k) in &ops {
                let rhs = if k % 2 == 0 { local(1) } else { konst(i32::from(*k)) };
                let e = match op {
                    0 => add(local(2), rhs),
                    1 => sub(local(2), rhs),
                    2 => mul(local(2), rhs),
                    3 => band(local(2), rhs),
                    4 => bor(local(2), rhs),
                    5 => bxor(local(2), rhs),
                    _ => shr(local(2), band(rhs, konst(7))),
                };
                body.push(assign(2, e));
            }
            body.push(ret(local(2)));
            let m = module(vec![function("main", 2, 3, body)], vec![]);

            let oracle = interpret(&m, &[a, b]).unwrap().value;
            let risc = compile_risc(&m, RiscOpts::default()).unwrap();
            let (rv, _) = run_risc(&risc, &[a, b]).unwrap();
            prop_assert_eq!(rv, oracle, "risc mismatch");
            let cx = compile_cx(&m).unwrap();
            let (cv, _) = run_cx(&cx, &[a, b]).unwrap();
            prop_assert_eq!(cv, oracle, "cx mismatch");
        }
    }
}
