//! Reference interpreter — the semantic oracle.
//!
//! Every workload runs here first; the RISC I and CX backends are then
//! differentially tested against this result (and against each other).

use crate::ast::{BinOp, Cond, Expr, Function, Module, Stmt};
use std::fmt;

/// An interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Division by zero.
    DivideByZero,
    /// An array index fell outside its global.
    IndexOutOfBounds {
        /// Offending global.
        global: usize,
        /// Offending index.
        index: i64,
    },
    /// The step budget was exhausted (runaway program).
    OutOfFuel,
    /// Wrong number of `main` arguments.
    BadArgCount {
        /// Expected (main's parameter count).
        expected: usize,
        /// Supplied.
        got: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivideByZero => write!(f, "division by zero"),
            InterpError::IndexOutOfBounds { global, index } => {
                write!(f, "index {index} out of bounds for global {global}")
            }
            InterpError::OutOfFuel => write!(f, "interpreter fuel exhausted"),
            InterpError::BadArgCount { expected, got } => {
                write!(f, "main expects {expected} arguments, got {got}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Final observable state of an interpreted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpResult {
    /// `main`'s return value.
    pub value: i32,
    /// Final contents of each global (words sign-preserved, bytes 0–255).
    pub globals: Vec<Vec<i32>>,
    /// Dynamic user-level procedure calls (for sanity cross-checks).
    pub calls: u64,
}

struct Interp<'m> {
    module: &'m Module,
    globals: Vec<Vec<i32>>,
    fuel: u64,
    calls: u64,
}

enum Flow {
    Normal,
    Return(i32),
}

/// Runs `main(args…)` and returns the result plus final global state.
///
/// # Errors
/// See [`InterpError`]. The default fuel is 200 million statements.
pub fn interpret(module: &Module, args: &[i32]) -> Result<InterpResult, InterpError> {
    interpret_with_fuel(module, args, 200_000_000)
}

/// [`interpret`] with an explicit statement budget.
///
/// # Errors
/// See [`InterpError`].
pub fn interpret_with_fuel(
    module: &Module,
    args: &[i32],
    fuel: u64,
) -> Result<InterpResult, InterpError> {
    let main = &module.functions[0];
    if args.len() != main.params {
        return Err(InterpError::BadArgCount {
            expected: main.params,
            got: args.len(),
        });
    }
    let globals = module
        .globals
        .iter()
        .map(|g| {
            let mut v: Vec<i32> = g
                .init
                .iter()
                .map(|x| if g.bytes { *x & 0xff } else { *x })
                .collect();
            v.resize(g.len, 0);
            v
        })
        .collect();
    let mut it = Interp {
        module,
        globals,
        fuel,
        calls: 0,
    };
    let value = it.call(main, args)?;
    Ok(InterpResult {
        value,
        globals: it.globals,
        calls: it.calls,
    })
}

impl<'m> Interp<'m> {
    fn call(&mut self, func: &'m Function, args: &[i32]) -> Result<i32, InterpError> {
        let mut locals = vec![0i32; func.locals];
        locals[..args.len()].copy_from_slice(args);
        match self.block(&func.body, &mut locals)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(0), // fall off the end → 0
        }
    }

    fn block(&mut self, stmts: &'m [Stmt], locals: &mut [i32]) -> Result<Flow, InterpError> {
        for stmt in stmts {
            if self.fuel == 0 {
                return Err(InterpError::OutOfFuel);
            }
            self.fuel -= 1;
            match stmt {
                Stmt::Assign(v, e) => locals[*v] = self.eval(e, locals)?,
                Stmt::StoreW(g, i, val) => {
                    let idx = self.eval(i, locals)?;
                    let val = self.eval(val, locals)?;
                    self.store(*g, idx, val, false)?;
                }
                Stmt::StoreB(g, i, val) => {
                    let idx = self.eval(i, locals)?;
                    let val = self.eval(val, locals)?;
                    self.store(*g, idx, val & 0xff, true)?;
                }
                Stmt::If { cond, then, els } => {
                    let branch = if self.cond(cond, locals)? { then } else { els };
                    if let Flow::Return(v) = self.block(branch, locals)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Stmt::While { cond, body } => {
                    while self.cond(cond, locals)? {
                        if self.fuel == 0 {
                            return Err(InterpError::OutOfFuel);
                        }
                        self.fuel -= 1;
                        if let Flow::Return(v) = self.block(body, locals)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                }
                Stmt::Return(e) => return Ok(Flow::Return(self.eval(e, locals)?)),
                Stmt::Expr(e) => {
                    let _ = self.eval(e, locals)?;
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn cond(&mut self, c: &'m Cond, locals: &mut [i32]) -> Result<bool, InterpError> {
        let a = self.eval(&c.lhs, locals)?;
        let b = self.eval(&c.rhs, locals)?;
        Ok(c.op.eval(a, b))
    }

    fn eval(&mut self, e: &'m Expr, locals: &mut [i32]) -> Result<i32, InterpError> {
        Ok(match e {
            Expr::Const(v) => *v,
            Expr::Local(v) => locals[*v],
            Expr::LoadW(g, i) => {
                let idx = self.eval(i, locals)?;
                self.load(*g, idx)?
            }
            Expr::LoadB(g, i) => {
                let idx = self.eval(i, locals)?;
                self.load(*g, idx)? & 0xff
            }
            Expr::Bin(op, a, b) => {
                let a = self.eval(a, locals)?;
                let b = self.eval(b, locals)?;
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(InterpError::DivideByZero);
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => ((a as u32) << (b as u32 & 31)) as i32,
                    BinOp::Shr => a >> (b as u32 & 31),
                }
            }
            Expr::Call(f, args) => {
                let vals: Vec<i32> = args
                    .iter()
                    .map(|a| self.eval(a, locals))
                    .collect::<Result<_, _>>()?;
                self.calls += 1;
                let func = &self.module.functions[*f];
                self.call(func, &vals)?
            }
        })
    }

    fn load(&self, g: usize, idx: i32) -> Result<i32, InterpError> {
        self.globals[g]
            .get(
                usize::try_from(idx).map_err(|_| InterpError::IndexOutOfBounds {
                    global: g,
                    index: idx as i64,
                })?,
            )
            .copied()
            .ok_or(InterpError::IndexOutOfBounds {
                global: g,
                index: idx as i64,
            })
    }

    fn store(&mut self, g: usize, idx: i32, v: i32, _byte: bool) -> Result<(), InterpError> {
        let slot = usize::try_from(idx)
            .ok()
            .and_then(|i| self.globals[g].get_mut(i))
            .ok_or(InterpError::IndexOutOfBounds {
                global: g,
                index: idx as i64,
            })?;
        *slot = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;

    #[test]
    fn arithmetic_and_return() {
        let m = module(
            vec![function("main", 2, 2, vec![ret(mul(local(0), local(1)))])],
            vec![],
        );
        assert_eq!(interpret(&m, &[6, 7]).unwrap().value, 42);
    }

    #[test]
    fn fall_off_end_returns_zero() {
        let m = module(vec![function("main", 0, 0, vec![])], vec![]);
        assert_eq!(interpret(&m, &[]).unwrap().value, 0);
    }

    #[test]
    fn recursion_fibonacci() {
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        let fib = function(
            "fib",
            1,
            3,
            vec![
                if_then(lt(local(0), konst(2)), vec![ret(local(0))]),
                assign(1, call(1, vec![sub(local(0), konst(1))])),
                assign(2, call(1, vec![sub(local(0), konst(2))])),
                ret(add(local(1), local(2))),
            ],
        );
        let main = function(
            "main",
            1,
            2,
            vec![assign(1, call(1, vec![local(0)])), ret(local(1))],
        );
        let m = module(vec![main, fib], vec![]);
        let r = interpret(&m, &[10]).unwrap();
        assert_eq!(r.value, 55);
        assert!(r.calls > 100, "fib(10) makes many calls");
    }

    #[test]
    fn globals_load_store_word_and_byte() {
        let m = module(
            vec![function(
                "main",
                0,
                1,
                vec![
                    storew(0, konst(2), konst(-7)),
                    storeb(1, konst(0), konst(300)), // wraps to 44
                    ret(add(loadw(0, konst(2)), loadb(1, konst(0)))),
                ],
            )],
            vec![global_words("w", 4), global_bytes("b", 4)],
        );
        let r = interpret(&m, &[]).unwrap();
        assert_eq!(r.value, -7 + 44);
        assert_eq!(r.globals[0][2], -7);
        assert_eq!(r.globals[1][0], 44);
    }

    #[test]
    fn while_loop_sums() {
        // s = 0; i = n; while i > 0 { s += i; i -= 1 } return s
        let m = module(
            vec![function(
                "main",
                1,
                3,
                vec![
                    assign(1, konst(0)),
                    assign(2, local(0)),
                    while_loop(
                        gt(local(2), konst(0)),
                        vec![
                            assign(1, add(local(1), local(2))),
                            assign(2, sub(local(2), konst(1))),
                        ],
                    ),
                    ret(local(1)),
                ],
            )],
            vec![],
        );
        assert_eq!(interpret(&m, &[100]).unwrap().value, 5050);
    }

    #[test]
    fn division_errors() {
        let m = module(
            vec![function("main", 1, 1, vec![ret(div(konst(10), local(0)))])],
            vec![],
        );
        assert_eq!(interpret(&m, &[2]).unwrap().value, 5);
        assert_eq!(interpret(&m, &[0]), Err(InterpError::DivideByZero));
        // truncating division
        assert_eq!(interpret(&m, &[-3]).unwrap().value, -3);
    }

    #[test]
    fn out_of_bounds_and_fuel() {
        let m = module(
            vec![function("main", 0, 0, vec![ret(loadw(0, konst(9)))])],
            vec![global_words("w", 4)],
        );
        assert!(matches!(
            interpret(&m, &[]),
            Err(InterpError::IndexOutOfBounds { .. })
        ));

        let spin = module(
            vec![function(
                "main",
                0,
                0,
                vec![while_loop(eq(konst(0), konst(0)), vec![])],
            )],
            vec![],
        );
        assert_eq!(
            interpret_with_fuel(&spin, &[], 1000),
            Err(InterpError::OutOfFuel)
        );
    }

    #[test]
    fn shifts_match_hardware_semantics() {
        let m = module(
            vec![function("main", 2, 2, vec![ret(shr(local(0), local(1)))])],
            vec![],
        );
        assert_eq!(
            interpret(&m, &[-64, 3]).unwrap().value,
            -8,
            "arithmetic shift"
        );
        assert_eq!(
            interpret(&m, &[1, 33]).unwrap().value,
            0,
            "count mod 32: 1>>1"
        );
    }
}
