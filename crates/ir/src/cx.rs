//! The CX (VAX-class CISC) code generator.
//!
//! This backend emits the idiomatic code a 1981 CISC compiler would: memory
//! operands folded straight into ALU instructions (`addl3 4(ap), @a+20,
//! r1`), arguments pushed on the stack, `calls`/`ret` building full frames,
//! and native multiply/divide. Locals live in the stack frame:
//!
//! | storage | addressing |
//! |---------|------------|
//! | parameter *i* | `4+4i(ap)` |
//! | non-param local *j* | `−4(j+1)(fp)` |
//! | expression temporaries | `r1`–`r9` |
//! | return value | `r0` |
//!
//! The entry stub pushes `main`'s arguments from the fixed `ARGV` area
//! (written by the harness), calls `main`, and executes `halt`.

use crate::ast::{BinOp, CmpOp, Cond, Expr, Function, Module, Stmt};
use crate::layout::{Layout, ARGV_BASE};
use crate::runner::CodegenError;
use risc1_cisc::{CReg, CxAsm, CxProgram, Label, Op, Operand};

const MAX_TEMPS: u8 = 9; // r1..r9

/// Compiles a validated module to a CX program. The program starts at its
/// entry stub; `main`'s arguments are read from [`ARGV_BASE`].
///
/// # Errors
/// Validation errors, or [`CodegenError::OutOfRegisters`] if an expression
/// needs more than the 9 temporary registers.
pub fn compile_cx(module: &Module) -> Result<CxProgram, CodegenError> {
    module.validate()?;
    let layout = Layout::of(module);
    let mut gen = CxGen {
        asm: CxAsm::new(),
        layout,
        fn_labels: Vec::new(),
    };
    for _ in &module.functions {
        let l = gen.asm.new_label();
        gen.fn_labels.push(l);
    }

    // Entry stub.
    let nargs = module.functions[0].params;
    for j in (0..nargs).rev() {
        gen.asm
            .emit(Op::PushL, &[Operand::Abs(ARGV_BASE + 4 * j as u32)]);
    }
    gen.asm.calls(nargs as u8, gen.fn_labels[0]);
    gen.asm.emit0(Op::Halt);

    for (fid, func) in module.functions.iter().enumerate() {
        gen.asm.bind(gen.fn_labels[fid]);
        gen.asm.symbol(&func.name);
        gen.function(func)?;
    }

    let mut prog = gen.asm.finish().map_err(CodegenError::CxBuild)?;
    prog.data = gen.layout.data_images(module);
    Ok(prog)
}

struct CxGen {
    asm: CxAsm,
    layout: Layout,
    fn_labels: Vec<Label>,
}

impl CxGen {
    fn temp(&self, depth: u8) -> Result<CReg, CodegenError> {
        if depth >= MAX_TEMPS {
            return Err(CodegenError::OutOfRegisters {
                func: "<cx expression>".to_string(),
            });
        }
        Ok(CReg::new(1 + depth).expect("r1..r9"))
    }

    /// Frame operand for a local variable.
    fn local_operand(&self, func: &Function, v: usize) -> Operand {
        if v < func.params {
            let off = 4 + 4 * v as i32;
            if let Ok(d8) = i8::try_from(off) {
                Operand::Disp8(d8, CReg::AP)
            } else {
                Operand::Disp16(off as i16, CReg::AP)
            }
        } else {
            let off = -4 * (v as i32 - func.params as i32 + 1);
            if let Ok(d8) = i8::try_from(off) {
                Operand::Disp8(d8, CReg::FP)
            } else {
                Operand::Disp16(off as i16, CReg::FP)
            }
        }
    }

    fn const_operand(v: i32) -> Operand {
        if (0..64).contains(&v) {
            Operand::Lit(v as u8)
        } else {
            Operand::Imm(v as u32)
        }
    }

    fn function(&mut self, func: &Function) -> Result<(), CodegenError> {
        let frame_locals = func.locals - func.params;
        if frame_locals > 0 {
            self.asm.emit(
                Op::SubL2,
                &[
                    Self::const_operand(4 * frame_locals as i32),
                    Operand::Reg(CReg::SP),
                ],
            );
            // Zero-initialise frame locals (IR semantics: locals start 0).
            for j in 0..frame_locals {
                self.asm
                    .emit(Op::ClrL, &[self.local_operand(func, func.params + j)]);
            }
        }
        self.block(func, &func.body)?;
        // Implicit return 0.
        self.asm.emit(Op::ClrL, &[Operand::Reg(CReg::R0)]);
        self.asm.emit0(Op::Ret);
        Ok(())
    }

    fn block(&mut self, func: &Function, stmts: &[Stmt]) -> Result<(), CodegenError> {
        for s in stmts {
            self.stmt(func, s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, func: &Function, stmt: &Stmt) -> Result<(), CodegenError> {
        match stmt {
            Stmt::Assign(v, Expr::Call(f, args)) => {
                self.user_call(func, *f, args)?;
                self.asm.emit(
                    Op::MovL,
                    &[Operand::Reg(CReg::R0), self.local_operand(func, *v)],
                );
            }
            Stmt::Expr(Expr::Call(f, args)) => self.user_call(func, *f, args)?,
            Stmt::Assign(v, e) => {
                let o = self.eval(func, e, 0)?;
                self.asm.emit(Op::MovL, &[o, self.local_operand(func, *v)]);
            }
            Stmt::StoreW(g, idx, val) => {
                let o_v = self.eval(func, val, 0)?;
                let dst = self.element_operand(func, *g, idx, 1, false)?;
                self.asm.emit(Op::MovL, &[o_v, dst]);
            }
            Stmt::StoreB(g, idx, val) => {
                let o_v = self.eval(func, val, 0)?;
                let dst = self.element_operand(func, *g, idx, 1, true)?;
                self.asm.emit(Op::MovB, &[o_v, dst]);
            }
            Stmt::Return(e) => {
                let o = self.eval(func, e, 0)?;
                self.asm.emit(Op::MovL, &[o, Operand::Reg(CReg::R0)]);
                self.asm.emit0(Op::Ret);
            }
            Stmt::If { cond, then, els } => {
                let else_l = self.asm.new_label();
                self.branch_unless(func, cond, else_l)?;
                self.block(func, then)?;
                if els.is_empty() {
                    self.asm.bind(else_l);
                } else {
                    let end_l = self.asm.new_label();
                    self.asm.branch(Op::Brw, end_l);
                    self.asm.bind(else_l);
                    self.block(func, els)?;
                    self.asm.bind(end_l);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.asm.new_label();
                let out = self.asm.new_label();
                self.asm.bind(top);
                self.branch_unless(func, cond, out)?;
                self.block(func, body)?;
                self.asm.branch(Op::Brw, top);
                self.asm.bind(out);
            }
            Stmt::Expr(_) => {}
        }
        Ok(())
    }

    fn branch_unless(
        &mut self,
        func: &Function,
        cond: &Cond,
        target: Label,
    ) -> Result<(), CodegenError> {
        let a = self.eval(func, &cond.lhs, 0)?;
        let b = self.eval(func, &cond.rhs, 1)?;
        self.asm.emit(Op::CmpL, &[a, b]);
        let br = match cond.op.negate() {
            CmpOp::Eq => Op::Beql,
            CmpOp::Ne => Op::Bneq,
            CmpOp::Lt => Op::Blss,
            CmpOp::Le => Op::Bleq,
            CmpOp::Gt => Op::Bgtr,
            CmpOp::Ge => Op::Bgeq,
        };
        self.asm.branch(br, target);
        Ok(())
    }

    /// Evaluates an expression, returning the operand that names its value
    /// — a literal, a frame slot, a memory operand, or a temporary
    /// register. Non-trivial results land in temp `depth`.
    fn eval(&mut self, func: &Function, e: &Expr, depth: u8) -> Result<Operand, CodegenError> {
        Ok(match e {
            Expr::Const(v) => Self::const_operand(*v),
            Expr::Local(v) => self.local_operand(func, *v),
            Expr::LoadW(g, idx) => {
                if let Expr::Const(c) = idx.as_ref() {
                    // The whole element address is a constant: fold it into
                    // the parent instruction as an absolute operand — peak
                    // CISC.
                    Operand::Abs(self.layout.addr(*g).wrapping_add((*c as u32) << 2))
                } else {
                    self.element_operand(func, *g, idx, depth, false)?
                }
            }
            Expr::LoadB(g, idx) => {
                // Byte loads zero-extend through MOVZBL into a temp.
                let src = if let Expr::Const(c) = idx.as_ref() {
                    Operand::Abs(self.layout.addr(*g).wrapping_add(*c as u32))
                } else {
                    self.element_operand(func, *g, idx, depth, true)?
                };
                let t = self.temp(depth)?;
                self.asm.emit(Op::MovZBL, &[src, Operand::Reg(t)]);
                Operand::Reg(t)
            }
            Expr::Bin(op, a, b) => {
                let oa = self.eval(func, a, depth)?;
                let ob = self.eval(func, b, depth + 1)?;
                let t = self.temp(depth)?;
                let dst = Operand::Reg(t);
                match op {
                    BinOp::Add => self.asm.emit(Op::AddL3, &[oa, ob, dst]),
                    BinOp::Sub => self.asm.emit(Op::SubL3, &[ob, oa, dst]),
                    BinOp::Mul => self.asm.emit(Op::MulL3, &[oa, ob, dst]),
                    BinOp::Div => self.asm.emit(Op::DivL3, &[ob, oa, dst]),
                    BinOp::And => self.asm.emit(Op::AndL3, &[oa, ob, dst]),
                    BinOp::Or => self.asm.emit(Op::OrL3, &[oa, ob, dst]),
                    BinOp::Xor => self.asm.emit(Op::XorL3, &[oa, ob, dst]),
                    BinOp::Shl => self.asm.emit(Op::AshL, &[ob, oa, dst]),
                    BinOp::Shr => match b.as_ref() {
                        Expr::Const(c) => {
                            self.asm.emit(Op::AshL, &[Self::const_operand(-c), oa, dst]);
                        }
                        _ => {
                            // negate the count, then shift
                            let tc = self.temp(depth + 1)?;
                            self.asm
                                .emit(Op::SubL3, &[ob, Operand::Lit(0), Operand::Reg(tc)]);
                            self.asm.emit(Op::AshL, &[Operand::Reg(tc), oa, dst]);
                        }
                    },
                }
                dst
            }
            Expr::Call(..) => unreachable!("validated: calls only at statement position"),
        })
    }

    /// Materialises the address of `g[idx]` for a dynamic index and returns
    /// a deferred operand through a temp register; for constant indices
    /// returns an absolute operand.
    fn element_operand(
        &mut self,
        func: &Function,
        g: usize,
        idx: &Expr,
        depth: u8,
        byte: bool,
    ) -> Result<Operand, CodegenError> {
        let base = self.layout.addr(g);
        if let Expr::Const(c) = idx {
            let shift = if byte { 0 } else { 2 };
            return Ok(Operand::Abs(base.wrapping_add((*c as u32) << shift)));
        }
        let oi = self.eval(func, idx, depth)?;
        let t = self.temp(depth)?;
        if byte {
            self.asm
                .emit(Op::AddL3, &[oi, Operand::Imm(base), Operand::Reg(t)]);
        } else {
            self.asm
                .emit(Op::AshL, &[Operand::Lit(2), oi, Operand::Reg(t)]);
            self.asm
                .emit(Op::AddL2, &[Operand::Imm(base), Operand::Reg(t)]);
        }
        Ok(Operand::Deferred(t))
    }

    fn user_call(&mut self, func: &Function, f: usize, args: &[Expr]) -> Result<(), CodegenError> {
        // Push right-to-left so argument 0 ends on top.
        for a in args.iter().rev() {
            let o = self.eval(func, a, 0)?;
            self.asm.emit(Op::PushL, &[o]);
        }
        self.asm.calls(args.len() as u8, self.fn_labels[f]);
        Ok(())
    }
}
