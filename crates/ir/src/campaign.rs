//! Deterministic parallel campaign runner.
//!
//! Every multi-seed experiment in this repo — fault-injection sweeps,
//! checkpoint-overhead grids, the CI trichotomy test — is a map over
//! independent `(workload, seed)` jobs whose per-job work is itself
//! deterministic. That makes them embarrassingly parallel *if* the merge
//! is careful: results must come back in a canonical order, or report
//! bytes would depend on thread scheduling.
//!
//! [`parallel_map`] is that careful map. Scheduling is dynamic (workers
//! steal the next job index from a shared atomic counter, so a slow job
//! doesn't idle the other threads), but each result is tagged with its
//! input index and the output is reassembled in input order. The result is
//! therefore **byte-identical for any thread count, including 1** — a
//! property `tests` below and `e13`/`e14` assert outright. Plain
//! `std::thread::scope`, no dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A sensible worker count for campaign runs: the `RISC1_THREADS`
/// environment variable when it is a positive integer (so CI and
/// benchmark scripts can pin the worker count without touching code),
/// else the machine's available parallelism, or 1 when that cannot be
/// determined. Thread count never changes campaign *results* — the
/// canonical merge below guarantees that — only how fast they arrive.
pub fn default_threads() -> usize {
    parse_threads(std::env::var("RISC1_THREADS").ok().as_deref())
}

/// [`default_threads`] with the environment value passed in: the single
/// parser of `RISC1_THREADS` overrides, public so every consumer (the
/// campaign runner, the differential fuzz harness) shares one definition
/// of what a valid override is — and so the logic is testable without
/// mutating process state. Malformed or non-positive values fall back to
/// the machine's available parallelism; positive values are clamped to
/// it, so `RISC1_THREADS=1000000` asks for every core rather than a
/// million OS threads (thread count never changes results, so clamping
/// is always safe).
pub fn parse_threads(env: Option<&str>) -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match env.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(avail),
        _ => avail,
    }
}

/// Applies `f` to every item, on `threads` worker threads, returning the
/// results in input order regardless of scheduling.
///
/// `f` receives `(index, &item)` so jobs can be labelled without threading
/// context through the item type. Worker panics are propagated to the
/// caller with their original payload, after the remaining workers drain.
pub fn parallel_map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        got.push((i, f(i, item)));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    // Canonical merge: reassemble by input index.
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for (i, v) in buckets.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|v| v.expect("every index was claimed exactly once"))
        .collect()
}

/// The `(workload, seed)` cross product in canonical order: all seeds of
/// workload 0, then all seeds of workload 1, … The unit of work-stealing
/// for injection campaigns — one flat job list keeps long workloads from
/// serialising behind each other.
pub fn seed_jobs(workloads: usize, seeds: u64) -> Vec<(usize, u64)> {
    (0..workloads)
        .flat_map(|w| (0..seeds).map(move |s| (w, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;
    use crate::{compile_risc, run_risc_injected, RiscOpts};
    use risc1_core::inject::{InjectConfig, InjectModes};
    use risc1_core::SimConfig;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let serial = parallel_map(&items, 1, |i, &x| (i as u64) * 1000 + x * x);
        for threads in [2, 3, 8, 64] {
            let par = parallel_map(&items, threads, |i, &x| (i as u64) * 1000 + x * x);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_item_inputs() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn thread_override_parses_positive_integers_and_ignores_junk() {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Valid overrides pass through, capped at the machine's cores.
        assert_eq!(parse_threads(Some("1")), 1);
        assert_eq!(parse_threads(Some("3")), 3.min(avail));
        assert_eq!(parse_threads(Some(" 12 ")), 12.min(avail));
        let fallback = parse_threads(None);
        assert_eq!(fallback, avail);
        // Non-positive, huge and junk values all fall back safely: a bad
        // environment must never translate into a million OS threads.
        assert_eq!(parse_threads(Some("0")), fallback);
        assert_eq!(parse_threads(Some("1000000")), avail);
        assert_eq!(parse_threads(Some("18446744073709551615")), avail);
        assert_eq!(parse_threads(Some("99999999999999999999999")), fallback);
        assert_eq!(parse_threads(Some("-2")), fallback);
        assert_eq!(parse_threads(Some("lots")), fallback);
        assert_eq!(parse_threads(Some("")), fallback);
        assert_eq!(parse_threads(Some("3 threads")), fallback);
    }

    #[test]
    fn seed_jobs_enumerate_the_cross_product_canonically() {
        assert_eq!(
            seed_jobs(2, 3),
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        );
        assert!(seed_jobs(0, 5).is_empty());
    }

    /// The load-bearing property: a real injection campaign — traps,
    /// recovery stubs, seed-driven schedules — merged from any number of
    /// threads must equal the serial run byte for byte.
    #[test]
    fn injected_campaign_reports_are_identical_for_any_thread_count() {
        // Recursive fib: recursion drives window traffic, which gives the
        // injector surface to perturb.
        let fib = function(
            "fib",
            1,
            3,
            vec![
                if_then(lt(local(0), konst(2)), vec![ret(local(0))]),
                assign(1, call(1, vec![sub(local(0), konst(1))])),
                assign(2, call(1, vec![sub(local(0), konst(2))])),
                ret(add(local(1), local(2))),
            ],
        );
        let main = function(
            "main",
            1,
            2,
            vec![assign(1, call(1, vec![local(0)])), ret(local(1))],
        );
        let m = module(vec![main, fib], vec![]);
        let prog = compile_risc(&m, RiscOpts::default()).expect("compiles");
        let cfg = SimConfig {
            fuel: 200_000,
            ..SimConfig::default()
        };
        let jobs = seed_jobs(1, 12);
        let run = |_: usize, job: &(usize, u64)| {
            let icfg = InjectConfig {
                seed: job.1,
                rate: 120,
                modes: InjectModes::all(),
            };
            run_risc_injected(&prog, &[9], cfg.clone(), icfg, job.1.is_multiple_of(2))
                .expect("setup")
        };
        let serial = parallel_map(&jobs, 1, run);
        for threads in [2, 5] {
            assert_eq!(
                serial,
                parallel_map(&jobs, threads, run),
                "{threads} threads"
            );
        }
    }
}
