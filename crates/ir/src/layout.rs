//! Static data layout shared by both targets.
//!
//! Globals get identical absolute addresses on RISC I and CX, so after a
//! differential run the two machines' memories can be compared array for
//! array. The `main` argument vector also lives at a fixed address (the CX
//! entry stub reads it; on RISC I arguments travel in registers but the
//! harness still mirrors them here for uniformity).

use crate::ast::{GlobalId, Module};

/// Absolute address of the argument vector for `main` (up to 6 words).
pub const ARGV_BASE: u32 = 0x7000;

/// First address used for global arrays.
pub const GLOBALS_BASE: u32 = 0x8000;

/// Where each global array lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    addrs: Vec<u32>,
    sizes: Vec<u32>,
    /// One past the last allocated byte.
    pub end: u32,
}

impl Layout {
    /// Computes the layout for a module: arrays packed from
    /// [`GLOBALS_BASE`], each 4-byte aligned.
    pub fn of(module: &Module) -> Layout {
        let mut addrs = Vec::with_capacity(module.globals.len());
        let mut sizes = Vec::with_capacity(module.globals.len());
        let mut cursor = GLOBALS_BASE;
        for g in &module.globals {
            let bytes = if g.bytes {
                g.len as u32
            } else {
                g.len as u32 * 4
            };
            let padded = (bytes + 3) & !3;
            addrs.push(cursor);
            sizes.push(bytes);
            cursor += padded;
        }
        Layout {
            addrs,
            sizes,
            end: cursor,
        }
    }

    /// Base address of global `g`.
    pub fn addr(&self, g: GlobalId) -> u32 {
        self.addrs[g]
    }

    /// Size in bytes of global `g` (unpadded).
    pub fn size(&self, g: GlobalId) -> u32 {
        self.sizes[g]
    }

    /// The initial-data images for a module under this layout, shared by
    /// both program formats.
    pub fn data_images(&self, module: &Module) -> Vec<(u32, Vec<u8>)> {
        let mut out = Vec::new();
        for (g, def) in module.globals.iter().enumerate() {
            if def.init.is_empty() {
                continue;
            }
            let mut bytes = Vec::new();
            if def.bytes {
                bytes.extend(def.init.iter().map(|v| *v as u8));
            } else {
                for v in &def.init {
                    bytes.extend_from_slice(&(*v as u32).to_le_bytes());
                }
            }
            out.push((self.addr(g), bytes));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;

    #[test]
    fn arrays_are_packed_and_aligned() {
        let m = module(
            vec![function("main", 0, 0, vec![])],
            vec![
                global_words("a", 3), // 12 bytes
                global_bytes("b", 5), // 5 → padded 8
                global_words("c", 1), // 4
            ],
        );
        let l = Layout::of(&m);
        assert_eq!(l.addr(0), GLOBALS_BASE);
        assert_eq!(l.addr(1), GLOBALS_BASE + 12);
        assert_eq!(l.addr(2), GLOBALS_BASE + 20);
        assert_eq!(l.end, GLOBALS_BASE + 24);
        assert_eq!(l.size(1), 5);
    }

    #[test]
    fn data_images_encode_widths() {
        let m = module(
            vec![function("main", 0, 0, vec![])],
            vec![
                global_init("w", vec![1, -1]),
                global_bytes_init("b", vec![7, 300]),
            ],
        );
        let l = Layout::of(&m);
        let imgs = l.data_images(&m);
        assert_eq!(imgs.len(), 2);
        assert_eq!(imgs[0].1, vec![1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff]);
        assert_eq!(imgs[1].1, vec![7, 44], "byte inits wrap mod 256");
    }
}
