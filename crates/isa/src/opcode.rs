//! The 31 RISC I opcodes and their static metadata.
//!
//! This is the machine-readable form of the paper's Table II. Each opcode
//! carries its mnemonic, instruction format, functional category, a one-line
//! semantic description, and the base cycle cost used by the simulator's
//! timing model (1 cycle for everything except memory accesses, which need a
//! second cycle for the data transfer — exactly the paper's assumption).

use std::fmt;

/// Functional category of an instruction (the paper groups Table II the same
/// way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Register-to-register ALU operations.
    Arithmetic,
    /// Shift operations (a subset of the ALU in hardware, listed separately
    /// because the assembler treats the shift count specially).
    Shift,
    /// LOAD instructions — the only way to read memory.
    Load,
    /// STORE instructions — the only way to write memory.
    Store,
    /// Jumps, calls and returns (all delayed by one instruction slot).
    ControlTransfer,
    /// PSW access, LDHI and the other odds and ends.
    Misc,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Arithmetic => "arithmetic/logic",
            Category::Shift => "shift",
            Category::Load => "load",
            Category::Store => "store",
            Category::ControlTransfer => "control transfer",
            Category::Misc => "miscellaneous",
        };
        f.write_str(s)
    }
}

/// Binary layout of an instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// `op<7> scc<1> dest<5> rs1<5> imm<1> short2<13>` — the workhorse format.
    /// `short2` is either a register (imm = 0) or a sign-extended 13-bit
    /// immediate (imm = 1).
    Short,
    /// `op<7> scc<1> dest<5> imm19<19>` — used by `LDHI` and the PC-relative
    /// transfers `JMPR`/`CALLR`.
    Long,
}

macro_rules! opcodes {
    ($(($variant:ident, $mnem:literal, $code:expr, $cat:ident, $fmt:ident,
        $cycles:expr, $mem:expr, $desc:literal)),* $(,)?) => {
        /// One of the 31 RISC I instructions.
        ///
        /// The discriminant is the 7-bit opcode field of the encoded word.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u8)]
        pub enum Opcode {
            $(#[doc = $desc] $variant = $code,)*
        }

        impl Opcode {
            /// Every opcode, in Table II order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant),*];

            /// The assembler mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self { $(Opcode::$variant => $mnem,)* }
            }

            /// Functional category (Table II grouping).
            pub fn category(self) -> Category {
                match self { $(Opcode::$variant => Category::$cat,)* }
            }

            /// Binary instruction format.
            pub fn format(self) -> Format {
                match self { $(Opcode::$variant => Format::$fmt,)* }
            }

            /// Base cycle cost in the paper's timing model.
            pub fn base_cycles(self) -> u64 {
                match self { $(Opcode::$variant => $cycles,)* }
            }

            /// Number of *data* memory references the instruction makes
            /// (instruction fetch is not counted here).
            pub fn data_mem_refs(self) -> u64 {
                match self { $(Opcode::$variant => $mem,)* }
            }

            /// One-line semantics, as in Table II of the paper.
            pub fn description(self) -> &'static str {
                match self { $(Opcode::$variant => $desc,)* }
            }

            /// Decode a 7-bit opcode field.
            pub fn from_code(code: u8) -> Option<Opcode> {
                match code { $($code => Some(Opcode::$variant),)* _ => None }
            }

            /// Look up an opcode by its assembler mnemonic
            /// (case-insensitive).
            pub fn from_mnemonic(s: &str) -> Option<Opcode> {
                $(if s.eq_ignore_ascii_case($mnem) { return Some(Opcode::$variant); })*
                None
            }
        }
    };
}

// Opcode space: top bit of the 7-bit field selects long format (1) vs short
// format (0), which keeps the decoder a handful of gates — one of the paper's
// selling points.
opcodes! {
    // -- arithmetic / logic (short format, three register operands) --------
    (Add,    "add",    0x01, Arithmetic, Short, 1, 0, "rd := rs1 + s2"),
    (Addc,   "addc",   0x02, Arithmetic, Short, 1, 0, "rd := rs1 + s2 + carry"),
    (Sub,    "sub",    0x03, Arithmetic, Short, 1, 0, "rd := rs1 - s2"),
    (Subc,   "subc",   0x04, Arithmetic, Short, 1, 0, "rd := rs1 - s2 - borrow"),
    (Subr,   "subr",   0x05, Arithmetic, Short, 1, 0, "rd := s2 - rs1 (reverse subtract)"),
    (Subcr,  "subcr",  0x06, Arithmetic, Short, 1, 0, "rd := s2 - rs1 - borrow"),
    (And,    "and",    0x07, Arithmetic, Short, 1, 0, "rd := rs1 & s2"),
    (Or,     "or",     0x08, Arithmetic, Short, 1, 0, "rd := rs1 | s2"),
    (Xor,    "xor",    0x09, Arithmetic, Short, 1, 0, "rd := rs1 ^ s2"),
    (Sll,    "sll",    0x0a, Shift,      Short, 1, 0, "rd := rs1 << s2 (shift left logical)"),
    (Srl,    "srl",    0x0b, Shift,      Short, 1, 0, "rd := rs1 >> s2 (shift right logical)"),
    (Sra,    "sra",    0x0c, Shift,      Short, 1, 0, "rd := rs1 >> s2 (shift right arithmetic)"),
    // -- loads (rs1 + s2 index addressing; 2 cycles: address + data) -------
    (Ldl,    "ldl",    0x10, Load, Short, 2, 1, "rd := M[rs1 + s2] (load 32-bit word)"),
    (Ldsu,   "ldsu",   0x11, Load, Short, 2, 1, "rd := zero-extended 16-bit M[rs1 + s2]"),
    (Ldss,   "ldss",   0x12, Load, Short, 2, 1, "rd := sign-extended 16-bit M[rs1 + s2]"),
    (Ldbu,   "ldbu",   0x13, Load, Short, 2, 1, "rd := zero-extended 8-bit M[rs1 + s2]"),
    (Ldbs,   "ldbs",   0x14, Load, Short, 2, 1, "rd := sign-extended 8-bit M[rs1 + s2]"),
    // -- stores (rd supplies the data to write) -----------------------------
    (Stl,    "stl",    0x15, Store, Short, 2, 1, "M[rs1 + s2] := rd (store 32-bit word)"),
    (Sts,    "sts",    0x16, Store, Short, 2, 1, "M[rs1 + s2] := low 16 bits of rd"),
    (Stb,    "stb",    0x17, Store, Short, 2, 1, "M[rs1 + s2] := low 8 bits of rd"),
    // -- control transfer (all delayed by one slot) --------------------------
    (Jmp,    "jmp",    0x20, ControlTransfer, Short, 1, 0, "if cond then pc := rs1 + s2 (delayed)"),
    (Jmpr,   "jmpr",   0x60, ControlTransfer, Long,  1, 0, "if cond then pc := pc + imm19 (delayed)"),
    (Call,   "call",   0x21, ControlTransfer, Short, 1, 0, "rd := pc, next window, pc := rs1 + s2 (delayed)"),
    (Callr,  "callr",  0x61, ControlTransfer, Long,  1, 0, "rd := pc, next window, pc := pc + imm19 (delayed)"),
    (Ret,    "ret",    0x22, ControlTransfer, Short, 1, 0, "pc := rs1 + s2, previous window (delayed)"),
    (Calli,  "calli",  0x23, ControlTransfer, Short, 1, 0, "interrupt entry: disable interrupts, next window, save last pc"),
    (Reti,   "reti",   0x24, ControlTransfer, Short, 1, 0, "interrupt exit: enable interrupts, previous window, pc := rs1 + s2"),
    // -- miscellaneous -------------------------------------------------------
    (Ldhi,   "ldhi",   0x62, Misc, Long,  1, 0, "rd := imm19 << 13 (load immediate high part)"),
    (Gtlpc,  "gtlpc",  0x25, Misc, Short, 1, 0, "rd := last pc (for restarting delayed jumps after interrupts)"),
    (Getpsw, "getpsw", 0x26, Misc, Short, 1, 0, "rd := psw"),
    (Putpsw, "putpsw", 0x27, Misc, Short, 1, 0, "psw := rs1 + s2"),
}

impl Opcode {
    /// Whether the instruction is a conditional transfer whose `dest` field
    /// holds a condition code instead of a destination register.
    pub fn uses_condition(self) -> bool {
        matches!(self, Opcode::Jmp | Opcode::Jmpr)
    }

    /// Whether executing the instruction may change the current window
    /// pointer.
    pub fn moves_window(self) -> bool {
        matches!(
            self,
            Opcode::Call | Opcode::Callr | Opcode::Ret | Opcode::Calli | Opcode::Reti
        )
    }

    /// Whether the instruction is any transfer of control (and therefore has
    /// a delay slot).
    pub fn is_transfer(self) -> bool {
        self.category() == Category::ControlTransfer
    }

    /// Whether the instruction enters a procedure (advances the window and
    /// records a return address).
    pub fn is_call(self) -> bool {
        matches!(self, Opcode::Call | Opcode::Callr | Opcode::Calli)
    }

    /// Whether the instruction leaves a procedure (moves back to the
    /// previous window).
    pub fn is_ret(self) -> bool {
        matches!(self, Opcode::Ret | Opcode::Reti)
    }

    /// Whether the transfer exposes a delay slot. All transfers do except
    /// `CALLI`, which traps in place: it has no target operand and execution
    /// falls through to the next word.
    pub fn has_delay_slot(self) -> bool {
        self.is_transfer() && self != Opcode::Calli
    }

    /// Whether this is a load.
    pub fn is_load(self) -> bool {
        self.category() == Category::Load
    }

    /// Whether this is a store.
    pub fn is_store(self) -> bool {
        self.category() == Category::Store
    }

    /// Number of bits of the 13-bit short-immediate field a shift-count uses.
    /// Shifts only look at the low 5 bits of `s2`, like the hardware barrel
    /// shifter.
    pub const SHIFT_COUNT_BITS: u32 = 5;
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_31_instructions() {
        // The paper's headline number.
        assert_eq!(Opcode::ALL.len(), 31);
    }

    #[test]
    fn opcode_codes_are_unique() {
        let codes: HashSet<u8> = Opcode::ALL.iter().map(|o| *o as u8).collect();
        assert_eq!(codes.len(), Opcode::ALL.len());
    }

    #[test]
    fn mnemonics_are_unique_and_lowercase() {
        let mut seen = HashSet::new();
        for op in Opcode::ALL {
            let m = op.mnemonic();
            assert_eq!(m, m.to_ascii_lowercase());
            assert!(seen.insert(m), "duplicate mnemonic {m}");
        }
    }

    #[test]
    fn from_code_roundtrips() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_code(*op as u8), Some(*op));
        }
        assert_eq!(Opcode::from_code(0x7f), None);
        assert_eq!(Opcode::from_code(0), None);
    }

    #[test]
    fn from_mnemonic_is_case_insensitive() {
        assert_eq!(Opcode::from_mnemonic("ADD"), Some(Opcode::Add));
        assert_eq!(Opcode::from_mnemonic("LdHi"), Some(Opcode::Ldhi));
        assert_eq!(Opcode::from_mnemonic("mul"), None);
    }

    #[test]
    fn long_format_opcodes_have_top_bit_set() {
        for op in Opcode::ALL {
            let top = (*op as u8) & 0x40 != 0;
            assert_eq!(
                top,
                op.format() == Format::Long,
                "format bit mismatch for {op}"
            );
        }
    }

    #[test]
    fn memory_ops_cost_two_cycles() {
        for op in Opcode::ALL {
            let is_mem = op.is_load() || op.is_store();
            assert_eq!(op.base_cycles() == 2, is_mem, "{op}");
            assert_eq!(op.data_mem_refs() == 1, is_mem, "{op}");
        }
    }

    #[test]
    fn category_counts_match_paper() {
        let count = |c: Category| Opcode::ALL.iter().filter(|o| o.category() == c).count();
        assert_eq!(count(Category::Arithmetic) + count(Category::Shift), 12);
        assert_eq!(count(Category::Load), 5);
        assert_eq!(count(Category::Store), 3);
        assert_eq!(count(Category::ControlTransfer), 7);
        assert_eq!(count(Category::Misc), 4);
    }

    #[test]
    fn window_movers() {
        assert!(Opcode::Call.moves_window());
        assert!(Opcode::Ret.moves_window());
        assert!(!Opcode::Jmp.moves_window());
        assert!(!Opcode::Add.moves_window());
    }
}
