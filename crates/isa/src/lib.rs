//! # `risc1-isa` — the RISC I instruction set architecture
//!
//! This crate defines the complete instruction set of RISC I as published in
//! Patterson & Séquin, *RISC I: A Reduced Instruction Set VLSI Computer*
//! (ISCA 1981): 31 instructions, all 32 bits wide, in two formats
//! (short-immediate and long-immediate), together with the register model,
//! the processor status word (PSW), the condition-code algebra used by the
//! conditional jumps, and binary encode/decode.
//!
//! The crate is pure data + arithmetic: it has no simulator state and no I/O,
//! so every other crate in the workspace (simulator, assembler, compiler,
//! experiments) can depend on it freely.
//!
//! ## Quick tour
//!
//! ```
//! use risc1_isa::{Instruction, Opcode, Reg, Short2};
//!
//! // r16 = r26 + 40   (an "add immediate", setting no condition codes)
//! let insn = Instruction::reg(Opcode::Add, Reg::R16, Reg::R26, Short2::imm(40).unwrap());
//! let word = insn.encode();
//! assert_eq!(Instruction::decode(word).unwrap(), insn);
//! ```

pub mod cond;
pub mod encoding;
pub mod insn;
pub mod opcode;
pub mod psw;
pub mod reg;
pub mod spec;
pub mod summary;

pub use cond::Cond;
pub use encoding::DecodeError;
pub use insn::{Instruction, Operands, Short2};
pub use opcode::{Category, Format, Opcode};
pub use psw::Psw;
pub use reg::{Reg, RegClass, NUM_VISIBLE_REGS};

/// Width of one RISC I instruction in bytes. Every instruction is exactly one
/// 32-bit word; this constant is what the program counter is advanced by.
pub const INSN_BYTES: u32 = 4;

/// Number of registers a procedure can see at any instant (the window).
pub const WINDOW_VISIBLE: usize = NUM_VISIBLE_REGS;
