//! ISA-level summary metadata used by the complexity-comparison experiment
//! (the paper's Table I) and the instruction-set listing (Table II).
//!
//! Everything about *RISC I itself* is computed live from the opcode tables
//! so it can never drift from the implementation; the contemporary CISC
//! machines are reproduced as published constants, clearly marked as such.

use crate::opcode::{Category, Format, Opcode};

/// A row of the paper's Table I: gross design characteristics of a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineProfile {
    /// Machine name.
    pub name: &'static str,
    /// Year of introduction.
    pub year: u16,
    /// Number of machine instructions.
    pub instructions: usize,
    /// Control-store (microcode) size in bits; 0 for hardwired control.
    pub microcode_bits: u64,
    /// Smallest and largest instruction size, in bits.
    pub insn_size_bits: (u16, u16),
    /// Execution model, as the paper phrased it.
    pub execution_model: &'static str,
}

/// The published Table I rows for the contemporary machines the paper
/// compared against. These numbers are quoted from the paper, not measured.
pub fn published_cisc_profiles() -> Vec<MachineProfile> {
    vec![
        MachineProfile {
            name: "IBM 370/168",
            year: 1973,
            instructions: 208,
            microcode_bits: 420 * 1024 * 8,
            insn_size_bits: (16, 48),
            execution_model: "reg-reg, reg-mem, mem-mem",
        },
        MachineProfile {
            name: "VAX-11/780",
            year: 1978,
            instructions: 303,
            microcode_bits: 480 * 1024 * 8,
            insn_size_bits: (16, 456),
            execution_model: "reg-reg, reg-mem, mem-mem",
        },
        MachineProfile {
            name: "Xerox Dorado",
            year: 1978,
            instructions: 270,
            microcode_bits: 136 * 1024 * 8,
            insn_size_bits: (8, 24),
            execution_model: "stack",
        },
        MachineProfile {
            name: "Intel iAPX-432",
            year: 1982,
            instructions: 222,
            microcode_bits: 64 * 1024 * 8,
            insn_size_bits: (6, 321),
            execution_model: "stack, mem-mem",
        },
    ]
}

/// The RISC I row of Table I, computed from this crate's actual tables
/// (instruction count, fixed 32-bit size, no microcode, reg-reg model).
pub fn risc1_profile() -> MachineProfile {
    MachineProfile {
        name: "RISC I",
        year: 1981,
        instructions: Opcode::ALL.len(),
        microcode_bits: 0,
        insn_size_bits: (32, 32),
        execution_model: "reg-reg (load/store)",
    }
}

/// A row of the instruction-set listing (the paper's Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionRow {
    /// Assembler mnemonic.
    pub mnemonic: &'static str,
    /// Table II grouping.
    pub category: Category,
    /// Binary format.
    pub format: Format,
    /// One-line semantics.
    pub description: &'static str,
    /// Base cycle cost.
    pub cycles: u64,
}

/// The full instruction-set listing in Table II order.
pub fn instruction_table() -> Vec<InstructionRow> {
    Opcode::ALL
        .iter()
        .map(|op| InstructionRow {
            mnemonic: op.mnemonic(),
            category: op.category(),
            format: op.format(),
            description: op.description(),
            cycles: op.base_cycles(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risc1_row_reflects_implementation() {
        let p = risc1_profile();
        assert_eq!(p.instructions, 31);
        assert_eq!(p.microcode_bits, 0);
        assert_eq!(p.insn_size_bits, (32, 32));
    }

    #[test]
    fn table_ii_has_all_instructions() {
        let t = instruction_table();
        assert_eq!(t.len(), Opcode::ALL.len());
        assert!(t.iter().any(|r| r.mnemonic == "ldhi"));
    }

    #[test]
    fn cisc_profiles_are_all_microcoded() {
        for p in published_cisc_profiles() {
            assert!(p.microcode_bits > 0, "{}", p.name);
            assert!(p.instructions > 200, "{}", p.name);
        }
    }
}
