//! Condition codes for the conditional jumps `JMP`/`JMPR`.
//!
//! RISC I has no separate compare instruction: any ALU operation may set the
//! four condition flags (Z, N, V, C) by asserting its `scc` bit, and a
//! following conditional jump tests a boolean combination of them. The 4-bit
//! condition is carried in the `dest` field of the jump. The idiom for a
//! compare-and-branch is therefore:
//!
//! ```text
//! sub r0, r1, r2 {scc}   ; compute r1 - r2 just for the flags (rd = r0)
//! jmp lt, target         ; branch if r1 < r2 (signed)
//! ```
//!
//! The carry convention follows the adder: for `a - b`, C = 1 iff no borrow
//! occurred (i.e. `a >= b` unsigned) — the same convention the Berkeley
//! design used (and SPARC inherited).

use crate::psw::Flags;
use std::fmt;

/// One of the sixteen jump conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Cond {
    /// Never taken (a architecturally visible no-op jump).
    Nvr = 0,
    /// Always taken (the unconditional jump).
    Alw = 1,
    /// Equal: Z.
    Eq = 2,
    /// Not equal: !Z.
    Ne = 3,
    /// Signed less than: N ^ V.
    Lt = 4,
    /// Signed greater or equal: !(N ^ V).
    Ge = 5,
    /// Signed less or equal: Z | (N ^ V).
    Le = 6,
    /// Signed greater than: !Z & !(N ^ V).
    Gt = 7,
    /// Unsigned lower: !C.
    Lo = 8,
    /// Unsigned higher or same: C.
    His = 9,
    /// Unsigned lower or same: !C | Z.
    Los = 10,
    /// Unsigned higher: C & !Z.
    Hi = 11,
    /// Plus (non-negative): !N.
    Pl = 12,
    /// Minus (negative): N.
    Mi = 13,
    /// Overflow clear: !V.
    Nv = 14,
    /// Overflow set: V.
    V = 15,
}

impl Cond {
    /// Every condition in encoding order.
    pub const ALL: &'static [Cond] = &[
        Cond::Nvr,
        Cond::Alw,
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Ge,
        Cond::Le,
        Cond::Gt,
        Cond::Lo,
        Cond::His,
        Cond::Los,
        Cond::Hi,
        Cond::Pl,
        Cond::Mi,
        Cond::Nv,
        Cond::V,
    ];

    /// Evaluates the condition against a set of flags.
    pub fn eval(self, f: Flags) -> bool {
        let signed_lt = f.n ^ f.v;
        match self {
            Cond::Nvr => false,
            Cond::Alw => true,
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Lt => signed_lt,
            Cond::Ge => !signed_lt,
            Cond::Le => f.z || signed_lt,
            Cond::Gt => !f.z && !signed_lt,
            Cond::Lo => !f.c,
            Cond::His => f.c,
            Cond::Los => !f.c || f.z,
            Cond::Hi => f.c && !f.z,
            Cond::Pl => !f.n,
            Cond::Mi => f.n,
            Cond::Nv => !f.v,
            Cond::V => f.v,
        }
    }

    /// The condition's logical negation (`eval` of the result is always the
    /// complement). Useful for branch inversion in the peephole optimizer.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Nvr => Cond::Alw,
            Cond::Alw => Cond::Nvr,
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Lo => Cond::His,
            Cond::His => Cond::Lo,
            Cond::Los => Cond::Hi,
            Cond::Hi => Cond::Los,
            Cond::Pl => Cond::Mi,
            Cond::Mi => Cond::Pl,
            Cond::Nv => Cond::V,
            Cond::V => Cond::Nv,
        }
    }

    /// Decodes the 4-bit condition field.
    pub fn from_field(n: u8) -> Option<Cond> {
        Cond::ALL.get(n as usize).copied()
    }

    /// The assembler name of the condition.
    pub fn name(self) -> &'static str {
        match self {
            Cond::Nvr => "nvr",
            Cond::Alw => "alw",
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Lo => "lo",
            Cond::His => "his",
            Cond::Los => "los",
            Cond::Hi => "hi",
            Cond::Pl => "pl",
            Cond::Mi => "mi",
            Cond::Nv => "nv",
            Cond::V => "v",
        }
    }

    /// Looks a condition up by its assembler name (case-insensitive).
    pub fn from_name(s: &str) -> Option<Cond> {
        Cond::ALL
            .iter()
            .copied()
            .find(|c| c.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_flags() -> impl Iterator<Item = Flags> {
        (0..16u8).map(|bits| Flags {
            z: bits & 1 != 0,
            n: bits & 2 != 0,
            v: bits & 4 != 0,
            c: bits & 8 != 0,
        })
    }

    #[test]
    fn negation_is_complement_everywhere() {
        for c in Cond::ALL {
            for f in all_flags() {
                assert_eq!(c.eval(f), !c.negate().eval(f), "{c} on {f:?}");
            }
        }
    }

    #[test]
    fn negation_is_involutive() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), *c);
        }
    }

    #[test]
    fn field_roundtrip() {
        for (i, c) in Cond::ALL.iter().enumerate() {
            assert_eq!(Cond::from_field(i as u8), Some(*c));
            assert_eq!(*c as u8, i as u8);
        }
        assert_eq!(Cond::from_field(16), None);
    }

    #[test]
    fn name_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_name(c.name()), Some(*c));
            assert_eq!(Cond::from_name(&c.name().to_uppercase()), Some(*c));
        }
        assert_eq!(Cond::from_name("zz"), None);
    }

    /// Semantics check: drive the conditions with flags computed from real
    /// subtractions and compare against Rust's comparison operators.
    #[test]
    fn conditions_agree_with_integer_comparisons() {
        let samples: &[i32] = &[0, 1, -1, 5, -5, i32::MAX, i32::MIN, 100, -100, 7];
        for &a in samples {
            for &b in samples {
                let (diff, borrow) = (a as u32).overflowing_sub(b as u32);
                let v = (a ^ b) & (a ^ diff as i32) < 0;
                let f = Flags {
                    z: diff == 0,
                    n: (diff as i32) < 0,
                    v,
                    c: !borrow, // C = no borrow
                };
                assert_eq!(Cond::Eq.eval(f), a == b, "{a} {b}");
                assert_eq!(Cond::Ne.eval(f), a != b, "{a} {b}");
                assert_eq!(Cond::Lt.eval(f), a < b, "{a} {b}");
                assert_eq!(Cond::Ge.eval(f), a >= b, "{a} {b}");
                assert_eq!(Cond::Le.eval(f), a <= b, "{a} {b}");
                assert_eq!(Cond::Gt.eval(f), a > b, "{a} {b}");
                let (ua, ub) = (a as u32, b as u32);
                assert_eq!(Cond::Lo.eval(f), ua < ub, "{a} {b}");
                assert_eq!(Cond::His.eval(f), ua >= ub, "{a} {b}");
                assert_eq!(Cond::Los.eval(f), ua <= ub, "{a} {b}");
                assert_eq!(Cond::Hi.eval(f), ua > ub, "{a} {b}");
            }
        }
    }
}
