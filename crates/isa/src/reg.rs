//! The register model visible to one procedure.
//!
//! RISC I exposes 32 registers at any instant. The paper partitions them as:
//!
//! | Registers | Class  | Role |
//! |-----------|--------|------|
//! | r0        | Global | hardwired zero |
//! | r1–r9     | Global | shared by all procedures |
//! | r10–r15   | Low    | outgoing parameters (become the callee's HIGH) |
//! | r16–r25   | Local  | private scratch of the current procedure |
//! | r26–r31   | High   | incoming parameters (were the caller's LOW) |
//!
//! The LOW/HIGH overlap is what makes parameter passing free: a `CALL` only
//! moves the current-window pointer and the caller's r10–r15 appear to the
//! callee as r26–r31 without a single data move.

use std::fmt;

/// Number of registers visible to a procedure (one register window plus the
/// globals).
pub const NUM_VISIBLE_REGS: usize = 32;

/// Index of the first LOW (outgoing-parameter) register.
pub const LOW_BASE: u8 = 10;
/// Index of the first LOCAL register.
pub const LOCAL_BASE: u8 = 16;
/// Index of the first HIGH (incoming-parameter) register.
pub const HIGH_BASE: u8 = 26;
/// Number of overlapping parameter registers (|LOW| = |HIGH| = 6).
pub const OVERLAP: usize = 6;
/// Number of LOCAL registers in a window.
pub const LOCALS: usize = 10;
/// Number of global registers (r0..r9).
pub const GLOBALS: usize = 10;

/// One of the 32 architecturally visible registers, `r0`–`r31`.
///
/// `Reg` is a validated newtype over the 5-bit register field of an
/// instruction; constructing one via [`Reg::new`] can fail, and the `R0`…`R31`
/// associated constants are provided for literal use.
///
/// ```
/// use risc1_isa::{Reg, RegClass};
/// assert_eq!(Reg::new(26).unwrap(), Reg::R26);
/// assert_eq!(Reg::R26.class(), RegClass::High);
/// assert!(Reg::R0.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// The architectural role of a register within the window scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// r0–r9: shared across all windows. r0 additionally reads as zero.
    Global,
    /// r10–r15: outgoing parameters — aliased to the callee's HIGH registers.
    Low,
    /// r16–r25: private to the current window.
    Local,
    /// r26–r31: incoming parameters — aliased to the caller's LOW registers.
    High,
}

impl Reg {
    /// Creates a register from its number. Returns `None` if `n >= 32`.
    pub fn new(n: u8) -> Option<Self> {
        (n < NUM_VISIBLE_REGS as u8).then_some(Reg(n))
    }

    /// Creates a register from a 5-bit instruction field without validation.
    ///
    /// # Panics
    /// Panics in debug builds if `n >= 32`.
    pub(crate) fn from_field(n: u32) -> Self {
        debug_assert!(n < 32);
        Reg((n & 0x1f) as u8)
    }

    /// The register number, 0–31.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is `r0`, the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The window class this register belongs to.
    pub fn class(self) -> RegClass {
        match self.0 {
            0..=9 => RegClass::Global,
            10..=15 => RegClass::Low,
            16..=25 => RegClass::Local,
            _ => RegClass::High,
        }
    }

    /// Whether the register lives in the windowed part of the file
    /// (LOW/LOCAL/HIGH) as opposed to the globals.
    pub fn is_windowed(self) -> bool {
        self.0 >= LOW_BASE
    }

    /// Iterator over all 32 visible registers in ascending order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_VISIBLE_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg(r{})", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

macro_rules! reg_consts {
    ($($name:ident = $n:expr),* $(,)?) => {
        impl Reg {
            $(#[doc = concat!("Register r", stringify!($n), ".")]
              pub const $name: Reg = Reg($n);)*
        }
    };
}

reg_consts! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
    R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21,
    R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28,
    R29 = 29, R30 = 30, R31 = 31,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        assert!(Reg::new(32).is_none());
        assert!(Reg::new(255).is_none());
        assert_eq!(Reg::new(31), Some(Reg::R31));
    }

    #[test]
    fn classes_match_paper_partition() {
        assert_eq!(Reg::R0.class(), RegClass::Global);
        assert_eq!(Reg::R9.class(), RegClass::Global);
        assert_eq!(Reg::R10.class(), RegClass::Low);
        assert_eq!(Reg::R15.class(), RegClass::Low);
        assert_eq!(Reg::R16.class(), RegClass::Local);
        assert_eq!(Reg::R25.class(), RegClass::Local);
        assert_eq!(Reg::R26.class(), RegClass::High);
        assert_eq!(Reg::R31.class(), RegClass::High);
    }

    #[test]
    fn only_r0_is_zero() {
        assert!(Reg::R0.is_zero());
        assert!(Reg::all().filter(|r| r.is_zero()).count() == 1);
    }

    #[test]
    fn windowed_split() {
        let windowed = Reg::all().filter(|r| r.is_windowed()).count();
        assert_eq!(windowed, NUM_VISIBLE_REGS - GLOBALS);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R17.to_string(), "r17");
        assert_eq!(format!("{:?}", Reg::R3), "Reg(r3)");
    }

    #[test]
    fn class_sizes_sum_to_window() {
        use RegClass::*;
        let count = |c| Reg::all().filter(|r| r.class() == c).count();
        assert_eq!(count(Global), GLOBALS);
        assert_eq!(count(Low), OVERLAP);
        assert_eq!(count(Local), LOCALS);
        assert_eq!(count(High), OVERLAP);
    }
}
