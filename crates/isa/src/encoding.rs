//! Binary encode/decode of the 32-bit instruction word.
//!
//! Word layout (bit 31 = most significant):
//!
//! ```text
//! short:  |op 31..25|scc 24|dest 23..19|rs1 18..14|imm 13|short2 12..0|
//! long:   |op 31..25|scc 24|dest 23..19|        imm19 18..0           |
//! ```
//!
//! `short2` holds either a sign-extended 13-bit immediate (imm = 1) or a
//! register number in bits 4..0 with bits 12..5 required to be zero
//! (imm = 0). The required-zero padding means decode is *strict*: every
//! 32-bit word either decodes to exactly one instruction or is rejected,
//! which the property tests rely on.

use crate::cond::Cond;
use crate::insn::{Instruction, Operands, Short2, IMM19_MAX, IMM19_MIN};
use crate::opcode::{Format, Opcode};
use crate::reg::Reg;
use std::fmt;

/// Why a 32-bit word failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The 7-bit opcode field matches no instruction.
    UnknownOpcode(u8),
    /// A register-operand encoding had non-zero bits in the must-be-zero
    /// padding field.
    NonZeroPadding(u32),
    /// The scc bit was set on an instruction that cannot set condition
    /// codes (transfers, loads/stores and the misc group).
    SccNotAllowed(Opcode),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(c) => write!(f, "unknown opcode field {c:#04x}"),
            DecodeError::NonZeroPadding(w) => {
                write!(f, "non-zero padding in register operand of word {w:#010x}")
            }
            DecodeError::SccNotAllowed(op) => {
                write!(f, "scc bit set on `{op}`, which cannot set condition codes")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Whether an opcode is allowed to assert the `scc` bit. Only the ALU and
/// shift group drives the condition-code logic. This is the spec table's
/// `scc_allowed` column.
pub fn scc_allowed(op: Opcode) -> bool {
    crate::spec::entry(op).scc_allowed
}

impl Instruction {
    /// Encodes the instruction into its 32-bit machine word.
    pub fn encode(&self) -> u32 {
        let op = (self.opcode as u32) << 25;
        let scc = (self.scc as u32) << 24;
        let word = |dest: u32, rest: u32| op | scc | (dest & 0x1f) << 19 | rest;
        match self.operands {
            Operands::Short { dest, rs1, s2 } => word(dest.number() as u32, short_fields(rs1, s2)),
            Operands::ShortCond { cond, rs1, s2 } => word(cond as u32, short_fields(rs1, s2)),
            Operands::Long { dest, imm19 } => word(dest.number() as u32, (imm19 as u32) & 0x7ffff),
            Operands::LongCond { cond, imm19 } => word(cond as u32, (imm19 as u32) & 0x7ffff),
        }
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    /// Returns a [`DecodeError`] if the opcode field is unassigned, the
    /// must-be-zero padding of a register operand is non-zero, or the `scc`
    /// bit is set on an instruction outside the ALU group.
    pub fn decode(w: u32) -> Result<Instruction, DecodeError> {
        let code = (w >> 25) as u8 & 0x7f;
        let opcode = Opcode::from_code(code).ok_or(DecodeError::UnknownOpcode(code))?;
        let scc = w >> 24 & 1 != 0;
        if scc && !scc_allowed(opcode) {
            return Err(DecodeError::SccNotAllowed(opcode));
        }
        let dest_field = (w >> 19 & 0x1f) as u8;
        let operands = match opcode.format() {
            Format::Short => {
                let rs1 = Reg::from_field(w >> 14 & 0x1f);
                let s2 = if w >> 13 & 1 != 0 {
                    // Sign-extend the 13-bit immediate.
                    let raw = (w & 0x1fff) as i32;
                    let v = (raw << 19) >> 19;
                    Short2::Imm(v as i16)
                } else {
                    if w & 0x1fe0 != 0 {
                        return Err(DecodeError::NonZeroPadding(w));
                    }
                    Short2::Reg(Reg::from_field(w & 0x1f))
                };
                if opcode.uses_condition() {
                    // Bit 4 of the dest field is unused by conditions and
                    // must be zero for a canonical encoding.
                    match Cond::from_field(dest_field) {
                        Some(cond) => Operands::ShortCond { cond, rs1, s2 },
                        None => return Err(DecodeError::NonZeroPadding(w)),
                    }
                } else {
                    Operands::Short {
                        dest: Reg::from_field(dest_field as u32),
                        rs1,
                        s2,
                    }
                }
            }
            Format::Long => {
                let raw = (w & 0x7ffff) as i32;
                if opcode.uses_condition() {
                    let imm19 = (raw << 13) >> 13; // sign extend
                    match Cond::from_field(dest_field) {
                        Some(cond) => Operands::LongCond { cond, imm19 },
                        None => return Err(DecodeError::NonZeroPadding(w)),
                    }
                } else {
                    // CALLR is PC-relative (signed); LDHI is a raw payload
                    // (kept unsigned-as-written).
                    let imm19 = if opcode == Opcode::Callr {
                        (raw << 13) >> 13
                    } else {
                        raw
                    };
                    Operands::Long {
                        dest: Reg::from_field(dest_field as u32),
                        imm19,
                    }
                }
            }
        };
        Ok(Instruction {
            opcode,
            scc,
            operands,
        })
    }
}

fn short_fields(rs1: Reg, s2: Short2) -> u32 {
    let rs1 = (rs1.number() as u32) << 14;
    match s2 {
        Short2::Reg(r) => rs1 | r.number() as u32,
        Short2::Imm(v) => rs1 | 1 << 13 | ((v as u32) & 0x1fff),
    }
}

/// Validates that a long immediate fits the PC-relative field.
pub fn fits_imm19(offset: i32) -> bool {
    (IMM19_MIN..=IMM19_MAX).contains(&offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(|n| Reg::new(n).unwrap())
    }

    fn arb_short2() -> impl Strategy<Value = Short2> {
        prop_oneof![
            arb_reg().prop_map(Short2::Reg),
            (-4096i32..=4095).prop_map(|v| Short2::imm(v).unwrap()),
        ]
    }

    fn arb_cond() -> impl Strategy<Value = Cond> {
        (0u8..16).prop_map(|n| Cond::from_field(n).unwrap())
    }

    fn arb_instruction() -> impl Strategy<Value = Instruction> {
        let short_ops: Vec<Opcode> = Opcode::ALL
            .iter()
            .copied()
            .filter(|o| o.format() == Format::Short && !o.uses_condition())
            .collect();
        let alu_ops: Vec<Opcode> = Opcode::ALL
            .iter()
            .copied()
            .filter(|o| scc_allowed(*o))
            .collect();
        prop_oneof![
            // plain short format
            (
                proptest::sample::select(short_ops),
                arb_reg(),
                arb_reg(),
                arb_short2()
            )
                .prop_map(|(op, d, r1, s2)| Instruction::reg(op, d, r1, s2)),
            // scc-setting ALU op
            (
                proptest::sample::select(alu_ops),
                arb_reg(),
                arb_reg(),
                arb_short2()
            )
                .prop_map(|(op, d, r1, s2)| Instruction::reg_scc(op, d, r1, s2)),
            // jmp
            (arb_cond(), arb_reg(), arb_short2())
                .prop_map(|(c, r1, s2)| Instruction::jmp(c, r1, s2)),
            // jmpr
            (arb_cond(), IMM19_MIN..=IMM19_MAX).prop_map(|(c, off)| Instruction::jmpr(c, off)),
            // callr
            (arb_reg(), IMM19_MIN..=IMM19_MAX).prop_map(|(d, off)| Instruction::callr(d, off)),
            // ldhi
            (arb_reg(), 0u32..(1 << 19)).prop_map(|(d, v)| Instruction::ldhi(d, v)),
        ]
    }

    proptest! {
        /// encode ∘ decode = identity over every constructible instruction.
        #[test]
        fn encode_decode_roundtrip(insn in arb_instruction()) {
            let word = insn.encode();
            prop_assert_eq!(Instruction::decode(word), Ok(insn));
        }

        /// decode ∘ encode = identity over every word that decodes at all
        /// (i.e. the encoding is canonical: no two words decode to the same
        /// instruction).
        #[test]
        fn decode_encode_roundtrip(word in any::<u32>()) {
            if let Ok(insn) = Instruction::decode(word) {
                prop_assert_eq!(insn.encode(), word);
            }
        }
    }

    #[test]
    fn known_encoding_golden() {
        // add r1, r2, #5 => op=0x01 scc=0 dest=1 rs1=2 imm=1 s2=5
        let i = Instruction::reg(Opcode::Add, Reg::R1, Reg::R2, Short2::imm(5).unwrap());
        let expected = (0x01 << 25) | (1 << 19) | (2 << 14) | (1 << 13) | 5;
        assert_eq!(i.encode(), expected);
    }

    #[test]
    fn negative_immediate_sign_extends() {
        let i = Instruction::reg(Opcode::Add, Reg::R1, Reg::R2, Short2::imm(-1).unwrap());
        let d = Instruction::decode(i.encode()).unwrap();
        match d.operands {
            Operands::Short {
                s2: Short2::Imm(v), ..
            } => assert_eq!(v, -1),
            other => panic!("unexpected operands {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_opcode() {
        assert_eq!(
            Instruction::decode(0xfe00_0000),
            Err(DecodeError::UnknownOpcode(0x7f))
        );
    }

    #[test]
    fn rejects_dirty_padding() {
        // add with register operand but junk in bits 12..5
        let base = Instruction::reg(Opcode::Add, Reg::R1, Reg::R2, Short2::reg(Reg::R3)).encode();
        let dirty = base | 0x0100;
        assert_eq!(
            Instruction::decode(dirty),
            Err(DecodeError::NonZeroPadding(dirty))
        );
    }

    #[test]
    fn rejects_scc_on_load() {
        let base = Instruction::reg(Opcode::Ldl, Reg::R1, Reg::R2, Short2::ZERO).encode();
        let dirty = base | 1 << 24;
        assert_eq!(
            Instruction::decode(dirty),
            Err(DecodeError::SccNotAllowed(Opcode::Ldl))
        );
    }

    #[test]
    fn jmpr_negative_offset_roundtrip() {
        let i = Instruction::jmpr(Cond::Alw, IMM19_MIN);
        assert_eq!(Instruction::decode(i.encode()), Ok(i));
        let i = Instruction::jmpr(Cond::Alw, -4);
        assert_eq!(Instruction::decode(i.encode()), Ok(i));
    }

    #[test]
    fn ldhi_payload_is_unsigned() {
        let i = Instruction::ldhi(Reg::R1, 0x7ffff);
        let d = Instruction::decode(i.encode()).unwrap();
        match d.operands {
            Operands::Long { imm19, .. } => assert_eq!(imm19, 0x7ffff),
            other => panic!("unexpected operands {other:?}"),
        }
    }
}
