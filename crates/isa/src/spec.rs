//! The executable ISA specification — single source of truth for RISC I.
//!
//! Every fact the rest of the workspace needs about an instruction lives in
//! one table-driven record per opcode ([`SpecEntry`]): the operand shape the
//! encoding accepts, the def/use sets (registers, condition codes, PSW,
//! window pointer and memory), the base cycle cost of the paper's timing
//! model, delay-slot legality, and an `effect` function giving the
//! operational semantics against a minimal [`SpecState`].
//!
//! Consumers of the table:
//!
//! * [`Instruction`](crate::Instruction)'s `reads`/`writes`/`sets_cc`/
//!   `reads_cc`/`safe_in_delay_slot_of` delegate here instead of hand-listing
//!   opcodes;
//! * [`crate::encoding::scc_allowed`] and the decoder's legality checks;
//! * the simulator's predecoded icache (base cycle cost of a prepared line)
//!   and the superblock builder's fusion gates (`is_alu`/`reads_carry`);
//! * the lint crate's dataflow facts and the `dead-scc-set` /
//!   `spec-illegal-encoding` rules (via [`validate`]);
//! * `risc1 lint --spec-audit`, which cross-checks assembler, disassembler
//!   and engine cost tables against this module for all 128 opcode points;
//! * the reference interpreter ([`SpecState::step`]) — a fourth, deliberately
//!   slow engine the differential fuzzer compares the production engines to.
//!
//! The interpreter shares **no code** with `risc1-core`: the windowed
//! register file, the ALU flag algebra and the little-endian memory are
//! re-derived from the paper, so agreement between the two is evidence, not
//! tautology.

use crate::cond::Cond;
use crate::insn::{Instruction, Operands, Short2, IMM13_MAX, IMM13_MIN, IMM19_MAX, IMM19_MIN};
use crate::opcode::Opcode;
use crate::psw::{Flags, Psw};
use crate::reg::{Reg, NUM_VISIBLE_REGS};
use crate::DecodeError;
use std::fmt;
use std::sync::OnceLock;

/// Cycles of the execute stage common to every instruction (the paper's
/// single-cycle datapath).
pub const EXECUTE_CYCLES: u64 = 1;
/// Extra cycles a *data* memory transfer costs on top of the execute cycle —
/// loads and stores take a second cycle for the data movement, exactly the
/// paper's timing assumption. Shared with the CX cost model.
pub const MEM_TRANSFER_CYCLES: u64 = 1;
/// Pipeline bubble charged for a taken transfer when no delay slot hides the
/// refetch (the simulator's "suspended" branch model; also the CX baseline's
/// taken-branch penalty, since CX has no delay slots).
pub const TAKEN_TRANSFER_BUBBLE: u64 = 1;
/// Number of opcode points addressable by the 7-bit opcode field.
pub const OPCODE_POINTS: usize = 128;

/// Operand shape of an instruction, i.e. which [`Operands`] variant a decoded
/// word carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandShape {
    /// `dest, rs1, s2`.
    Short,
    /// `cond, rs1, s2` (the indexed conditional jump).
    ShortCond,
    /// `dest, #imm19`.
    Long,
    /// `cond, #imm19` (the PC-relative conditional jump).
    LongCond,
}

/// What the `dest` field of a short/long-format word means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DestRole {
    /// An ordinary result register (r0 writes are discarded).
    Result,
    /// The data register of a store — a *read*, not a write.
    StoreData,
    /// The link register of a call (written in the *new* window).
    Link,
    /// Architecturally ignored; the canonical encoding requires r0
    /// (RET/RETI/PUTPSW).
    Ignored,
}

/// Data-memory effect of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEffect {
    /// No data memory reference.
    None,
    /// Reads `bytes` bytes at `rs1 + s2`, optionally sign-extending.
    Read {
        /// Access width in bytes (1, 2 or 4).
        bytes: u8,
        /// Whether the loaded value is sign-extended to 32 bits.
        sign_extend: bool,
    },
    /// Writes the low `bytes` bytes of the data register at `rs1 + s2`.
    Write {
        /// Access width in bytes (1, 2 or 4).
        bytes: u8,
    },
}

/// How an instruction *uses* the condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagsRead {
    /// Flags are not an input.
    Never,
    /// The carry flag feeds the ALU (ADDC/SUBC/SUBCR).
    Carry,
    /// Flags are read iff the jump condition actually tests them
    /// (`alw`/`nvr` do not).
    Cond,
    /// The whole flag set is read (GETPSW materialises the PSW).
    Always,
}

/// How an instruction *defines* the condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagsWrite {
    /// Flags are never written.
    Never,
    /// Flags are written iff the `scc` bit is asserted (the ALU group).
    IfScc,
    /// Flags are always rewritten (PUTPSW).
    Always,
}

/// Effect on the current-window pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMotion {
    /// CWP unchanged.
    None,
    /// Advances to a fresh window (calls).
    Push,
    /// Returns to the previous window (returns).
    Pop,
}

/// Control-transfer behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transfer {
    /// Ordinary fall-through instruction.
    None,
    /// Delayed transfer to `rs1 + s2`.
    Indexed,
    /// Delayed transfer to `pc + imm19`.
    Relative,
    /// CALLI: window motion and state capture with *no* target operand —
    /// execution falls through, so it exposes no delay slot.
    TrapInPlace,
}

/// Operational-semantics function of one instruction, executed against the
/// minimal [`SpecState`].
pub type EffectFn = fn(&Instruction, &mut SpecState) -> Result<(), SpecFault>;

/// The per-instruction semantics record. One row of the executable Table II.
#[derive(Debug, Clone, Copy)]
pub struct SpecEntry {
    /// The opcode this row describes (its discriminant is the 7-bit field).
    pub opcode: Opcode,
    /// Operand shape of the canonical encoding.
    pub shape: OperandShape,
    /// Whether the `scc` bit may be asserted (ALU and shift group only).
    pub scc_allowed: bool,
    /// Whether an immediate `s2` is a shift count, masked to 5 bits by the
    /// barrel shifter (canonical encodings keep it in `0..=31`).
    pub masks_shift_count: bool,
    /// Base cycle cost in the paper's timing model.
    pub base_cycles: u8,
    /// Data-memory effect.
    pub mem: MemEffect,
    /// Meaning of the `dest` field.
    pub dest: DestRole,
    /// Whether `rs1` is an input (canonical encodings of non-users carry r0).
    pub uses_rs1: bool,
    /// Whether `s2` is an input (canonical encodings of non-users carry #0).
    pub uses_s2: bool,
    /// Condition-flag uses.
    pub reads_flags: FlagsRead,
    /// Condition-flag defs.
    pub writes_flags: FlagsWrite,
    /// Whether the saved last-PC register is an input (GTLPC/CALLI).
    pub reads_last_pc: bool,
    /// Whether non-flag PSW state (interrupt enable, window pointers) is an
    /// input (GETPSW).
    pub reads_psw: bool,
    /// Whether non-flag PSW state is written (PUTPSW, CALLI, RETI).
    pub writes_psw: bool,
    /// Effect on the current-window pointer.
    pub window: WindowMotion,
    /// Control-transfer behaviour.
    pub transfer: Transfer,
    /// Whether the instruction exposes a delay slot.
    pub has_delay_slot: bool,
    /// For long-format rows: whether `imm19` is an unsigned payload (LDHI)
    /// rather than a signed PC-relative offset.
    pub imm19_unsigned: bool,
    /// Operational semantics against [`SpecState`].
    pub effect: EffectFn,
}

/// How the trace-compilation tier lowers one instruction into trace IR.
///
/// Derived purely from the spec row's effect fields, so the trace builder
/// never keeps a private opcode list that could drift from the table: any
/// row that moves a window, touches the PSW, reads `lastpc`, or transfers
/// anywhere but PC-relative is `Excluded` and ends trace formation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lowering {
    /// Plain ALU/shift row: lowers to a virtual-register ALU op.
    Alu,
    /// LDHI: lowers to a build-time constant move.
    Const,
    /// Memory read: lowers to a guarded load (faults side-exit the trace).
    Load,
    /// Memory write: lowers to a guarded store (faults and code-dirty
    /// writes side-exit the trace).
    Store,
    /// PC-relative transfer (JMPR): lowers to a direction guard with a
    /// statically predicted target.
    RelBranch,
    /// Everything else — window motion, PSW/lastpc access, indexed or
    /// trapping transfers. Traces stop before these.
    Excluded,
}

impl SpecEntry {
    /// Whether this row is in the ALU/shift group (the fusion candidates of
    /// the superblock builder).
    pub fn is_alu(&self) -> bool {
        self.scc_allowed
    }

    /// Whether the carry flag feeds the datapath (ADDC/SUBC/SUBCR) — such
    /// rows cannot be fused across a flag-setting instruction.
    pub fn reads_carry(&self) -> bool {
        matches!(self.reads_flags, FlagsRead::Carry)
    }

    /// The trace-IR class of this row (see [`Lowering`]). Computed from the
    /// row's declared effects, not from the opcode, so new table rows are
    /// conservatively excluded until their effects say otherwise.
    pub fn lowering(&self) -> Lowering {
        if self.window != WindowMotion::None
            || self.writes_psw
            || self.reads_psw
            || self.reads_last_pc
        {
            return Lowering::Excluded;
        }
        match (self.transfer, self.mem) {
            (Transfer::None, MemEffect::Read { .. }) => Lowering::Load,
            (Transfer::None, MemEffect::Write { .. }) => Lowering::Store,
            (Transfer::Relative, MemEffect::None) => Lowering::RelBranch,
            (Transfer::None, MemEffect::None) if self.is_alu() => Lowering::Alu,
            (Transfer::None, MemEffect::None) if self.shape == OperandShape::Long => {
                Lowering::Const
            }
            _ => Lowering::Excluded,
        }
    }

    /// Canonical sample instructions covering every operand shape this row
    /// accepts. Used by the round-trip law tests and `--spec-audit`.
    pub fn canonical_samples(&self) -> Vec<Instruction> {
        let op = self.opcode;
        match self.shape {
            OperandShape::Short if self.dest == DestRole::Ignored => vec![
                Instruction::reg(op, Reg::R0, Reg::R25, Short2::imm(8).unwrap()),
                Instruction::reg(op, Reg::R0, Reg::R3, Short2::reg(Reg::R4)),
            ],
            OperandShape::Short if !self.uses_rs1 => vec![
                Instruction::reg(op, Reg::R16, Reg::R0, Short2::ZERO),
                Instruction::reg(op, Reg::R1, Reg::R0, Short2::ZERO),
            ],
            OperandShape::Short => {
                let (lo, hi) = if self.masks_shift_count {
                    (0, 31)
                } else {
                    (IMM13_MIN, IMM13_MAX)
                };
                let mut out = vec![
                    Instruction::reg(op, Reg::R1, Reg::R2, Short2::reg(Reg::R3)),
                    Instruction::reg(op, Reg::R16, Reg::R26, Short2::imm(lo).unwrap()),
                    Instruction::reg(op, Reg::R31, Reg::R9, Short2::imm(hi).unwrap()),
                ];
                if self.scc_allowed {
                    out.push(Instruction::reg_scc(
                        op,
                        Reg::R0,
                        Reg::R7,
                        Short2::reg(Reg::R8),
                    ));
                    out.push(Instruction::reg_scc(
                        op,
                        Reg::R4,
                        Reg::R5,
                        Short2::imm(hi).unwrap(),
                    ));
                }
                out
            }
            OperandShape::ShortCond => {
                let mut out: Vec<Instruction> = Cond::ALL
                    .iter()
                    .map(|&c| Instruction::jmp(c, Reg::R7, Short2::imm(0).unwrap()))
                    .collect();
                out.push(Instruction::jmp(Cond::Alw, Reg::R2, Short2::reg(Reg::R3)));
                out
            }
            OperandShape::Long if self.imm19_unsigned => vec![
                Instruction::ldhi(Reg::R1, 0),
                Instruction::ldhi(Reg::R31, (1 << 19) - 1),
            ],
            OperandShape::Long => vec![
                Instruction::callr(Reg::R25, 8),
                Instruction::callr(Reg::R0, IMM19_MIN),
                Instruction::callr(Reg::R1, IMM19_MAX),
            ],
            OperandShape::LongCond => {
                let mut out: Vec<Instruction> = Cond::ALL
                    .iter()
                    .map(|&c| Instruction::jmpr(c, -4))
                    .collect();
                out.push(Instruction::jmpr(Cond::Alw, IMM19_MAX));
                out.push(Instruction::jmpr(Cond::Eq, IMM19_MIN));
                out
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The table
// ---------------------------------------------------------------------------

/// Row template for the ALU/shift group.
const fn alu(op: Opcode) -> SpecEntry {
    SpecEntry {
        opcode: op,
        shape: OperandShape::Short,
        scc_allowed: true,
        masks_shift_count: false,
        base_cycles: EXECUTE_CYCLES as u8,
        mem: MemEffect::None,
        dest: DestRole::Result,
        uses_rs1: true,
        uses_s2: true,
        reads_flags: FlagsRead::Never,
        writes_flags: FlagsWrite::IfScc,
        reads_last_pc: false,
        reads_psw: false,
        writes_psw: false,
        window: WindowMotion::None,
        transfer: Transfer::None,
        has_delay_slot: false,
        imm19_unsigned: false,
        effect: effect_alu,
    }
}

/// Row template for the carry-chained ALU ops.
const fn alu_carry(op: Opcode) -> SpecEntry {
    SpecEntry {
        reads_flags: FlagsRead::Carry,
        ..alu(op)
    }
}

/// Row template for the shifts (5-bit masked count).
const fn shift(op: Opcode) -> SpecEntry {
    SpecEntry {
        masks_shift_count: true,
        ..alu(op)
    }
}

/// Row template for the loads.
const fn load(op: Opcode, bytes: u8, sign_extend: bool) -> SpecEntry {
    SpecEntry {
        scc_allowed: false,
        base_cycles: (EXECUTE_CYCLES + MEM_TRANSFER_CYCLES) as u8,
        mem: MemEffect::Read { bytes, sign_extend },
        writes_flags: FlagsWrite::Never,
        effect: effect_load,
        ..alu(op)
    }
}

/// Row template for the stores.
const fn store(op: Opcode, bytes: u8) -> SpecEntry {
    SpecEntry {
        scc_allowed: false,
        base_cycles: (EXECUTE_CYCLES + MEM_TRANSFER_CYCLES) as u8,
        mem: MemEffect::Write { bytes },
        dest: DestRole::StoreData,
        writes_flags: FlagsWrite::Never,
        effect: effect_store,
        ..alu(op)
    }
}

/// Row template for the non-ALU short-format odds and ends.
const fn misc(op: Opcode) -> SpecEntry {
    SpecEntry {
        scc_allowed: false,
        writes_flags: FlagsWrite::Never,
        ..alu(op)
    }
}

/// Every instruction's semantics record, in Table II order (the same order
/// as [`Opcode::ALL`]).
pub static ENTRIES: [SpecEntry; 31] = [
    alu(Opcode::Add),
    alu_carry(Opcode::Addc),
    alu(Opcode::Sub),
    alu_carry(Opcode::Subc),
    alu(Opcode::Subr),
    alu_carry(Opcode::Subcr),
    alu(Opcode::And),
    alu(Opcode::Or),
    alu(Opcode::Xor),
    shift(Opcode::Sll),
    shift(Opcode::Srl),
    shift(Opcode::Sra),
    load(Opcode::Ldl, 4, false),
    load(Opcode::Ldsu, 2, false),
    load(Opcode::Ldss, 2, true),
    load(Opcode::Ldbu, 1, false),
    load(Opcode::Ldbs, 1, true),
    store(Opcode::Stl, 4),
    store(Opcode::Sts, 2),
    store(Opcode::Stb, 1),
    // jmp cond, rs1, s2
    SpecEntry {
        shape: OperandShape::ShortCond,
        dest: DestRole::Ignored,
        reads_flags: FlagsRead::Cond,
        transfer: Transfer::Indexed,
        has_delay_slot: true,
        effect: effect_jump,
        ..misc(Opcode::Jmp)
    },
    // jmpr cond, #imm19
    SpecEntry {
        shape: OperandShape::LongCond,
        dest: DestRole::Ignored,
        uses_rs1: false,
        uses_s2: false,
        reads_flags: FlagsRead::Cond,
        transfer: Transfer::Relative,
        has_delay_slot: true,
        effect: effect_jump,
        ..misc(Opcode::Jmpr)
    },
    // call link, rs1, s2
    SpecEntry {
        dest: DestRole::Link,
        window: WindowMotion::Push,
        transfer: Transfer::Indexed,
        has_delay_slot: true,
        effect: effect_call,
        ..misc(Opcode::Call)
    },
    // callr link, #imm19
    SpecEntry {
        shape: OperandShape::Long,
        dest: DestRole::Link,
        uses_rs1: false,
        uses_s2: false,
        window: WindowMotion::Push,
        transfer: Transfer::Relative,
        has_delay_slot: true,
        effect: effect_call,
        ..misc(Opcode::Callr)
    },
    // ret rs1, s2
    SpecEntry {
        dest: DestRole::Ignored,
        window: WindowMotion::Pop,
        transfer: Transfer::Indexed,
        has_delay_slot: true,
        effect: effect_ret,
        ..misc(Opcode::Ret)
    },
    // calli dest — trap entry, falls through
    SpecEntry {
        dest: DestRole::Link,
        uses_rs1: false,
        uses_s2: false,
        reads_last_pc: true,
        writes_psw: true,
        window: WindowMotion::Push,
        transfer: Transfer::TrapInPlace,
        has_delay_slot: false,
        effect: effect_calli,
        ..misc(Opcode::Calli)
    },
    // reti rs1, s2 — return re-enabling interrupts
    SpecEntry {
        dest: DestRole::Ignored,
        writes_psw: true,
        window: WindowMotion::Pop,
        transfer: Transfer::Indexed,
        has_delay_slot: true,
        effect: effect_ret,
        ..misc(Opcode::Reti)
    },
    // ldhi dest, #imm19
    SpecEntry {
        shape: OperandShape::Long,
        uses_rs1: false,
        uses_s2: false,
        imm19_unsigned: true,
        effect: effect_ldhi,
        ..misc(Opcode::Ldhi)
    },
    // gtlpc dest
    SpecEntry {
        uses_rs1: false,
        uses_s2: false,
        reads_last_pc: true,
        effect: effect_gtlpc,
        ..misc(Opcode::Gtlpc)
    },
    // getpsw dest
    SpecEntry {
        uses_rs1: false,
        uses_s2: false,
        reads_flags: FlagsRead::Always,
        reads_psw: true,
        effect: effect_getpsw,
        ..misc(Opcode::Getpsw)
    },
    // putpsw rs1, s2
    SpecEntry {
        dest: DestRole::Ignored,
        writes_flags: FlagsWrite::Always,
        writes_psw: true,
        effect: effect_putpsw,
        ..misc(Opcode::Putpsw)
    },
];

fn lut() -> &'static [Option<&'static SpecEntry>; OPCODE_POINTS] {
    static LUT: OnceLock<[Option<&'static SpecEntry>; OPCODE_POINTS]> = OnceLock::new();
    LUT.get_or_init(|| {
        let mut t = [None; OPCODE_POINTS];
        for e in &ENTRIES {
            t[e.opcode as usize] = Some(e);
        }
        t
    })
}

/// The semantics record of an opcode. Total: every opcode has exactly one.
pub fn entry(op: Opcode) -> &'static SpecEntry {
    lut()[op as usize].expect("every opcode has a spec entry")
}

/// The semantics record behind a raw 7-bit opcode field, `None` for the 97
/// unassigned opcode points (and for out-of-range codes).
pub fn entry_for_code(code: u8) -> Option<&'static SpecEntry> {
    lut().get(code as usize).copied().flatten()
}

// ---------------------------------------------------------------------------
// Derived def/use facts (consumed by `Instruction` and the linter)
// ---------------------------------------------------------------------------

/// The registers `insn` reads, in operand order (`rs1`, register `s2`, then
/// a store's data register); r0 never appears.
pub fn reg_reads(insn: &Instruction) -> Vec<Reg> {
    let e = entry(insn.opcode);
    let mut out = Vec::with_capacity(3);
    let mut push = |r: Reg| {
        if !r.is_zero() {
            out.push(r);
        }
    };
    match insn.operands {
        Operands::Short { dest, rs1, s2 } => {
            if e.uses_rs1 {
                push(rs1);
            }
            if e.uses_s2 {
                if let Short2::Reg(r) = s2 {
                    push(r);
                }
            }
            if e.dest == DestRole::StoreData {
                push(dest);
            }
        }
        Operands::ShortCond { rs1, s2, .. } => {
            if e.uses_rs1 {
                push(rs1);
            }
            if e.uses_s2 {
                if let Short2::Reg(r) = s2 {
                    push(r);
                }
            }
        }
        Operands::Long { .. } | Operands::LongCond { .. } => {}
    }
    out
}

/// The register `insn` writes, if any (r0 writes are discarded).
pub fn reg_write(insn: &Instruction) -> Option<Reg> {
    match entry(insn.opcode).dest {
        DestRole::Result | DestRole::Link => match insn.operands {
            Operands::Short { dest, .. } | Operands::Long { dest, .. } => {
                (!dest.is_zero()).then_some(dest)
            }
            Operands::ShortCond { .. } | Operands::LongCond { .. } => None,
        },
        DestRole::StoreData | DestRole::Ignored => None,
    }
}

/// Whether `insn` may change the condition flags.
pub fn sets_condition_codes(insn: &Instruction) -> bool {
    insn.scc || entry(insn.opcode).writes_flags == FlagsWrite::Always
}

/// Whether `insn`'s behaviour depends on the condition flags.
pub fn reads_condition_codes(insn: &Instruction) -> bool {
    match entry(insn.opcode).reads_flags {
        FlagsRead::Never => false,
        FlagsRead::Carry | FlagsRead::Always => true,
        FlagsRead::Cond => insn
            .jump_cond()
            .is_some_and(|c| !matches!(c, Cond::Alw | Cond::Nvr)),
    }
}

/// Whether `slot` can sit in the delay slot of `transfer` without changing
/// program meaning (see `Instruction::safe_in_delay_slot_of` for the
/// rationale of each clause). Every fact consulted comes from the table.
pub fn safe_in_delay_slot(slot: &Instruction, transfer: &Instruction) -> bool {
    debug_assert!(entry(transfer.opcode).transfer != Transfer::None);
    if slot.is_nop() {
        return true;
    }
    if entry(slot.opcode).transfer != Transfer::None {
        return false;
    }
    if sets_condition_codes(slot) && reads_condition_codes(transfer) {
        return false;
    }
    if let Some(w) = reg_write(slot) {
        if reg_reads(transfer).contains(&w) {
            return false;
        }
    }
    if entry(transfer.opcode).window != WindowMotion::None {
        let global_only = reg_reads(slot)
            .into_iter()
            .chain(reg_write(slot))
            .all(|r| !r.is_windowed());
        if !global_only {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Encoding-shape validation
// ---------------------------------------------------------------------------

/// Why an instruction's operand shape is rejected by the spec table: the
/// word may decode, but it is not a canonical encoding the assembler can
/// produce (so it breaks the disassemble→reassemble round trip and very
/// likely does not mean what it appears to mean).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecViolation {
    /// The operand payload variant does not match the table's shape.
    OperandShape(OperandShape),
    /// `scc` asserted outside the ALU/shift group.
    SccNotAllowed,
    /// The `dest` field is architecturally ignored and must be r0.
    DestMustBeZero,
    /// `rs1` is not an input of this instruction and must be r0.
    Rs1MustBeZero,
    /// `s2` is not an input of this instruction and must be `#0`.
    S2MustBeZeroImmediate,
    /// An immediate shift count outside `0..=31` (the barrel shifter masks
    /// it, so the written count is not what executes).
    ShiftCountOutOfRange(i32),
    /// A short immediate outside the signed 13-bit field.
    Imm13OutOfRange(i32),
    /// A long immediate outside its 19-bit field.
    Imm19OutOfRange(i32),
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::OperandShape(s) => {
                write!(f, "operand payload does not match the {s:?} shape")
            }
            SpecViolation::SccNotAllowed => {
                write!(f, "scc bit asserted outside the ALU/shift group")
            }
            SpecViolation::DestMustBeZero => {
                write!(f, "dest field is architecturally ignored and must be r0")
            }
            SpecViolation::Rs1MustBeZero => write!(f, "rs1 is unused and must be r0"),
            SpecViolation::S2MustBeZeroImmediate => write!(f, "s2 is unused and must be #0"),
            SpecViolation::ShiftCountOutOfRange(v) => {
                write!(
                    f,
                    "shift count #{v} outside 0..=31 is masked by the shifter"
                )
            }
            SpecViolation::Imm13OutOfRange(v) => {
                write!(f, "immediate #{v} outside the signed 13-bit field")
            }
            SpecViolation::Imm19OutOfRange(v) => {
                write!(f, "immediate #{v} outside the 19-bit field")
            }
        }
    }
}

/// Checks an instruction against the table's encoding constraints: operand
/// shape, scc legality, required-zero fields and immediate ranges. `Ok` for
/// exactly the instructions the assembler can produce.
pub fn validate(insn: &Instruction) -> Result<(), SpecViolation> {
    let e = entry(insn.opcode);
    if insn.scc && !e.scc_allowed {
        return Err(SpecViolation::SccNotAllowed);
    }
    let check_imm13 = |s2: Short2| -> Result<(), SpecViolation> {
        if let Short2::Imm(v) = s2 {
            let v = i32::from(v);
            if !(IMM13_MIN..=IMM13_MAX).contains(&v) {
                return Err(SpecViolation::Imm13OutOfRange(v));
            }
            if e.masks_shift_count && !(0..32).contains(&v) {
                return Err(SpecViolation::ShiftCountOutOfRange(v));
            }
        }
        Ok(())
    };
    match (insn.operands, e.shape) {
        (Operands::Short { dest, rs1, s2 }, OperandShape::Short) => {
            if e.dest == DestRole::Ignored && !dest.is_zero() {
                return Err(SpecViolation::DestMustBeZero);
            }
            if !e.uses_rs1 && !rs1.is_zero() {
                return Err(SpecViolation::Rs1MustBeZero);
            }
            if !e.uses_s2 && s2 != Short2::ZERO {
                return Err(SpecViolation::S2MustBeZeroImmediate);
            }
            check_imm13(s2)
        }
        (Operands::ShortCond { s2, .. }, OperandShape::ShortCond) => check_imm13(s2),
        (Operands::Long { imm19, .. }, OperandShape::Long) => {
            let ok = if e.imm19_unsigned {
                (0..1 << 19).contains(&imm19)
            } else {
                (IMM19_MIN..=IMM19_MAX).contains(&imm19)
            };
            if ok {
                Ok(())
            } else {
                Err(SpecViolation::Imm19OutOfRange(imm19))
            }
        }
        (Operands::LongCond { imm19, .. }, OperandShape::LongCond) => {
            if (IMM19_MIN..=IMM19_MAX).contains(&imm19) {
                Ok(())
            } else {
                Err(SpecViolation::Imm19OutOfRange(imm19))
            }
        }
        (_, expected) => Err(SpecViolation::OperandShape(expected)),
    }
}

// ---------------------------------------------------------------------------
// The reference interpreter
// ---------------------------------------------------------------------------

/// Why the reference interpreter stopped abnormally. The spec machine has no
/// trap handling: conditions the production simulator turns into traps are
/// hard faults here (the differential fuzzer only generates trap-free
/// programs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecFault {
    /// Instruction fetch outside memory or misaligned.
    InstructionAccess {
        /// Faulting program counter.
        pc: u32,
    },
    /// The fetched word does not decode.
    Decode {
        /// Faulting program counter.
        pc: u32,
        /// The decoder's reason.
        err: DecodeError,
    },
    /// A transfer executed in a delay slot (a hardware fault on RISC I).
    TransferInDelaySlot {
        /// Faulting program counter.
        pc: u32,
    },
    /// Misaligned data access.
    DataMisaligned {
        /// Faulting program counter.
        pc: u32,
        /// Faulting address.
        addr: u32,
        /// Access width in bytes.
        width: u8,
    },
    /// Data access outside memory.
    DataOutOfRange {
        /// Faulting program counter.
        pc: u32,
        /// Faulting address.
        addr: u32,
        /// Access width in bytes.
        width: u8,
    },
    /// A call with every register window resident (the production machine
    /// would trap and spill).
    WindowOverflow {
        /// Faulting program counter.
        pc: u32,
    },
    /// The instruction budget of [`SpecState::run`] was exhausted.
    OutOfFuel,
}

impl fmt::Display for SpecFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecFault::InstructionAccess { pc } => {
                write!(f, "instruction access fault at pc={pc:#010x}")
            }
            SpecFault::Decode { pc, err } => write!(f, "decode fault at pc={pc:#010x}: {err}"),
            SpecFault::TransferInDelaySlot { pc } => {
                write!(f, "transfer in delay slot at pc={pc:#010x}")
            }
            SpecFault::DataMisaligned { pc, addr, width } => write!(
                f,
                "misaligned {width}-byte access to {addr:#010x} at pc={pc:#010x}"
            ),
            SpecFault::DataOutOfRange { pc, addr, width } => write!(
                f,
                "out-of-range {width}-byte access to {addr:#010x} at pc={pc:#010x}"
            ),
            SpecFault::WindowOverflow { pc } => write!(f, "window overflow at pc={pc:#010x}"),
            SpecFault::OutOfFuel => write!(f, "spec interpreter ran out of fuel"),
        }
    }
}

impl std::error::Error for SpecFault {}

/// Execution counters of the spec machine — the stats-visible subset the
/// production engines must agree on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles (sum of base cycle costs; the spec machine models no stalls).
    pub cycles: u64,
    /// Instruction fetches (one per retired instruction).
    pub ifetches: u64,
    /// Data loads performed.
    pub data_reads: u64,
    /// Data stores performed.
    pub data_writes: u64,
    /// Calls executed (including CALLI).
    pub calls: u64,
    /// Returns executed (the final halting return is not counted).
    pub rets: u64,
    /// Transfers actually taken.
    pub taken_transfers: u64,
    /// Instructions retired in a delay slot.
    pub delay_slots: u64,
    /// No-ops retired in a delay slot.
    pub delay_slot_nops: u64,
}

/// The minimal machine state the spec semantics are defined against: a
/// little-endian byte memory, the overlapped register windows, the flags,
/// the PC pair and the delayed-jump latch. Deliberately slow: every step
/// fetches and decodes from scratch.
#[derive(Debug, Clone)]
pub struct SpecState {
    mem: Vec<u8>,
    globals: [u32; 10],
    ring: Vec<u32>,
    windows: usize,
    cwp: usize,
    resident: usize,
    depth: u64,
    pc: u32,
    last_pc: u32,
    pending_target: Option<u32>,
    new_target: Option<u32>,
    flags: Flags,
    interrupts_enabled: bool,
    halted: bool,
    stats: SpecStats,
}

impl SpecState {
    /// A fresh machine with `mem_bytes` of zeroed memory and `windows`
    /// register windows.
    ///
    /// # Panics
    /// Panics if `windows < 2` (the scheme needs a current and a previous
    /// window).
    pub fn new(mem_bytes: usize, windows: usize) -> SpecState {
        assert!(windows >= 2, "register file needs at least two windows");
        SpecState {
            mem: vec![0; mem_bytes],
            globals: [0; 10],
            ring: vec![0; windows * 16],
            windows,
            cwp: 0,
            resident: 1,
            depth: 0,
            pc: 0,
            last_pc: 0,
            pending_target: None,
            new_target: None,
            flags: Flags::default(),
            interrupts_enabled: false,
            halted: false,
            stats: SpecStats::default(),
        }
    }

    /// Copies `bytes` into memory at `addr` (program/data loading; not a
    /// data reference).
    ///
    /// # Panics
    /// Panics if the image does not fit.
    pub fn load_image(&mut self, addr: u32, bytes: &[u8]) {
        let start = addr as usize;
        self.mem[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// Writes instruction `words` at `addr`, little-endian.
    ///
    /// # Panics
    /// Panics if the image does not fit.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            let at = addr as usize + 4 * i;
            self.mem[at..at + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Sets the program counter (entry point).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether the machine has halted (a return at call depth zero).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Execution counters so far.
    pub fn stats(&self) -> &SpecStats {
        &self.stats
    }

    /// Current window pointer.
    pub fn cwp(&self) -> u8 {
        self.cwp as u8
    }

    /// Saved window pointer (the oldest resident window).
    pub fn swp(&self) -> u8 {
        ((self.cwp + self.windows - (self.resident - 1)) % self.windows) as u8
    }

    /// Call depth relative to the entry point.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Current condition flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// The whole memory image (for digests and inspection).
    pub fn mem_bytes(&self) -> &[u8] {
        &self.mem
    }

    /// The 32 registers visible in the current window, r0 first.
    pub fn visible(&self) -> [u32; NUM_VISIBLE_REGS] {
        let mut out = [0u32; NUM_VISIBLE_REGS];
        for r in Reg::all() {
            out[r.number() as usize] = self.read_reg(r);
        }
        out
    }

    /// The program result by convention: r26 of the entry window.
    pub fn result(&self) -> i32 {
        self.read_reg(Reg::R26) as i32
    }

    /// Reads a register in the current window's name space.
    pub fn read_reg(&self, r: Reg) -> u32 {
        match self.ring_slot(r.number()) {
            None => {
                if r.is_zero() {
                    0
                } else {
                    self.globals[r.number() as usize]
                }
            }
            Some(i) => self.ring[i],
        }
    }

    /// Writes a register in the current window's name space (r0 writes are
    /// discarded).
    pub fn write_reg(&mut self, r: Reg, v: u32) {
        match self.ring_slot(r.number()) {
            None => {
                if !r.is_zero() {
                    self.globals[r.number() as usize] = v;
                }
            }
            Some(i) => self.ring[i] = v,
        }
    }

    /// Physical slot of a windowed register: each window owns 16 ring slots
    /// (6 LOW + 10 LOCAL); HIGH registers alias the previous window's LOW.
    fn ring_slot(&self, n: u8) -> Option<usize> {
        let w = self.windows;
        match n {
            0..=9 => None,
            10..=15 => Some((self.cwp % w) * 16 + (n as usize - 10)),
            16..=25 => Some((self.cwp % w) * 16 + 6 + (n as usize - 16)),
            _ => Some(((self.cwp + w - 1) % w) * 16 + (n as usize - 26)),
        }
    }

    fn window_push(&mut self) -> Result<(), SpecFault> {
        if self.resident == self.windows - 1 {
            return Err(SpecFault::WindowOverflow { pc: self.pc });
        }
        self.cwp = (self.cwp + 1) % self.windows;
        self.resident += 1;
        self.depth += 1;
        Ok(())
    }

    fn window_pop(&mut self) {
        debug_assert!(self.depth > 0 && self.resident > 1);
        self.cwp = (self.cwp + self.windows - 1) % self.windows;
        self.resident -= 1;
        self.depth -= 1;
    }

    fn mem_check(&self, addr: u32, width: u8) -> Result<usize, SpecFault> {
        if u64::from(addr) % u64::from(width) != 0 {
            return Err(SpecFault::DataMisaligned {
                pc: self.pc,
                addr,
                width,
            });
        }
        if u64::from(addr) + u64::from(width) > self.mem.len() as u64 {
            return Err(SpecFault::DataOutOfRange {
                pc: self.pc,
                addr,
                width,
            });
        }
        Ok(addr as usize)
    }

    fn mem_read(&mut self, addr: u32, bytes: u8) -> Result<u32, SpecFault> {
        let i = self.mem_check(addr, bytes)?;
        let mut v = 0u32;
        for k in (0..bytes as usize).rev() {
            v = v << 8 | u32::from(self.mem[i + k]);
        }
        Ok(v)
    }

    fn mem_write(&mut self, addr: u32, bytes: u8, value: u32) -> Result<(), SpecFault> {
        let i = self.mem_check(addr, bytes)?;
        for k in 0..bytes as usize {
            self.mem[i + k] = (value >> (8 * k)) as u8;
        }
        Ok(())
    }

    fn fetch(&self, pc: u32) -> Result<u32, SpecFault> {
        if !pc.is_multiple_of(4) || u64::from(pc) + 4 > self.mem.len() as u64 {
            return Err(SpecFault::InstructionAccess { pc });
        }
        let i = pc as usize;
        Ok(u32::from_le_bytes([
            self.mem[i],
            self.mem[i + 1],
            self.mem[i + 2],
            self.mem[i + 3],
        ]))
    }

    /// Executes one instruction. Returns `true` once the machine has halted.
    ///
    /// # Errors
    /// Any [`SpecFault`] the instruction raises; the machine state is not
    /// meaningful afterwards.
    pub fn step(&mut self) -> Result<bool, SpecFault> {
        if self.halted {
            return Ok(true);
        }
        let pc = self.pc;
        let word = self.fetch(pc)?;
        let insn = Instruction::decode(word).map_err(|err| SpecFault::Decode { pc, err })?;
        let e = entry(insn.opcode);
        let in_delay_slot = self.pending_target.is_some();
        if in_delay_slot && e.transfer != Transfer::None {
            return Err(SpecFault::TransferInDelaySlot { pc });
        }
        self.stats.instructions += 1;
        self.stats.ifetches += 1;
        if in_delay_slot {
            self.stats.delay_slots += 1;
            if insn.is_nop() {
                self.stats.delay_slot_nops += 1;
            }
        }
        self.stats.cycles += u64::from(e.base_cycles);
        self.new_target = None;
        (e.effect)(&insn, self)?;
        self.last_pc = pc;
        if self.halted {
            return Ok(true);
        }
        let next = self.pending_target.take().unwrap_or(pc.wrapping_add(4));
        self.pending_target = self.new_target.take();
        self.pc = next;
        Ok(false)
    }

    /// Runs until the machine halts or `fuel` instructions have retired.
    ///
    /// # Errors
    /// [`SpecFault::OutOfFuel`] when the budget is exhausted, or any fault
    /// an instruction raises.
    pub fn run(&mut self, fuel: u64) -> Result<(), SpecFault> {
        while !self.halted {
            if self.stats.instructions >= fuel {
                return Err(SpecFault::OutOfFuel);
            }
            self.step()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Effects
// ---------------------------------------------------------------------------

fn short_operands(insn: &Instruction) -> (Reg, Reg, Short2) {
    match insn.operands {
        Operands::Short { dest, rs1, s2 } => (dest, rs1, s2),
        _ => unreachable!("short-shape opcode decoded with non-short operands"),
    }
}

fn s2_value(st: &SpecState, s2: Short2) -> u32 {
    match s2 {
        Short2::Reg(r) => st.read_reg(r),
        Short2::Imm(v) => v as i32 as u32,
    }
}

/// The ALU of the spec machine: value and flags for one of the twelve
/// ALU/shift operations. Independent of the production executor's adder —
/// flags come from exact wide arithmetic rather than bit tricks.
///
/// # Panics
/// Panics if `op` is outside the ALU/shift group.
pub fn spec_alu(op: Opcode, a: u32, b: u32, carry: bool) -> (u32, Flags) {
    let count = b & ((1 << Opcode::SHIFT_COUNT_BITS) - 1);
    match op {
        Opcode::Add => add3(a, b, false),
        Opcode::Addc => add3(a, b, carry),
        Opcode::Sub => sub3(a, b, true),
        Opcode::Subc => sub3(a, b, carry),
        Opcode::Subr => sub3(b, a, true),
        Opcode::Subcr => sub3(b, a, carry),
        Opcode::And => logic(a & b),
        Opcode::Or => logic(a | b),
        Opcode::Xor => logic(a ^ b),
        Opcode::Sll => logic(a << count),
        Opcode::Srl => logic(a >> count),
        Opcode::Sra => logic(((a as i32) >> count) as u32),
        other => unreachable!("spec_alu on non-ALU opcode {other}"),
    }
}

fn value_flags(value: u32, v: bool, c: bool) -> (u32, Flags) {
    (
        value,
        Flags {
            z: value == 0,
            n: (value as i32) < 0,
            v,
            c,
        },
    )
}

fn add3(a: u32, b: u32, carry_in: bool) -> (u32, Flags) {
    let wide = u64::from(a) + u64::from(b) + u64::from(carry_in);
    let value = wide as u32;
    let exact = i64::from(a as i32) + i64::from(b as i32) + i64::from(carry_in);
    value_flags(
        value,
        exact != i64::from(value as i32),
        wide > u64::from(u32::MAX),
    )
}

/// `a - b - borrow` where `no_borrow_in` is the carry convention (C = 1 means
/// no borrow).
fn sub3(a: u32, b: u32, no_borrow_in: bool) -> (u32, Flags) {
    let borrow = u64::from(!no_borrow_in);
    let value = a.wrapping_sub(b).wrapping_sub(borrow as u32);
    let exact = i64::from(a as i32) - i64::from(b as i32) - borrow as i64;
    value_flags(
        value,
        exact != i64::from(value as i32),
        u64::from(a) >= u64::from(b) + borrow,
    )
}

fn logic(value: u32) -> (u32, Flags) {
    value_flags(value, false, false)
}

fn effect_alu(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let (dest, rs1, s2) = short_operands(insn);
    let a = st.read_reg(rs1);
    let b = s2_value(st, s2);
    let (value, flags) = spec_alu(insn.opcode, a, b, st.flags.c);
    st.write_reg(dest, value);
    if insn.scc {
        st.flags = flags;
    }
    Ok(())
}

fn effect_load(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let (dest, rs1, s2) = short_operands(insn);
    let addr = st.read_reg(rs1).wrapping_add(s2_value(st, s2));
    let MemEffect::Read { bytes, sign_extend } = entry(insn.opcode).mem else {
        unreachable!("load entry carries a read effect")
    };
    let raw = st.mem_read(addr, bytes)?;
    let value = if sign_extend {
        let shift = 32 - 8 * u32::from(bytes);
        (((raw << shift) as i32) >> shift) as u32
    } else {
        raw
    };
    st.write_reg(dest, value);
    st.stats.data_reads += 1;
    Ok(())
}

fn effect_store(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let (dest, rs1, s2) = short_operands(insn);
    let addr = st.read_reg(rs1).wrapping_add(s2_value(st, s2));
    let MemEffect::Write { bytes } = entry(insn.opcode).mem else {
        unreachable!("store entry carries a write effect")
    };
    let data = st.read_reg(dest);
    st.mem_write(addr, bytes, data)?;
    st.stats.data_writes += 1;
    Ok(())
}

fn effect_jump(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let (cond, target) = match insn.operands {
        Operands::ShortCond { cond, rs1, s2 } => {
            (cond, st.read_reg(rs1).wrapping_add(s2_value(st, s2)))
        }
        Operands::LongCond { cond, imm19 } => (cond, st.pc.wrapping_add(imm19 as u32)),
        _ => unreachable!("jump operands"),
    };
    if cond.eval(st.flags) {
        st.new_target = Some(target);
        st.stats.taken_transfers += 1;
    }
    Ok(())
}

fn effect_call(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let (link, target) = match insn.operands {
        Operands::Short { dest, rs1, s2 } => {
            (dest, st.read_reg(rs1).wrapping_add(s2_value(st, s2)))
        }
        Operands::Long { dest, imm19 } => (dest, st.pc.wrapping_add(imm19 as u32)),
        _ => unreachable!("call operands"),
    };
    st.window_push()?;
    let pc = st.pc;
    st.write_reg(link, pc);
    st.new_target = Some(target);
    st.stats.calls += 1;
    st.stats.taken_transfers += 1;
    Ok(())
}

fn effect_ret(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let (_, rs1, s2) = short_operands(insn);
    let target = st.read_reg(rs1).wrapping_add(s2_value(st, s2));
    if st.depth == 0 {
        // A return past the entry point halts the machine; the PC stays on
        // the return itself and the counters do not record a return.
        st.halted = true;
        return Ok(());
    }
    st.window_pop();
    st.new_target = Some(target);
    st.stats.rets += 1;
    st.stats.taken_transfers += 1;
    if insn.opcode == Opcode::Reti {
        st.interrupts_enabled = true;
    }
    Ok(())
}

fn effect_calli(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let (dest, _, _) = short_operands(insn);
    st.window_push()?;
    let lp = st.last_pc;
    st.write_reg(dest, lp);
    st.interrupts_enabled = false;
    st.stats.calls += 1;
    Ok(())
}

fn effect_ldhi(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let Operands::Long { dest, imm19 } = insn.operands else {
        unreachable!("ldhi operands")
    };
    st.write_reg(dest, (imm19 as u32) << 13);
    Ok(())
}

fn effect_gtlpc(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let (dest, _, _) = short_operands(insn);
    let lp = st.last_pc;
    st.write_reg(dest, lp);
    Ok(())
}

fn effect_getpsw(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let (dest, _, _) = short_operands(insn);
    let word = Psw {
        flags: st.flags,
        interrupts_enabled: st.interrupts_enabled,
        cwp: st.cwp(),
        swp: st.swp(),
    }
    .to_word();
    st.write_reg(dest, word);
    Ok(())
}

fn effect_putpsw(insn: &Instruction, st: &mut SpecState) -> Result<(), SpecFault> {
    let (_, rs1, s2) = short_operands(insn);
    let word = st.read_reg(rs1).wrapping_add(s2_value(st, s2));
    let psw = Psw::from_word(word);
    // Flags and the interrupt-enable bit are writable; the window pointers
    // are owned by the hardware and ignored, as in the production machine.
    st.flags = psw.flags;
    st.interrupts_enabled = psw.interrupts_enabled;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::{Category, Format};

    #[test]
    fn table_covers_every_opcode_in_order() {
        assert_eq!(ENTRIES.len(), Opcode::ALL.len());
        for (e, op) in ENTRIES.iter().zip(Opcode::ALL) {
            assert_eq!(e.opcode, *op, "table order must match Table II");
        }
    }

    #[test]
    fn lookup_is_total_over_opcodes_and_rejects_unassigned_codes() {
        for op in Opcode::ALL {
            assert_eq!(entry(*op).opcode, *op);
            assert_eq!(entry_for_code(*op as u8).unwrap().opcode, *op);
        }
        for code in 0..=u8::MAX {
            assert_eq!(
                entry_for_code(code).is_some(),
                Opcode::from_code(code).is_some(),
                "code {code:#04x}"
            );
        }
    }

    #[test]
    fn table_agrees_with_opcode_metadata() {
        for e in &ENTRIES {
            let op = e.opcode;
            assert_eq!(u64::from(e.base_cycles), op.base_cycles(), "{op}");
            assert_eq!(
                u64::from(e.mem != MemEffect::None),
                op.data_mem_refs(),
                "{op}"
            );
            let shape_format = match e.shape {
                OperandShape::Short | OperandShape::ShortCond => Format::Short,
                OperandShape::Long | OperandShape::LongCond => Format::Long,
            };
            assert_eq!(shape_format, op.format(), "{op}");
            let shape_cond = matches!(e.shape, OperandShape::ShortCond | OperandShape::LongCond);
            assert_eq!(shape_cond, op.uses_condition(), "{op}");
            assert_eq!(
                e.scc_allowed,
                matches!(op.category(), Category::Arithmetic | Category::Shift),
                "{op}"
            );
            assert_eq!(
                e.masks_shift_count,
                op.category() == Category::Shift,
                "{op}"
            );
            assert_eq!(
                matches!(e.mem, MemEffect::Read { .. }),
                op.is_load(),
                "{op}"
            );
            assert_eq!(
                matches!(e.mem, MemEffect::Write { .. }),
                op.is_store(),
                "{op}"
            );
            assert_eq!(e.window != WindowMotion::None, op.moves_window(), "{op}");
            assert_eq!(e.window == WindowMotion::Push, op.is_call(), "{op}");
            assert_eq!(e.window == WindowMotion::Pop, op.is_ret(), "{op}");
            assert_eq!(e.transfer != Transfer::None, op.is_transfer(), "{op}");
            assert_eq!(e.has_delay_slot, op.has_delay_slot(), "{op}");
        }
    }

    #[test]
    fn lowering_classes_match_trace_rules() {
        for e in &ENTRIES {
            let op = e.opcode;
            let want = match op {
                Opcode::Ldhi => Lowering::Const,
                Opcode::Jmpr => Lowering::RelBranch,
                _ if e.is_alu() => Lowering::Alu,
                _ if op.is_load() => Lowering::Load,
                _ if op.is_store() => Lowering::Store,
                _ => Lowering::Excluded,
            };
            assert_eq!(e.lowering(), want, "{op}");
        }
        // The excluded set is exactly the rows a trace cannot cross:
        // window motion, PSW/lastpc access, and non-relative transfers.
        let excluded: Vec<Opcode> = ENTRIES
            .iter()
            .filter(|e| e.lowering() == Lowering::Excluded)
            .map(|e| e.opcode)
            .collect();
        assert_eq!(
            excluded,
            vec![
                Opcode::Jmp,
                Opcode::Call,
                Opcode::Callr,
                Opcode::Ret,
                Opcode::Calli,
                Opcode::Reti,
                Opcode::Gtlpc,
                Opcode::Getpsw,
                Opcode::Putpsw,
            ]
        );
    }

    #[test]
    fn flag_def_use_partition() {
        // Exactly the carry-chained ops read carry; exactly the ALU group
        // may set flags; PUTPSW always does.
        let carry: Vec<Opcode> = ENTRIES
            .iter()
            .filter(|e| e.reads_carry())
            .map(|e| e.opcode)
            .collect();
        assert_eq!(carry, vec![Opcode::Addc, Opcode::Subc, Opcode::Subcr]);
        assert_eq!(ENTRIES.iter().filter(|e| e.is_alu()).count(), 12);
        let always: Vec<Opcode> = ENTRIES
            .iter()
            .filter(|e| e.writes_flags == FlagsWrite::Always)
            .map(|e| e.opcode)
            .collect();
        assert_eq!(always, vec![Opcode::Putpsw]);
    }

    #[test]
    fn canonical_samples_validate_and_roundtrip_the_encoding() {
        for e in &ENTRIES {
            let samples = e.canonical_samples();
            assert!(!samples.is_empty(), "{}", e.opcode);
            for insn in samples {
                assert_eq!(validate(&insn), Ok(()), "{insn}");
                assert_eq!(Instruction::decode(insn.encode()), Ok(insn), "{insn}");
            }
        }
    }

    #[test]
    fn validate_rejects_noncanonical_shapes() {
        // ret with a non-zero (ignored) dest field.
        let ret = Instruction {
            opcode: Opcode::Ret,
            scc: false,
            operands: Operands::Short {
                dest: Reg::R5,
                rs1: Reg::R25,
                s2: Short2::imm(8).unwrap(),
            },
        };
        assert_eq!(validate(&ret), Err(SpecViolation::DestMustBeZero));

        // calli with junk in the unused rs1/s2 fields.
        let calli = Instruction {
            opcode: Opcode::Calli,
            scc: false,
            operands: Operands::Short {
                dest: Reg::R16,
                rs1: Reg::R5,
                s2: Short2::ZERO,
            },
        };
        assert_eq!(validate(&calli), Err(SpecViolation::Rs1MustBeZero));
        let calli2 = Instruction {
            opcode: Opcode::Gtlpc,
            scc: false,
            operands: Operands::Short {
                dest: Reg::R16,
                rs1: Reg::R0,
                s2: Short2::imm(4).unwrap(),
            },
        };
        assert_eq!(validate(&calli2), Err(SpecViolation::S2MustBeZeroImmediate));

        // A shift count the barrel shifter would mask.
        let sll = Instruction::reg(Opcode::Sll, Reg::R1, Reg::R2, Short2::imm(33).unwrap());
        assert_eq!(validate(&sll), Err(SpecViolation::ShiftCountOutOfRange(33)));

        // scc outside the ALU group.
        let scc_load = Instruction {
            scc: true,
            ..Instruction::reg(Opcode::Ldl, Reg::R1, Reg::R2, Short2::ZERO)
        };
        assert_eq!(validate(&scc_load), Err(SpecViolation::SccNotAllowed));

        // An ldhi payload outside the unsigned 19-bit field.
        let ldhi = Instruction {
            opcode: Opcode::Ldhi,
            scc: false,
            operands: Operands::Long {
                dest: Reg::R1,
                imm19: -1,
            },
        };
        assert_eq!(validate(&ldhi), Err(SpecViolation::Imm19OutOfRange(-1)));

        // Operand payload in the wrong shape entirely.
        let bad_shape = Instruction {
            opcode: Opcode::Add,
            scc: false,
            operands: Operands::LongCond {
                cond: Cond::Alw,
                imm19: 0,
            },
        };
        assert_eq!(
            validate(&bad_shape),
            Err(SpecViolation::OperandShape(OperandShape::Short))
        );
    }

    #[test]
    fn derived_def_use_matches_the_table_roles() {
        let add = Instruction::reg(Opcode::Add, Reg::R1, Reg::R2, Short2::reg(Reg::R3));
        assert_eq!(reg_reads(&add), vec![Reg::R2, Reg::R3]);
        assert_eq!(reg_write(&add), Some(Reg::R1));

        let st = Instruction::reg(Opcode::Stl, Reg::R5, Reg::R26, Short2::imm(4).unwrap());
        assert_eq!(reg_reads(&st), vec![Reg::R26, Reg::R5]);
        assert_eq!(reg_write(&st), None);

        // calli/gtlpc/getpsw read no registers even when the (must-be-zero)
        // fields carry junk: the fields are not inputs of the datapath.
        let calli = Instruction {
            opcode: Opcode::Calli,
            scc: false,
            operands: Operands::Short {
                dest: Reg::R16,
                rs1: Reg::R5,
                s2: Short2::reg(Reg::R6),
            },
        };
        assert!(reg_reads(&calli).is_empty());
        assert_eq!(reg_write(&calli), Some(Reg::R16));
    }

    fn run_insns(insns: &[Instruction], fuel: u64) -> SpecState {
        let mut st = SpecState::new(0x4000, 8);
        let words: Vec<u32> = insns.iter().map(Instruction::encode).collect();
        st.load_words(0x1000, &words);
        st.set_pc(0x1000);
        st.run(fuel).expect("clean run");
        st
    }

    #[test]
    fn interpreter_halts_on_entry_return_without_advancing_pc() {
        let st = run_insns(
            &[
                Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, Short2::imm(5).unwrap()),
                Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, Short2::imm(7).unwrap()),
                Instruction::reg(Opcode::Add, Reg::R26, Reg::R16, Short2::reg(Reg::R17)),
                Instruction::ret(Reg::R0, Short2::ZERO),
                Instruction::nop(),
            ],
            100,
        );
        assert_eq!(st.result(), 12);
        assert_eq!(st.pc(), 0x100c, "halting return does not advance the pc");
        assert_eq!(st.stats().instructions, 4, "the delay-slot nop never runs");
        assert_eq!(st.stats().cycles, 4);
        assert_eq!(st.stats().rets, 0, "the halting return is not counted");
        assert_eq!(st.depth(), 0);
    }

    #[test]
    fn interpreter_window_overlap_passes_parameters() {
        // main: r10 := 21; callr f; (slot) nop; r26 := r10; halt
        // f:    r26 := r26 + r26; ret r25, #8; (slot) nop
        let st = run_insns(
            &[
                Instruction::reg(Opcode::Add, Reg::R10, Reg::R0, Short2::imm(21).unwrap()),
                Instruction::callr(Reg::R25, 16), // to f at +4 insns
                Instruction::nop(),
                Instruction::reg(Opcode::Add, Reg::R26, Reg::R10, Short2::ZERO),
                Instruction::ret(Reg::R0, Short2::ZERO),
                // f:
                Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, Short2::reg(Reg::R26)),
                Instruction::ret(Reg::R25, Short2::imm(8).unwrap()),
                Instruction::nop(),
            ],
            100,
        );
        assert_eq!(st.result(), 42, "callee's r26 aliases the caller's r10");
        assert_eq!(st.stats().calls, 1);
        assert_eq!(st.stats().rets, 1);
        assert_eq!(st.cwp(), 0);
        assert_eq!(st.depth(), 0);
    }

    #[test]
    fn interpreter_flags_and_conditional_branches() {
        // r16 := 3; loop: r16 -= 1 {scc}; jmpr gt, loop; (slot) nop;
        // r26 := r16; halt
        let st = run_insns(
            &[
                Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, Short2::imm(3).unwrap()),
                Instruction::reg_scc(Opcode::Sub, Reg::R16, Reg::R16, Short2::imm(1).unwrap()),
                Instruction::jmpr(Cond::Gt, -4),
                Instruction::nop(),
                Instruction::reg(Opcode::Add, Reg::R26, Reg::R16, Short2::ZERO),
                Instruction::ret(Reg::R0, Short2::ZERO),
            ],
            100,
        );
        assert_eq!(st.result(), 0);
        assert_eq!(st.stats().taken_transfers, 2, "taken twice, then falls out");
        // Only the two taken iterations put the nop in a transfer's shadow;
        // after the untaken jump it is an ordinary instruction.
        assert_eq!(st.stats().delay_slots, 2);
        assert_eq!(st.stats().delay_slot_nops, 2);
    }

    #[test]
    fn interpreter_memory_is_little_endian() {
        let value = 0x1122_3344u32;
        let insns: Vec<Instruction> = Instruction::load_constant(Reg::R1, value)
            .into_iter()
            .chain([
                Instruction::reg(Opcode::Stl, Reg::R1, Reg::R0, Short2::imm(0x80).unwrap()),
                Instruction::reg(Opcode::Ldbu, Reg::R26, Reg::R0, Short2::imm(0x80).unwrap()),
                Instruction::ret(Reg::R0, Short2::ZERO),
            ])
            .collect();
        let st = run_insns(&insns, 100);
        assert_eq!(st.result(), 0x44, "byte 0 is the least significant");
        assert_eq!(st.stats().data_reads, 1);
        assert_eq!(st.stats().data_writes, 1);
        assert_eq!(&st.mem_bytes()[0x80..0x84], &[0x44, 0x33, 0x22, 0x11]);
    }

    #[test]
    fn interpreter_faults_are_reported() {
        // Misaligned load.
        let mut st = SpecState::new(0x2000, 8);
        let ld = Instruction::reg(Opcode::Ldl, Reg::R1, Reg::R0, Short2::imm(2).unwrap());
        st.load_words(0x1000, &[ld.encode()]);
        st.set_pc(0x1000);
        assert!(matches!(
            st.step(),
            Err(SpecFault::DataMisaligned {
                addr: 2,
                width: 4,
                ..
            })
        ));

        // Transfer in a delay slot.
        let mut st = SpecState::new(0x2000, 8);
        let j = Instruction::jmpr(Cond::Alw, 8);
        st.load_words(0x1000, &[j.encode(), j.encode()]);
        st.set_pc(0x1000);
        assert_eq!(st.step(), Ok(false));
        assert_eq!(
            st.step(),
            Err(SpecFault::TransferInDelaySlot { pc: 0x1004 })
        );

        // Unassigned opcode word.
        let mut st = SpecState::new(0x2000, 8);
        st.set_pc(0x1000);
        assert!(matches!(
            st.step(),
            Err(SpecFault::Decode { pc: 0x1000, .. })
        ));

        // Window overflow: with 3 windows the second nested call (reaching
        // the last free window) faults, as the production machine would trap.
        let mut st = SpecState::new(0x2000, 3);
        let call = Instruction::callr(Reg::R25, 8);
        let chain = [
            call.encode(),
            Instruction::nop().encode(),
            call.encode(),
            Instruction::nop().encode(),
        ];
        st.load_words(0x1000, &chain);
        st.set_pc(0x1000);
        assert_eq!(st.step(), Ok(false), "first call pushes a fresh window");
        assert_eq!(st.step(), Ok(false), "delay-slot nop");
        assert_eq!(st.step(), Err(SpecFault::WindowOverflow { pc: 0x1008 }));
    }

    #[test]
    fn interpreter_psw_round_trip() {
        // putpsw materialises flags; getpsw reads them back with the window
        // pointers; calli turns interrupts off.
        let st = run_insns(
            &[
                // Z and C set, interrupts on: word = 0b11001 = 0x19.
                Instruction::reg(Opcode::Putpsw, Reg::R0, Reg::R0, Short2::imm(0x19).unwrap()),
                Instruction::reg(Opcode::Getpsw, Reg::R26, Reg::R0, Short2::ZERO),
                Instruction::ret(Reg::R0, Short2::ZERO),
            ],
            100,
        );
        let psw = Psw::from_word(st.result() as u32);
        assert!(psw.flags.z && psw.flags.c && !psw.flags.n && !psw.flags.v);
        assert!(psw.interrupts_enabled);
        assert_eq!(psw.cwp, 0);
        assert_eq!(psw.swp, 0);
    }
}
