//! Decoded instruction representation.
//!
//! [`Instruction`] is the symbolic (already-decoded) form used throughout the
//! workspace: the simulator executes it directly, the assembler produces it,
//! and [`Instruction::encode`]/[`Instruction::decode`] convert to and from
//! the 32-bit machine word.

use crate::cond::Cond;
use crate::opcode::{Format, Opcode};
use crate::reg::Reg;
use std::fmt;

/// Range of the 13-bit signed short immediate.
pub const IMM13_MIN: i32 = -(1 << 12);
/// Inclusive upper bound of the 13-bit signed short immediate.
pub const IMM13_MAX: i32 = (1 << 12) - 1;
/// Range of the 19-bit signed long immediate (PC-relative transfers).
pub const IMM19_MIN: i32 = -(1 << 18);
/// Inclusive upper bound of the 19-bit signed long immediate.
pub const IMM19_MAX: i32 = (1 << 18) - 1;

/// The second source operand of a short-format instruction: either a
/// register or a sign-extended 13-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Short2 {
    /// Second operand comes from a register.
    Reg(Reg),
    /// Second operand is a 13-bit signed immediate (invariant: within
    /// [`IMM13_MIN`]..=[`IMM13_MAX`], enforced by [`Short2::imm`]).
    Imm(i16),
}

impl Short2 {
    /// A register second operand.
    pub fn reg(r: Reg) -> Short2 {
        Short2::Reg(r)
    }

    /// An immediate second operand; `None` if the value does not fit in 13
    /// signed bits.
    pub fn imm(v: i32) -> Option<Short2> {
        (IMM13_MIN..=IMM13_MAX)
            .contains(&v)
            .then_some(Short2::Imm(v as i16))
    }

    /// The constant zero (`#0`), used wherever an operand is unused.
    pub const ZERO: Short2 = Short2::Imm(0);
}

impl From<Reg> for Short2 {
    fn from(r: Reg) -> Short2 {
        Short2::Reg(r)
    }
}

impl fmt::Display for Short2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Short2::Reg(r) => write!(f, "{r}"),
            Short2::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// The operand payload of an instruction, one variant per operand shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operands {
    /// `dest, rs1, s2` — ALU ops, loads (dest := M[rs1+s2]), stores
    /// (M[rs1+s2] := dest), CALL/RET/CALLI/RETI and PSW ops.
    Short {
        /// Destination register (or data source for stores, or the link
        /// register for CALL).
        dest: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source operand.
        s2: Short2,
    },
    /// `cond, rs1, s2` — the conditional indexed jump `JMP`.
    ShortCond {
        /// Jump condition (encoded in the dest field).
        cond: Cond,
        /// Base register of the target address.
        rs1: Reg,
        /// Offset part of the target address.
        s2: Short2,
    },
    /// `dest, imm19` — `LDHI` (unsigned payload) and `CALLR` (signed
    /// PC-relative byte offset).
    Long {
        /// Destination (or link) register.
        dest: Reg,
        /// 19-bit immediate; signed byte offset for CALLR, raw high bits
        /// payload for LDHI.
        imm19: i32,
    },
    /// `cond, imm19` — the conditional PC-relative jump `JMPR`.
    LongCond {
        /// Jump condition.
        cond: Cond,
        /// Signed PC-relative byte offset.
        imm19: i32,
    },
}

/// A fully decoded RISC I instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Which of the 31 operations this is.
    pub opcode: Opcode,
    /// Whether the instruction updates the condition flags.
    pub scc: bool,
    /// The operands, in the shape appropriate for `opcode`.
    pub operands: Operands,
}

impl Instruction {
    /// A plain three-operand instruction (`dest := rs1 op s2`), not setting
    /// condition codes. Also used for loads/stores and window ops.
    ///
    /// ```
    /// use risc1_isa::{Instruction, Opcode, Reg, Short2};
    /// let i = Instruction::reg(Opcode::Sub, Reg::R1, Reg::R2, Short2::reg(Reg::R3));
    /// assert_eq!(i.to_string(), "sub r1, r2, r3");
    /// ```
    pub fn reg(opcode: Opcode, dest: Reg, rs1: Reg, s2: Short2) -> Instruction {
        debug_assert_eq!(opcode.format(), Format::Short);
        debug_assert!(!opcode.uses_condition());
        Instruction {
            opcode,
            scc: false,
            operands: Operands::Short { dest, rs1, s2 },
        }
    }

    /// Like [`Instruction::reg`] but with the `scc` (set condition codes)
    /// bit asserted.
    pub fn reg_scc(opcode: Opcode, dest: Reg, rs1: Reg, s2: Short2) -> Instruction {
        Instruction {
            scc: true,
            ..Instruction::reg(opcode, dest, rs1, s2)
        }
    }

    /// The conditional indexed jump `jmp cond, rs1, s2`.
    pub fn jmp(cond: Cond, rs1: Reg, s2: Short2) -> Instruction {
        Instruction {
            opcode: Opcode::Jmp,
            scc: false,
            operands: Operands::ShortCond { cond, rs1, s2 },
        }
    }

    /// The conditional PC-relative jump `jmpr cond, #offset` (byte offset
    /// from the jump's own address).
    pub fn jmpr(cond: Cond, offset: i32) -> Instruction {
        debug_assert!((IMM19_MIN..=IMM19_MAX).contains(&offset));
        Instruction {
            opcode: Opcode::Jmpr,
            scc: false,
            operands: Operands::LongCond {
                cond,
                imm19: offset,
            },
        }
    }

    /// `call link, rs1, s2`: save PC in `link` (a register of the *new*
    /// window), advance the window, jump to `rs1 + s2`.
    pub fn call(link: Reg, rs1: Reg, s2: Short2) -> Instruction {
        Instruction::reg(Opcode::Call, link, rs1, s2)
    }

    /// `callr link, #offset`: PC-relative call.
    pub fn callr(link: Reg, offset: i32) -> Instruction {
        debug_assert!((IMM19_MIN..=IMM19_MAX).contains(&offset));
        Instruction {
            opcode: Opcode::Callr,
            scc: false,
            operands: Operands::Long {
                dest: link,
                imm19: offset,
            },
        }
    }

    /// `ret rs1, s2`: jump to `rs1 + s2` and move back to the previous
    /// window.
    pub fn ret(rs1: Reg, s2: Short2) -> Instruction {
        Instruction::reg(Opcode::Ret, Reg::R0, rs1, s2)
    }

    /// `reti rs1, s2`: like [`Instruction::ret`], but also re-enables
    /// interrupts — the return path of interrupt and trap handlers.
    pub fn reti(rs1: Reg, s2: Short2) -> Instruction {
        Instruction::reg(Opcode::Reti, Reg::R0, rs1, s2)
    }

    /// `ldhi dest, #imm19`: set the high 19 bits of `dest`, clear the rest.
    pub fn ldhi(dest: Reg, imm19: u32) -> Instruction {
        debug_assert!(imm19 < (1 << 19));
        Instruction {
            opcode: Opcode::Ldhi,
            scc: false,
            operands: Operands::Long {
                dest,
                imm19: imm19 as i32,
            },
        }
    }

    /// Emits the shortest sequence that materialises an arbitrary 32-bit
    /// constant in `dest`: one `add dest, r0, #v` when `v` fits the signed
    /// 13-bit immediate, otherwise `ldhi` followed by an `add` whose
    /// sign-extended immediate is compensated in the high part.
    ///
    /// ```
    /// use risc1_isa::{Instruction, Reg};
    /// assert_eq!(Instruction::load_constant(Reg::R5, 7).len(), 1);
    /// assert_eq!(Instruction::load_constant(Reg::R5, 0xdead_beef).len(), 2);
    /// ```
    pub fn load_constant(dest: Reg, value: u32) -> Vec<Instruction> {
        if let Some(s2) = Short2::imm(value as i32) {
            return vec![Instruction::reg(Opcode::Add, dest, Reg::R0, s2)];
        }
        let lo = value & 0x1fff;
        let se_lo = ((lo as i32) << 19) >> 19; // sign-extended low 13 bits
        let hi = value.wrapping_sub(se_lo as u32) >> 13;
        vec![
            Instruction::ldhi(dest, hi & 0x7ffff),
            Instruction::reg(Opcode::Add, dest, dest, Short2::imm(se_lo).unwrap()),
        ]
    }

    /// A canonical no-op (`add r0, r0, #0`): writing r0 is discarded.
    pub fn nop() -> Instruction {
        Instruction::reg(Opcode::Add, Reg::R0, Reg::R0, Short2::ZERO)
    }

    /// Whether the instruction is a no-op by the canonical encoding.
    pub fn is_nop(&self) -> bool {
        *self == Instruction::nop()
    }

    /// The registers this instruction *reads* when executed, in the current
    /// window's name space. Used by the pipeline hazard model and the
    /// delay-slot filler. Derived from the spec table's operand roles.
    pub fn reads(&self) -> Vec<Reg> {
        crate::spec::reg_reads(self)
    }

    /// The register this instruction *writes*, if any (r0 writes are
    /// discarded and reported as `None`). Derived from the spec table's
    /// `dest` role.
    pub fn writes(&self) -> Option<Reg> {
        crate::spec::reg_write(self)
    }

    /// Whether executing the instruction may change the condition flags:
    /// any instruction with the `scc` bit set, plus `PUTPSW`, which rewrites
    /// the whole status word. Derived from the spec table's flag defs.
    pub fn sets_cc(&self) -> bool {
        crate::spec::sets_condition_codes(self)
    }

    /// Whether the instruction's result depends on the condition flags (or
    /// the PSW containing them): the carry-chained ALU ops, `GETPSW`, and
    /// any conditional transfer whose condition actually tests flags
    /// (`alw`/`nvr` do not). Derived from the spec table's flag uses.
    pub fn reads_cc(&self) -> bool {
        crate::spec::reads_condition_codes(self)
    }

    /// The condition tested by a `JMP`/`JMPR`, `None` for everything else.
    pub fn jump_cond(&self) -> Option<Cond> {
        match self.operands {
            Operands::ShortCond { cond, .. } | Operands::LongCond { cond, .. }
                if self.opcode.uses_condition() =>
            {
                Some(cond)
            }
            _ => None,
        }
    }

    /// The link register a call saves its return address into, `None` for
    /// non-calls (and for a discarded r0 link).
    pub fn link_reg(&self) -> Option<Reg> {
        self.opcode.is_call().then(|| self.writes()).flatten()
    }

    /// Whether `self` can sit in the delay slot of `transfer` without
    /// changing program meaning. This single predicate is shared by the
    /// delay-slot filler (may it hoist the predecessor into the slot?) and
    /// the linter (is an already-placed slot instruction hazard-free?):
    ///
    /// * a transfer in a transfer's shadow is a hardware fault;
    /// * a flag-setter is unsafe when the transfer's condition reads flags —
    ///   hoisting would make the jump test stale flags, and even in placed
    ///   code an interrupt restart via `GTLPC` re-executes the jump *after*
    ///   the slot ran;
    /// * writing a register the transfer reads (`jmp rs1` / `ret rs1`) is
    ///   unsafe for the same restart reason;
    /// * when the transfer moves the register window, the slot executes in
    ///   the *new* window, so only instructions confined to the shared
    ///   global registers mean the same thing on both sides of the move.
    ///
    /// Every fact consulted (transfer class, flag def/use, register def/use,
    /// window motion) comes from the spec table.
    pub fn safe_in_delay_slot_of(&self, transfer: &Instruction) -> bool {
        crate::spec::safe_in_delay_slot(self, transfer)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        // Print the canonical assembler operand shape for each opcode so
        // that disassembly reassembles to the same words.
        match self.operands {
            Operands::Short { dest, rs1, s2 } => match self.opcode {
                Opcode::Ret | Opcode::Reti | Opcode::Putpsw => write!(f, " {rs1}, {s2}")?,
                Opcode::Calli | Opcode::Gtlpc | Opcode::Getpsw => write!(f, " {dest}")?,
                _ => write!(f, " {dest}, {rs1}, {s2}")?,
            },
            Operands::ShortCond { cond, rs1, s2 } => write!(f, " {cond}, {rs1}, {s2}")?,
            Operands::Long { dest, imm19 } => write!(f, " {dest}, #{imm19}")?,
            Operands::LongCond { cond, imm19 } => write!(f, " {cond}, #{imm19}")?,
        }
        if self.scc {
            write!(f, " {{scc}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imm13_bounds() {
        assert!(Short2::imm(IMM13_MAX).is_some());
        assert!(Short2::imm(IMM13_MIN).is_some());
        assert!(Short2::imm(IMM13_MAX + 1).is_none());
        assert!(Short2::imm(IMM13_MIN - 1).is_none());
    }

    #[test]
    fn display_formats() {
        let add = Instruction::reg_scc(Opcode::Add, Reg::R1, Reg::R2, Short2::imm(-7).unwrap());
        assert_eq!(add.to_string(), "add r1, r2, #-7 {scc}");
        let j = Instruction::jmpr(Cond::Lt, -16);
        assert_eq!(j.to_string(), "jmpr lt, #-16");
        let l = Instruction::ldhi(Reg::R4, 0x7ffff);
        assert_eq!(l.to_string(), "ldhi r4, #524287");
    }

    #[test]
    fn nop_roundtrip() {
        assert!(Instruction::nop().is_nop());
        assert!(!Instruction::reg(Opcode::Add, Reg::R1, Reg::R0, Short2::ZERO).is_nop());
    }

    #[test]
    fn reads_and_writes() {
        let add = Instruction::reg(Opcode::Add, Reg::R1, Reg::R2, Short2::reg(Reg::R3));
        assert_eq!(add.reads(), vec![Reg::R2, Reg::R3]);
        assert_eq!(add.writes(), Some(Reg::R1));

        // r0 never appears as a dependency.
        let z = Instruction::reg(Opcode::Add, Reg::R0, Reg::R0, Short2::ZERO);
        assert!(z.reads().is_empty());
        assert_eq!(z.writes(), None);

        // Stores read their data register and write nothing.
        let st = Instruction::reg(Opcode::Stl, Reg::R5, Reg::R26, Short2::imm(4).unwrap());
        assert_eq!(st.reads(), vec![Reg::R26, Reg::R5]);
        assert_eq!(st.writes(), None);

        // Conditional jumps write nothing.
        let j = Instruction::jmp(Cond::Eq, Reg::R7, Short2::ZERO);
        assert_eq!(j.reads(), vec![Reg::R7]);
        assert_eq!(j.writes(), None);
    }

    #[test]
    fn ret_uses_rs1() {
        let r = Instruction::ret(Reg::R25, Short2::imm(8).unwrap());
        assert_eq!(r.reads(), vec![Reg::R25]);
        assert_eq!(r.writes(), None);
    }

    #[test]
    fn condition_code_def_use() {
        let plain = Instruction::reg(Opcode::Add, Reg::R1, Reg::R2, Short2::ZERO);
        assert!(!plain.sets_cc() && !plain.reads_cc());
        let scc = Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R1, Short2::ZERO);
        assert!(scc.sets_cc());
        let carry = Instruction::reg(Opcode::Addc, Reg::R1, Reg::R2, Short2::ZERO);
        assert!(carry.reads_cc());

        assert!(Instruction::jmpr(Cond::Eq, 8).reads_cc());
        assert!(!Instruction::jmpr(Cond::Alw, 8).reads_cc());
        assert!(!Instruction::jmpr(Cond::Nvr, 8).reads_cc());
        assert_eq!(Instruction::jmpr(Cond::Lt, 8).jump_cond(), Some(Cond::Lt));
        assert_eq!(plain.jump_cond(), None);
    }

    #[test]
    fn link_registers() {
        assert_eq!(Instruction::callr(Reg::R25, 8).link_reg(), Some(Reg::R25));
        assert_eq!(
            Instruction::call(Reg::R25, Reg::R2, Short2::ZERO).link_reg(),
            Some(Reg::R25)
        );
        assert_eq!(Instruction::callr(Reg::R0, 8).link_reg(), None);
        assert_eq!(Instruction::jmpr(Cond::Alw, 8).link_reg(), None);
    }

    #[test]
    fn delay_slot_safety() {
        let j_alw = Instruction::jmpr(Cond::Alw, 8);
        let j_eq = Instruction::jmpr(Cond::Eq, 8);
        let j_reg = Instruction::jmp(Cond::Alw, Reg::R5, Short2::ZERO);
        let ret = Instruction::ret(Reg::R25, Short2::imm(8).unwrap());

        let nop = Instruction::nop();
        assert!(nop.safe_in_delay_slot_of(&ret), "nop is safe anywhere");

        let add = Instruction::reg(Opcode::Add, Reg::R16, Reg::R16, Short2::ZERO);
        assert!(add.safe_in_delay_slot_of(&j_alw));
        assert!(add.safe_in_delay_slot_of(&j_eq));
        assert!(
            !add.safe_in_delay_slot_of(&ret),
            "window-relative write in a window-moving slot"
        );

        let global = Instruction::reg(Opcode::Add, Reg::R2, Reg::R3, Short2::ZERO);
        assert!(
            global.safe_in_delay_slot_of(&ret),
            "globals name the same state in both windows"
        );

        let scc = Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R16, Short2::ZERO);
        assert!(!scc.safe_in_delay_slot_of(&j_eq), "condition reads flags");
        assert!(scc.safe_in_delay_slot_of(&j_alw), "alw ignores flags");

        let clobber = Instruction::reg(Opcode::Add, Reg::R5, Reg::R0, Short2::ZERO);
        assert!(
            !clobber.safe_in_delay_slot_of(&j_reg),
            "writes the jump's base register"
        );

        assert!(
            !j_alw.safe_in_delay_slot_of(&j_eq),
            "transfer in a delay slot faults"
        );
    }

    #[test]
    fn delay_slot_metadata() {
        assert!(Opcode::Jmpr.has_delay_slot());
        assert!(Opcode::Ret.has_delay_slot());
        assert!(!Opcode::Calli.has_delay_slot(), "calli falls through");
        assert!(!Opcode::Add.has_delay_slot());
        assert!(Opcode::Calli.is_call() && Opcode::Callr.is_call());
        assert!(Opcode::Ret.is_ret() && Opcode::Reti.is_ret());
        assert!(!Opcode::Jmp.is_call() && !Opcode::Jmp.is_ret());
    }
}
