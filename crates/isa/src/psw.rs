//! The processor status word.
//!
//! The PSW packs the four ALU condition flags, the interrupt-enable bit and
//! the two window pointers (current and saved) into one 32-bit word so that
//! `GETPSW`/`PUTPSW` can move the whole processor state through a register —
//! that is how the trap handlers for window overflow context-switch the
//! machine.

use std::fmt;

/// The four ALU condition flags.
///
/// `Flags` is deliberately a plain "C-spirit" struct with public fields: it
/// carries no invariant beyond its field types and is pervasively constructed
/// by the executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Zero: the last flag-setting result was 0.
    pub z: bool,
    /// Negative: bit 31 of the result.
    pub n: bool,
    /// Overflow: signed overflow of the last add/subtract.
    pub v: bool,
    /// Carry: carry out of the adder (for subtraction, C = no borrow).
    pub c: bool,
}

/// The processor status word.
///
/// Bit layout (low to high):
///
/// | bits  | field |
/// |-------|-------|
/// | 0     | Z |
/// | 1     | N |
/// | 2     | V |
/// | 3     | C |
/// | 4     | I (interrupts enabled) |
/// | 5–9   | CWP (current window pointer) |
/// | 10–14 | SWP (saved window pointer) |
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Psw {
    /// Condition flags.
    pub flags: Flags,
    /// Interrupts enabled.
    pub interrupts_enabled: bool,
    /// Current window pointer (which window the visible registers map to).
    pub cwp: u8,
    /// Saved window pointer (boundary of the windows resident in the file).
    pub swp: u8,
}

impl Psw {
    /// Packs the PSW into its 32-bit register representation.
    pub fn to_word(self) -> u32 {
        (self.flags.z as u32)
            | (self.flags.n as u32) << 1
            | (self.flags.v as u32) << 2
            | (self.flags.c as u32) << 3
            | (self.interrupts_enabled as u32) << 4
            | ((self.cwp as u32) & 0x1f) << 5
            | ((self.swp as u32) & 0x1f) << 10
    }

    /// Unpacks a PSW from its 32-bit register representation. Bits above 14
    /// are ignored, as in the hardware.
    pub fn from_word(w: u32) -> Psw {
        Psw {
            flags: Flags {
                z: w & 1 != 0,
                n: w >> 1 & 1 != 0,
                v: w >> 2 & 1 != 0,
                c: w >> 3 & 1 != 0,
            },
            interrupts_enabled: w >> 4 & 1 != 0,
            cwp: (w >> 5 & 0x1f) as u8,
            swp: (w >> 10 & 0x1f) as u8,
        }
    }
}

impl fmt::Display for Psw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}{} cwp={} swp={}]",
            if self.flags.z { 'Z' } else { '-' },
            if self.flags.n { 'N' } else { '-' },
            if self.flags.v { 'V' } else { '-' },
            if self.flags.c { 'C' } else { '-' },
            if self.interrupts_enabled { 'I' } else { '-' },
            self.cwp,
            self.swp,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_exhaustive_over_fields() {
        for bits in 0..32u32 {
            for cwp in [0u8, 1, 7, 15, 31] {
                for swp in [0u8, 3, 31] {
                    let psw = Psw {
                        flags: Flags {
                            z: bits & 1 != 0,
                            n: bits & 2 != 0,
                            v: bits & 4 != 0,
                            c: bits & 8 != 0,
                        },
                        interrupts_enabled: bits & 16 != 0,
                        cwp,
                        swp,
                    };
                    assert_eq!(Psw::from_word(psw.to_word()), psw);
                }
            }
        }
    }

    #[test]
    fn high_bits_ignored() {
        assert_eq!(Psw::from_word(0xffff_8000), Psw::from_word(0));
    }

    #[test]
    fn display_shows_set_flags() {
        let psw = Psw {
            flags: Flags {
                z: true,
                n: false,
                v: false,
                c: true,
            },
            interrupts_enabled: true,
            cwp: 2,
            swp: 5,
        };
        assert_eq!(psw.to_string(), "[Z--CI cwp=2 swp=5]");
    }
}
