//! The crash-safe write-ahead job log.
//!
//! Every admitted job appends one `admit` record (its id, client, weight,
//! and full [`JobSpec`]) before the submit response is sent; every
//! completion appends one `done` record (the id, the result digest, and
//! the exact wire rendering of the result). Records are newline-delimited
//! JSON in the repo's own dependency-free dialect:
//!
//! ```text
//! {"wal":"admit","id":3,"client":"a","weight":1,"spec":{…}}
//! {"wal":"done","id":3,"digest":"91f0…","result":"{\"kind\":…}"}
//! ```
//!
//! The `done` record stores the serialized result as a *string value*, so
//! replay recovers the original response bytes exactly (JSON string
//! escaping round-trips byte for byte) — a client that polls a pre-crash
//! id after a restart reads an identical response.
//!
//! Replay ([`replay_wal`]) is tolerant of a torn tail: a `kill -9` can
//! leave the final line half-written, and any line that does not parse is
//! skipped and counted rather than aborting recovery. An admit without a
//! matching done re-enqueues; the job's `(program, config, seed)` key
//! makes the re-execution idempotent, so an interrupted campaign loses
//! nothing. The log is append-only and never compacted — bounded by the
//! lifetime of a serve process, not by job count, which keeps the failure
//! domain trivial.

use crate::job::{JobOutput, JobSpec};
use crate::wire::{output_json, parse_spec, write_spec};
use risc1_core::json::{get, Json, Parser, Writer};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write as _};
use std::path::Path;

/// File name of the log inside the WAL directory.
pub const WAL_FILE: &str = "serve.wal";

/// The append half: owned by the service, written under its state lock so
/// the log order matches the admission order.
pub struct WalWriter {
    file: File,
}

impl WalWriter {
    /// Opens (creating if needed) the log in `dir` for appending.
    ///
    /// # Errors
    /// Propagates filesystem errors creating the directory or the file.
    pub fn open(dir: &Path) -> std::io::Result<WalWriter> {
        std::fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(WAL_FILE))?;
        Ok(WalWriter { file })
    }

    /// Logs one admitted job before its ticket is issued.
    ///
    /// # Errors
    /// Propagates the write failure; the caller decides whether admission
    /// proceeds.
    pub fn append_admit(
        &mut self,
        id: u64,
        client: &str,
        weight: u32,
        spec: &JobSpec,
    ) -> std::io::Result<()> {
        let mut w = Writer::new();
        w.obj_open();
        w.key("wal");
        w.str("admit");
        w.key("id");
        w.num(i128::from(id));
        w.key("client");
        w.str(client);
        w.key("weight");
        w.num(i128::from(weight));
        w.key("spec");
        write_spec(&mut w, spec);
        w.obj_close();
        self.append_line(&w.finish())
    }

    /// Logs one completed job's digest and wire rendering.
    ///
    /// # Errors
    /// Propagates the write failure.
    pub fn append_done(&mut self, id: u64, out: &JobOutput) -> std::io::Result<()> {
        let mut w = Writer::new();
        w.obj_open();
        w.key("wal");
        w.str("done");
        w.key("id");
        w.num(i128::from(id));
        w.key("digest");
        w.str(&format!("{:016x}", out.digest()));
        w.key("result");
        w.str(&output_json(out));
        w.obj_close();
        self.append_line(&w.finish())
    }

    fn append_line(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }
}

/// One replayed record.
#[derive(Debug)]
pub enum WalRecord {
    /// A job the pre-crash service had admitted.
    Admit {
        /// The id the pre-crash service issued (preserved across the
        /// restart, so clients can keep polling it).
        id: u64,
        /// Fair-share queue identity.
        client: String,
        /// Fair-share weight at admission.
        weight: u32,
        /// The full job spec (boxed: a spec is two orders of magnitude
        /// larger than a done record).
        spec: Box<JobSpec>,
    },
    /// A job the pre-crash service had completed.
    Done {
        /// The completed job's id.
        id: u64,
        /// The result digest at completion.
        digest: u64,
        /// The result's original wire rendering, byte for byte.
        result: String,
    },
}

/// What [`replay_wal`] saw, for the status/smoke counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalScan {
    /// Well-formed records replayed.
    pub records: usize,
    /// Lines skipped because they did not parse — a torn tail from a hard
    /// kill, or garbage.
    pub torn: usize,
}

/// Reads the log in `dir`, returning every well-formed record in append
/// order. A missing log is an empty replay, not an error.
///
/// # Errors
/// Propagates filesystem read errors (not parse failures — those are
/// counted in [`WalScan::torn`]).
pub fn replay_wal(dir: &Path) -> std::io::Result<(Vec<WalRecord>, WalScan)> {
    let path = dir.join(WAL_FILE);
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), WalScan::default()))
        }
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut scan = WalScan::default();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(&line) {
            Some(rec) => {
                records.push(rec);
                scan.records += 1;
            }
            None => scan.torn += 1,
        }
    }
    Ok((records, scan))
}

fn parse_record(line: &str) -> Option<WalRecord> {
    let doc = Parser::new(line).parse_document().ok()?;
    let obj = doc.as_obj("wal record").ok()?;
    match get(obj, "wal").ok()?.as_str("wal").ok()? {
        "admit" => Some(WalRecord::Admit {
            id: get(obj, "id").ok()?.as_u64("id").ok()?,
            client: get(obj, "client").ok()?.as_str("client").ok()?.to_owned(),
            weight: get(obj, "weight").ok()?.as_u32("weight").ok()?,
            spec: Box::new(parse_spec(get(obj, "spec").ok()?).ok()?),
        }),
        "done" => {
            let digest = get(obj, "digest").ok()?.as_str("digest").ok()?;
            Some(WalRecord::Done {
                id: get(obj, "id").ok()?.as_u64("id").ok()?,
                digest: u64::from_str_radix(digest, 16).ok()?,
                result: match get(obj, "result").ok()? {
                    Json::Str(s) => s.clone(),
                    _ => return None,
                },
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobMode;
    use risc1_core::{Program, SimConfig};

    fn spec() -> JobSpec {
        JobSpec {
            program: Program {
                words: vec![1, 2],
                entry_offset: 0,
                data: vec![],
                symbols: Default::default(),
            },
            args: vec![5],
            cfg: SimConfig::default(),
            inject: None,
            recovery: false,
            mode: JobMode::Direct,
            timeout_ms: None,
            snapshot: None,
            journal: false,
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("risc1_wal_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn admit_and_done_round_trip_and_tolerate_a_torn_tail() {
        let dir = temp_dir("roundtrip");
        let out = JobOutput::SetupFailed {
            message: "too big".to_owned(),
        };
        {
            let mut w = WalWriter::open(&dir).unwrap();
            w.append_admit(3, "alice", 2, &spec()).unwrap();
            w.append_done(3, &out).unwrap();
        }
        // Simulate a kill -9 mid-append: a half-written final record.
        let path = dir.join(WAL_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"wal\":\"admit\",\"id\":4,\"client\":\"bo");
        std::fs::write(&path, text).unwrap();

        let (records, scan) = replay_wal(&dir).unwrap();
        assert_eq!(
            scan,
            WalScan {
                records: 2,
                torn: 1
            }
        );
        match &records[0] {
            WalRecord::Admit {
                id,
                client,
                weight,
                spec: s,
            } => {
                assert_eq!((*id, client.as_str(), *weight), (3, "alice", 2));
                assert_eq!(s.key(), spec().key());
            }
            other => panic!("wrong record: {other:?}"),
        }
        match &records[1] {
            WalRecord::Done { id, digest, result } => {
                assert_eq!(*id, 3);
                assert_eq!(*digest, out.digest());
                assert_eq!(result, &output_json(&out), "result bytes survive");
            }
            other => panic!("wrong record: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_log_replays_empty() {
        let dir = temp_dir("missing");
        let (records, scan) = replay_wal(&dir).unwrap();
        assert!(records.is_empty());
        assert_eq!(scan, WalScan::default());
    }
}
