//! The JSON wire protocol: newline-delimited request/response objects.
//!
//! Requests (one object per line):
//!
//! ```text
//! {"op":"submit","client":"a","weight":2,"seeds":[0,1,2],
//!  "program":{"words":[…],"entry_offset":0,"data":[{"addr":N,"bytes":[…]}]},
//!  "args":[9],"cfg":{…},                      // cfg optional (defaults)
//!  "inject":true,"rate":120,"modes":"all",    // campaign parameters
//!  "recovery":true,"mode":"direct",           // or "supervised"
//!  "timeout_ms":5000}                         // optional watchdog
//! {"op":"poll","id":7,"wait_ms":200}          // wait_ms optional
//! {"op":"status"}
//! {"op":"shutdown"}
//! ```
//!
//! Every response carries `"ok"`; failures are structured, e.g. an
//! overloaded queue answers
//! `{"ok":false,"error":"overloaded","depth":64,"capacity":64,…}` — load
//! shedding is a first-class reply, never a dropped connection. Finished
//! jobs report a 64-bit FNV `digest` of (outcome signature, instructions,
//! trap counts, event log) so clients can verify bit-identity against a
//! local run without shipping the full report.
//!
//! The config object reuses the journal format's
//! [`write_config`]/[`read_config`], so a journal's `cfg` block pastes
//! directly into a submit request.

use crate::job::{JobMode, JobOutput, JobSpec};
use crate::queue::Overloaded;
use crate::service::{PollState, StatusReport, SubmitError, SubmitTicket};
use risc1_core::inject::InjectModes;
use risc1_core::journal::{read_config, write_config};
use risc1_core::json::{get, get_opt, Json, JsonError, Parser, Writer};
use risc1_core::{InjectConfig, Program, SimConfig, TrapKind};
use risc1_ir::{outcome_signature, InjectOutcome, SupervisorOutcome};

/// Most seeds one submit may carry: bounds parse-time allocation before
/// admission control can see the request at all.
pub const MAX_SEEDS_PER_SUBMIT: usize = 4096;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run a campaign: one [`JobSpec`] per requested seed.
    Submit {
        /// Client name (fair-share queue identity).
        client: String,
        /// Fair-share weight (≥ 1).
        weight: u32,
        /// One spec per seed, in request order.
        specs: Vec<JobSpec>,
    },
    /// Ask where a job is.
    Poll {
        /// The job id from a submit ticket.
        id: u64,
        /// Block this long for completion (0/absent = non-blocking).
        wait_ms: Option<u64>,
    },
    /// Ask for queue depths and counters.
    Status,
    /// Stop the server after answering.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
/// [`JsonError`] on malformed JSON or a request that does not match the
/// schema above.
pub fn parse_request(line: &str) -> Result<Request, JsonError> {
    let doc = Parser::new(line).parse_document()?;
    let obj = doc.as_obj("request")?;
    match get(obj, "op")?.as_str("op")? {
        "submit" => parse_submit(obj),
        "poll" => Ok(Request::Poll {
            id: get(obj, "id")?.as_u64("id")?,
            wait_ms: match get_opt(obj, "wait_ms") {
                None => None,
                Some(v) => Some(v.as_u64("wait_ms")?),
            },
        }),
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(JsonError::schema(&format!("unknown op {other:?}"))),
    }
}

fn parse_submit(obj: &[(String, Json)]) -> Result<Request, JsonError> {
    let client = get(obj, "client")?.as_str("client")?.to_owned();
    let weight = match get_opt(obj, "weight") {
        None => 1,
        Some(v) => v.as_u32("weight")?.max(1),
    };
    let program = parse_program(get(obj, "program")?)?;
    let args = get(obj, "args")?
        .as_arr("args")?
        .iter()
        .map(|v| v.as_i32("args[..]"))
        .collect::<Result<Vec<i32>, _>>()?;
    let cfg = match get_opt(obj, "cfg") {
        None => SimConfig::default(),
        Some(v) => read_config(v.as_obj("cfg")?)?,
    };
    let seeds = get(obj, "seeds")?
        .as_arr("seeds")?
        .iter()
        .map(|v| v.as_u64("seeds[..]"))
        .collect::<Result<Vec<u64>, _>>()?;
    if seeds.is_empty() {
        return Err(JsonError::schema("seeds: must not be empty"));
    }
    if seeds.len() > MAX_SEEDS_PER_SUBMIT {
        return Err(JsonError::schema(&format!(
            "seeds: at most {MAX_SEEDS_PER_SUBMIT} per submit"
        )));
    }
    let inject = match get_opt(obj, "inject") {
        None => true,
        Some(v) => v.as_bool("inject")?,
    };
    let rate = match get_opt(obj, "rate") {
        None => InjectConfig::with_seed(0).rate,
        Some(v) => v.as_u32("rate")?,
    };
    let modes = match get_opt(obj, "modes") {
        None => InjectModes::all(),
        Some(v) => match v.as_str("modes")? {
            "all" => InjectModes::all(),
            "transparent" => InjectModes::transparent(),
            "none" => InjectModes::none(),
            other => {
                return Err(JsonError::schema(&format!(
                    "modes: unknown set {other:?} (all | transparent | none)"
                )))
            }
        },
    };
    let recovery = match get_opt(obj, "recovery") {
        None => false,
        Some(v) => v.as_bool("recovery")?,
    };
    let mode = match get_opt(obj, "mode") {
        None => JobMode::Direct,
        Some(v) => match v.as_str("mode")? {
            "direct" => JobMode::Direct,
            "supervised" => {
                let dflt = risc1_ir::SupervisorConfig::default();
                JobMode::Supervised {
                    ckpt_every: match get_opt(obj, "ckpt_every") {
                        None => dflt.ckpt_every,
                        Some(v) => v.as_u64("ckpt_every")?,
                    },
                    max_retries: match get_opt(obj, "max_retries") {
                        None => dflt.max_retries,
                        Some(v) => v.as_u32("max_retries")?,
                    },
                }
            }
            other => {
                return Err(JsonError::schema(&format!(
                    "mode: unknown mode {other:?} (direct | supervised)"
                )))
            }
        },
    };
    let timeout_ms = match get_opt(obj, "timeout_ms") {
        None => None,
        Some(v) => Some(v.as_u64("timeout_ms")?),
    };
    let specs = seeds
        .into_iter()
        .map(|seed| JobSpec {
            program: program.clone(),
            args: args.clone(),
            cfg: cfg.clone(),
            inject: inject.then_some(InjectConfig { seed, rate, modes }),
            recovery,
            mode,
            timeout_ms,
        })
        .collect();
    Ok(Request::Submit {
        client,
        weight,
        specs,
    })
}

fn parse_program(v: &Json) -> Result<Program, JsonError> {
    let obj = v.as_obj("program")?;
    let words = get(obj, "words")?
        .as_arr("program.words")?
        .iter()
        .map(|w| w.as_u32("program.words[..]"))
        .collect::<Result<Vec<u32>, _>>()?;
    let entry_offset = get(obj, "entry_offset")?.as_u32("program.entry_offset")?;
    let data = match get_opt(obj, "data") {
        None => Vec::new(),
        Some(v) => v
            .as_arr("program.data")?
            .iter()
            .map(|d| {
                let d = d.as_obj("program.data[..]")?;
                let addr = get(d, "addr")?.as_u32("program.data[..].addr")?;
                let bytes = get(d, "bytes")?
                    .as_arr("program.data[..].bytes")?
                    .iter()
                    .map(|b| b.as_u8("program.data[..].bytes[..]"))
                    .collect::<Result<Vec<u8>, _>>()?;
                Ok((addr, bytes))
            })
            .collect::<Result<Vec<_>, JsonError>>()?,
    };
    Ok(Program {
        words,
        entry_offset,
        data,
        symbols: Default::default(),
    })
}

/// Serializes a program for a submit request (the client half; the CLI
/// smoke gate and tests use this to talk to a real server).
pub fn write_program(w: &mut Writer, prog: &Program) {
    w.obj_open();
    w.key("words");
    w.arr_open();
    for &word in &prog.words {
        w.num(i128::from(word));
    }
    w.arr_close();
    w.key("entry_offset");
    w.num(i128::from(prog.entry_offset));
    w.key("data");
    w.arr_open();
    for (addr, bytes) in &prog.data {
        w.obj_open();
        w.key("addr");
        w.num(i128::from(*addr));
        w.key("bytes");
        w.arr_open();
        for &b in bytes {
            w.num(i128::from(b));
        }
        w.arr_close();
        w.obj_close();
    }
    w.arr_close();
    w.obj_close();
}

/// Builds a complete submit request line (client-side convenience).
#[allow(clippy::too_many_arguments)]
pub fn submit_request(
    client: &str,
    weight: u32,
    prog: &Program,
    args: &[i32],
    cfg: &SimConfig,
    seeds: &[u64],
    inject: bool,
    rate: u32,
    modes: &str,
    recovery: bool,
    mode: &str,
    timeout_ms: Option<u64>,
) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("op");
    w.str("submit");
    w.key("client");
    w.str(client);
    w.key("weight");
    w.num(i128::from(weight));
    w.key("program");
    write_program(&mut w, prog);
    w.key("args");
    w.arr_open();
    for &a in args {
        w.num(i128::from(a));
    }
    w.arr_close();
    w.key("cfg");
    write_config(&mut w, cfg);
    w.key("seeds");
    w.arr_open();
    for &s in seeds {
        w.num(i128::from(s));
    }
    w.arr_close();
    w.key("inject");
    w.bool(inject);
    w.key("rate");
    w.num(i128::from(rate));
    w.key("modes");
    w.str(modes);
    w.key("recovery");
    w.bool(recovery);
    w.key("mode");
    w.str(mode);
    if let Some(ms) = timeout_ms {
        w.key("timeout_ms");
        w.num(i128::from(ms));
    }
    w.obj_close();
    w.finish()
}

/// The success response to a submit.
pub fn submit_response(tickets: &[SubmitTicket]) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("ok");
    w.bool(true);
    w.key("jobs");
    w.arr_open();
    for t in tickets {
        w.obj_open();
        w.key("seed");
        w.num(i128::from(t.seed));
        w.key("id");
        w.num(i128::from(t.id));
        w.key("dedup");
        w.bool(t.dedup);
        w.obj_close();
    }
    w.arr_close();
    w.obj_close();
    w.finish()
}

/// The structured failure response to a submit.
pub fn submit_error_response(err: &SubmitError) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("ok");
    w.bool(false);
    match err {
        SubmitError::Overloaded(Overloaded {
            client,
            depth,
            capacity,
            rejected,
        }) => {
            w.key("error");
            w.str("overloaded");
            w.key("client");
            w.str(client);
            w.key("depth");
            w.num(*depth as i128);
            w.key("capacity");
            w.num(*capacity as i128);
            w.key("rejected");
            w.num(*rejected as i128);
        }
        SubmitError::ShuttingDown => {
            w.key("error");
            w.str("shutting-down");
        }
    }
    w.obj_close();
    w.finish()
}

/// The response to a poll.
pub fn poll_response(state: Option<&PollState>, id: u64) -> String {
    let mut w = Writer::new();
    w.obj_open();
    match state {
        None => {
            w.key("ok");
            w.bool(false);
            w.key("error");
            w.str("unknown-job");
            w.key("id");
            w.num(i128::from(id));
        }
        Some(PollState::Queued) => {
            w.key("ok");
            w.bool(true);
            w.key("state");
            w.str("queued");
        }
        Some(PollState::Running) => {
            w.key("ok");
            w.bool(true);
            w.key("state");
            w.str("running");
        }
        Some(PollState::Done(out)) => {
            w.key("ok");
            w.bool(true);
            w.key("state");
            w.str("done");
            w.key("result");
            write_output(&mut w, out);
        }
    }
    w.obj_close();
    w.finish()
}

fn write_output(w: &mut Writer, out: &JobOutput) {
    w.obj_open();
    w.key("kind");
    w.str(out.kind());
    match out {
        JobOutput::Finished(r) => {
            w.key("signature");
            w.str(&outcome_signature(&r.outcome));
            w.key("result");
            match r.outcome {
                InjectOutcome::Halted { result } => w.num(i128::from(result)),
                InjectOutcome::Faulted { .. } => w.null(),
            }
            w.key("instructions");
            w.num(i128::from(r.stats.instructions));
            w.key("events");
            w.num(r.events.len() as i128);
        }
        JobOutput::Supervised(r) => {
            w.key("outcome");
            w.str(&match &r.outcome {
                SupervisorOutcome::Halted { result } => format!("halt {result}"),
                SupervisorOutcome::Faulted { error } => format!("fault: {error}"),
                SupervisorOutcome::WatchdogExpired => "watchdog".to_owned(),
                SupervisorOutcome::DeadlineExceeded => "deadline".to_owned(),
            });
            w.key("attempts");
            w.num(i128::from(r.attempts));
            w.key("rollbacks");
            w.num(i128::from(r.rollbacks));
            w.key("escalations");
            w.num(i128::from(r.escalations));
            w.key("instructions");
            w.num(i128::from(r.stats.instructions));
            w.key("events");
            w.num(r.events.len() as i128);
        }
        JobOutput::TimedOut { stats, events } => {
            w.key("instructions");
            w.num(i128::from(stats.instructions));
            w.key("events");
            w.num(events.len() as i128);
        }
        JobOutput::SetupFailed { message } => {
            w.key("message");
            w.str(message);
        }
        JobOutput::Panicked { message, artifact } => {
            w.key("message");
            w.str(message);
            w.key("artifact");
            match artifact {
                None => w.null(),
                Some(path) => w.str(path),
            }
        }
    }
    w.key("digest");
    w.str(&format!("{:016x}", out.digest()));
    w.obj_close();
}

/// The response to a status request.
pub fn status_response(status: &StatusReport) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("ok");
    w.bool(true);
    w.key("queues");
    w.arr_open();
    for q in &status.queues {
        w.obj_open();
        w.key("client");
        w.str(&q.client);
        w.key("weight");
        w.num(i128::from(q.weight));
        w.key("depth");
        w.num(q.depth as i128);
        w.obj_close();
    }
    w.arr_close();
    w.key("queued");
    w.num(status.queued as i128);
    w.key("running");
    w.num(status.running as i128);
    w.key("cached");
    w.num(status.cached as i128);
    w.key("counters");
    w.obj_open();
    let c = &status.counters;
    for (k, v) in [
        ("submitted", c.submitted),
        ("dedup_hits", c.dedup_hits),
        ("shed", c.shed),
        ("completed", c.completed),
        ("panics", c.panics),
        ("timeouts", c.timeouts),
        ("setup_failures", c.setup_failures),
        ("retries", c.retries),
        ("escalations", c.escalations),
    ] {
        w.key(k);
        w.num(i128::from(v));
    }
    w.obj_close();
    w.key("trap_totals");
    w.obj_open();
    for kind in TrapKind::ALL {
        w.key(&format!("{kind:?}"));
        w.num(i128::from(c.trap_totals[kind.index()]));
    }
    w.obj_close();
    w.obj_close();
    w.finish()
}

/// The acknowledgement sent before the server stops.
pub fn shutdown_response() -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("ok");
    w.bool(true);
    w.key("state");
    w.str("shutting-down");
    w.obj_close();
    w.finish()
}

/// A structured parse/schema failure reply.
pub fn bad_request(message: &str) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("ok");
    w.bool(false);
    w.key("error");
    w.str("bad-request");
    w.key("message");
    w.str(message);
    w.obj_close();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_request_round_trips() {
        let prog = Program {
            words: vec![10, 20],
            entry_offset: 4,
            data: vec![(64, vec![1, 2, 3])],
            symbols: Default::default(),
        };
        let line = submit_request(
            "alice",
            2,
            &prog,
            &[7, -3],
            &SimConfig::default(),
            &[0, 1, 5],
            true,
            120,
            "all",
            true,
            "direct",
            Some(500),
        );
        match parse_request(&line).unwrap() {
            Request::Submit {
                client,
                weight,
                specs,
            } => {
                assert_eq!(client, "alice");
                assert_eq!(weight, 2);
                assert_eq!(specs.len(), 3);
                assert_eq!(specs[2].inject.unwrap().seed, 5);
                assert_eq!(specs[0].inject.unwrap().rate, 120);
                assert_eq!(specs[0].args, vec![7, -3]);
                assert_eq!(specs[0].program.words, vec![10, 20]);
                assert_eq!(specs[0].program.data, vec![(64, vec![1, 2, 3])]);
                assert!(specs[0].recovery);
                assert_eq!(specs[0].timeout_ms, Some(500));
                assert_eq!(specs[0].mode, JobMode::Direct);
                assert_eq!(specs[0].cfg, SimConfig::default());
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_schema_errors() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"warp\"}").is_err());
        assert!(parse_request("{\"op\":\"poll\"}").is_err(), "missing id");
        // Empty seed lists are rejected before touching the queues.
        let line = "{\"op\":\"submit\",\"client\":\"c\",\"args\":[],\"seeds\":[],\
                    \"program\":{\"words\":[1],\"entry_offset\":0}}";
        assert!(parse_request(line).is_err());
    }

    #[test]
    fn poll_and_control_requests_parse() {
        match parse_request("{\"op\":\"poll\",\"id\":9,\"wait_ms\":50}").unwrap() {
            Request::Poll { id, wait_ms } => {
                assert_eq!(id, 9);
                assert_eq!(wait_ms, Some(50));
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            parse_request("{\"op\":\"status\"}").unwrap(),
            Request::Status
        ));
        assert!(matches!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        ));
    }
}
