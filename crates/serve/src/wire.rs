//! The JSON wire protocol: newline-delimited request/response objects.
//!
//! Requests (one object per line):
//!
//! ```text
//! {"op":"submit","client":"a","weight":2,"seeds":[0,1,2],
//!  "program":{"words":[…],"entry_offset":0,"data":[{"addr":N,"bytes":[…]}]},
//!  "args":[9],"cfg":{…},                      // cfg optional (defaults)
//!  "inject":true,"rate":120,"modes":"all",    // campaign parameters
//!  "recovery":true,"mode":"direct",           // or "supervised"
//!  "timeout_ms":5000}                         // optional watchdog
//! {"op":"poll","id":7,"wait_ms":200}          // wait_ms optional
//! {"op":"journal","id":7,"seq":0}             // stream a recorded journal
//! {"op":"status"}
//! {"op":"shutdown"}
//! ```
//!
//! A submit may also carry `"journal":true` (record a replay journal and
//! retain it for `journal` requests) or `"snapshot":{…}` (a warm-start
//! checkpoint in the [`Snapshot`] JSON format; the run resumes from it
//! instead of reset). Snapshots are untrusted wire input: they pass the
//! codec's admission limits at parse time, full checksum verification at
//! restore time, and every failure is a structured rejection.
//!
//! Journals stream in bounded, sequence-numbered chunks
//! ([`JOURNAL_CHUNK_BYTES`]); each request for chunk `seq` acknowledges
//! everything before it, so a slow client backpressures itself.
//!
//! Every response carries `"ok"`; failures are structured, e.g. an
//! overloaded queue answers
//! `{"ok":false,"error":"overloaded","depth":64,"capacity":64,…}` — load
//! shedding is a first-class reply, never a dropped connection. Finished
//! jobs report a 64-bit FNV `digest` of (outcome signature, instructions,
//! trap counts, event log) so clients can verify bit-identity against a
//! local run without shipping the full report.
//!
//! The config object reuses the journal format's
//! [`write_config`]/[`read_config`], so a journal's `cfg` block pastes
//! directly into a submit request.

use crate::job::{JobMode, JobOutput, JobSpec};
use crate::queue::Overloaded;
use crate::service::{PollState, StatusReport, SubmitError, SubmitTicket};
use risc1_core::inject::InjectModes;
use risc1_core::journal::{read_config, write_config};
use risc1_core::json::{get, get_opt, Json, JsonError, Parser, Writer};
use risc1_core::snapshot::Snapshot;
use risc1_core::{InjectConfig, Program, SimConfig, TrapKind};
use risc1_ir::{outcome_signature, InjectOutcome, SupervisorOutcome};

/// Most seeds one submit may carry: bounds parse-time allocation before
/// admission control can see the request at all.
pub const MAX_SEEDS_PER_SUBMIT: usize = 4096;

/// Bytes of journal text per streamed chunk. Small enough that one
/// response line stays far under the wire frame cap even after JSON
/// string escaping, large enough that a megabyte journal moves in a few
/// dozen round trips.
pub const JOURNAL_CHUNK_BYTES: usize = 32 * 1024;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run a campaign: one [`JobSpec`] per requested seed.
    Submit {
        /// Client name (fair-share queue identity).
        client: String,
        /// Fair-share weight (≥ 1).
        weight: u32,
        /// One spec per seed, in request order.
        specs: Vec<JobSpec>,
    },
    /// Ask where a job is.
    Poll {
        /// The job id from a submit ticket.
        id: u64,
        /// Block this long for completion (0/absent = non-blocking).
        wait_ms: Option<u64>,
    },
    /// Fetch one chunk of a recorded replay journal.
    Journal {
        /// The job id (must have been submitted with `"journal":true`).
        id: u64,
        /// Zero-based chunk index; requesting chunk `seq` acknowledges
        /// receipt of every chunk before it.
        seq: u64,
    },
    /// Ask for queue depths and counters.
    Status,
    /// Stop the server after answering.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
/// [`JsonError`] on malformed JSON or a request that does not match the
/// schema above.
pub fn parse_request(line: &str) -> Result<Request, JsonError> {
    let doc = Parser::new(line).parse_document()?;
    let obj = doc.as_obj("request")?;
    match get(obj, "op")?.as_str("op")? {
        "submit" => parse_submit(obj),
        "poll" => Ok(Request::Poll {
            id: get(obj, "id")?.as_u64("id")?,
            wait_ms: match get_opt(obj, "wait_ms") {
                None => None,
                Some(v) => Some(v.as_u64("wait_ms")?),
            },
        }),
        "journal" => Ok(Request::Journal {
            id: get(obj, "id")?.as_u64("id")?,
            seq: match get_opt(obj, "seq") {
                None => 0,
                Some(v) => v.as_u64("seq")?,
            },
        }),
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(JsonError::schema(&format!("unknown op {other:?}"))),
    }
}

fn parse_submit(obj: &[(String, Json)]) -> Result<Request, JsonError> {
    let client = get(obj, "client")?.as_str("client")?.to_owned();
    let weight = match get_opt(obj, "weight") {
        None => 1,
        Some(v) => v.as_u32("weight")?.max(1),
    };
    let program = parse_program(get(obj, "program")?)?;
    let args = get(obj, "args")?
        .as_arr("args")?
        .iter()
        .map(|v| v.as_i32("args[..]"))
        .collect::<Result<Vec<i32>, _>>()?;
    let cfg = match get_opt(obj, "cfg") {
        None => SimConfig::default(),
        Some(v) => read_config(v.as_obj("cfg")?)?,
    };
    let seeds = get(obj, "seeds")?
        .as_arr("seeds")?
        .iter()
        .map(|v| v.as_u64("seeds[..]"))
        .collect::<Result<Vec<u64>, _>>()?;
    if seeds.is_empty() {
        return Err(JsonError::schema("seeds: must not be empty"));
    }
    if seeds.len() > MAX_SEEDS_PER_SUBMIT {
        return Err(JsonError::schema(&format!(
            "seeds: at most {MAX_SEEDS_PER_SUBMIT} per submit"
        )));
    }
    let snapshot = match get_opt(obj, "snapshot") {
        None | Some(Json::Null) => None,
        Some(v) => Some(Box::new(Snapshot::from_json_value(v)?)),
    };
    // A submit is a campaign by default — unless it warm-starts from a
    // snapshot, which cannot replay an injector schedule keyed from reset.
    let inject = match get_opt(obj, "inject") {
        None => snapshot.is_none(),
        Some(v) => v.as_bool("inject")?,
    };
    let rate = match get_opt(obj, "rate") {
        None => InjectConfig::with_seed(0).rate,
        Some(v) => v.as_u32("rate")?,
    };
    let modes = match get_opt(obj, "modes") {
        None => InjectModes::all(),
        Some(v) => match v.as_str("modes")? {
            "all" => InjectModes::all(),
            "transparent" => InjectModes::transparent(),
            "none" => InjectModes::none(),
            other => {
                return Err(JsonError::schema(&format!(
                    "modes: unknown set {other:?} (all | transparent | none)"
                )))
            }
        },
    };
    let recovery = match get_opt(obj, "recovery") {
        None => false,
        Some(v) => v.as_bool("recovery")?,
    };
    let mode = match get_opt(obj, "mode") {
        None => JobMode::Direct,
        Some(v) => match v.as_str("mode")? {
            "direct" => JobMode::Direct,
            "supervised" => {
                let dflt = risc1_ir::SupervisorConfig::default();
                JobMode::Supervised {
                    ckpt_every: match get_opt(obj, "ckpt_every") {
                        None => dflt.ckpt_every,
                        Some(v) => v.as_u64("ckpt_every")?,
                    },
                    max_retries: match get_opt(obj, "max_retries") {
                        None => dflt.max_retries,
                        Some(v) => v.as_u32("max_retries")?,
                    },
                }
            }
            "sharded" => {
                let shard_cycles = match get_opt(obj, "shard_cycles") {
                    None => {
                        return Err(JsonError::schema(
                            "shard_cycles: required in sharded mode (instructions per shard)",
                        ))
                    }
                    Some(v) => v.as_u64("shard_cycles")?,
                };
                if shard_cycles == 0 {
                    return Err(JsonError::schema("shard_cycles: must be positive"));
                }
                JobMode::Sharded {
                    shard_cycles,
                    threads: match get_opt(obj, "threads") {
                        None => 0,
                        Some(v) => v.as_u32("threads")?,
                    },
                }
            }
            other => {
                return Err(JsonError::schema(&format!(
                    "mode: unknown mode {other:?} (direct | supervised | sharded)"
                )))
            }
        },
    };
    let timeout_ms = match get_opt(obj, "timeout_ms") {
        None => None,
        Some(v) => Some(v.as_u64("timeout_ms")?),
    };
    let journal = match get_opt(obj, "journal") {
        None => false,
        Some(v) => v.as_bool("journal")?,
    };
    if snapshot.is_some() {
        if inject {
            return Err(JsonError::schema(
                "snapshot: warm starts cannot be combined with injection \
                 (the injector's schedule is keyed by absolute step from reset)",
            ));
        }
        if !matches!(mode, JobMode::Direct) {
            return Err(JsonError::schema(
                "snapshot: warm starts run in direct mode only",
            ));
        }
        if journal {
            return Err(JsonError::schema(
                "snapshot: a resumed run cannot record a replay journal \
                 (journals replay from reset)",
            ));
        }
    }
    if journal && !matches!(mode, JobMode::Direct) {
        return Err(JsonError::schema(
            "journal: recording is supported in direct mode only",
        ));
    }
    if timeout_ms.is_some() && matches!(mode, JobMode::Sharded { .. }) {
        return Err(JsonError::schema(
            "timeout_ms: sharded mode has no wall-clock watchdog \
             (shard boundaries are instruction counts; fuel still bounds the run)",
        ));
    }
    let specs = seeds
        .into_iter()
        .map(|seed| JobSpec {
            program: program.clone(),
            args: args.clone(),
            cfg: cfg.clone(),
            inject: inject.then_some(InjectConfig { seed, rate, modes }),
            recovery,
            mode,
            timeout_ms,
            snapshot: snapshot.clone(),
            journal,
        })
        .collect();
    Ok(Request::Submit {
        client,
        weight,
        specs,
    })
}

fn parse_program(v: &Json) -> Result<Program, JsonError> {
    let obj = v.as_obj("program")?;
    let words = get(obj, "words")?
        .as_arr("program.words")?
        .iter()
        .map(|w| w.as_u32("program.words[..]"))
        .collect::<Result<Vec<u32>, _>>()?;
    let entry_offset = get(obj, "entry_offset")?.as_u32("program.entry_offset")?;
    let data = match get_opt(obj, "data") {
        None => Vec::new(),
        Some(v) => v
            .as_arr("program.data")?
            .iter()
            .map(|d| {
                let d = d.as_obj("program.data[..]")?;
                let addr = get(d, "addr")?.as_u32("program.data[..].addr")?;
                let bytes = get(d, "bytes")?
                    .as_arr("program.data[..].bytes")?
                    .iter()
                    .map(|b| b.as_u8("program.data[..].bytes[..]"))
                    .collect::<Result<Vec<u8>, _>>()?;
                Ok((addr, bytes))
            })
            .collect::<Result<Vec<_>, JsonError>>()?,
    };
    Ok(Program {
        words,
        entry_offset,
        data,
        symbols: Default::default(),
    })
}

/// Serializes a program for a submit request (the client half; the CLI
/// smoke gate and tests use this to talk to a real server).
pub fn write_program(w: &mut Writer, prog: &Program) {
    w.obj_open();
    w.key("words");
    w.arr_open();
    for &word in &prog.words {
        w.num(i128::from(word));
    }
    w.arr_close();
    w.key("entry_offset");
    w.num(i128::from(prog.entry_offset));
    w.key("data");
    w.arr_open();
    for (addr, bytes) in &prog.data {
        w.obj_open();
        w.key("addr");
        w.num(i128::from(*addr));
        w.key("bytes");
        w.arr_open();
        for &b in bytes {
            w.num(i128::from(b));
        }
        w.arr_close();
        w.obj_close();
    }
    w.arr_close();
    w.obj_close();
}

/// Builds a complete submit request line (client-side convenience).
#[allow(clippy::too_many_arguments)]
pub fn submit_request(
    client: &str,
    weight: u32,
    prog: &Program,
    args: &[i32],
    cfg: &SimConfig,
    seeds: &[u64],
    inject: bool,
    rate: u32,
    modes: &str,
    recovery: bool,
    mode: &str,
    timeout_ms: Option<u64>,
    journal: bool,
    snapshot: Option<&Snapshot>,
) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("op");
    w.str("submit");
    w.key("client");
    w.str(client);
    w.key("weight");
    w.num(i128::from(weight));
    w.key("program");
    write_program(&mut w, prog);
    w.key("args");
    w.arr_open();
    for &a in args {
        w.num(i128::from(a));
    }
    w.arr_close();
    w.key("cfg");
    write_config(&mut w, cfg);
    w.key("seeds");
    w.arr_open();
    for &s in seeds {
        w.num(i128::from(s));
    }
    w.arr_close();
    w.key("inject");
    w.bool(inject);
    w.key("rate");
    w.num(i128::from(rate));
    w.key("modes");
    w.str(modes);
    w.key("recovery");
    w.bool(recovery);
    w.key("mode");
    w.str(mode);
    if let Some(ms) = timeout_ms {
        w.key("timeout_ms");
        w.num(i128::from(ms));
    }
    if journal {
        w.key("journal");
        w.bool(true);
    }
    if let Some(snap) = snapshot {
        w.key("snapshot");
        snap.write_json(&mut w);
    }
    w.obj_close();
    w.finish()
}

/// Builds a sharded-mode submit request line (client-side convenience):
/// checkpoint-parallel execution cut every `shard_cycles` instructions on
/// `threads` workers (0 = the server's available parallelism).
#[allow(clippy::too_many_arguments)]
pub fn submit_request_sharded(
    client: &str,
    weight: u32,
    prog: &Program,
    args: &[i32],
    cfg: &SimConfig,
    seeds: &[u64],
    inject: bool,
    rate: u32,
    modes: &str,
    recovery: bool,
    shard_cycles: u64,
    threads: u32,
) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("op");
    w.str("submit");
    w.key("client");
    w.str(client);
    w.key("weight");
    w.num(i128::from(weight));
    w.key("program");
    write_program(&mut w, prog);
    w.key("args");
    w.arr_open();
    for &a in args {
        w.num(i128::from(a));
    }
    w.arr_close();
    w.key("cfg");
    write_config(&mut w, cfg);
    w.key("seeds");
    w.arr_open();
    for &s in seeds {
        w.num(i128::from(s));
    }
    w.arr_close();
    w.key("inject");
    w.bool(inject);
    w.key("rate");
    w.num(i128::from(rate));
    w.key("modes");
    w.str(modes);
    w.key("recovery");
    w.bool(recovery);
    w.key("mode");
    w.str("sharded");
    w.key("shard_cycles");
    w.num(i128::from(shard_cycles));
    w.key("threads");
    w.num(i128::from(threads));
    w.obj_close();
    w.finish()
}

/// Serializes a full [`JobSpec`] — the write-ahead log's admit-record
/// payload. Everything that determines the job's identity is here, so a
/// replayed spec produces the same [`JobKey`](crate::job::JobKey) and a
/// re-execution after a crash is idempotent.
pub fn write_spec(w: &mut Writer, spec: &JobSpec) {
    w.obj_open();
    w.key("program");
    write_program(w, &spec.program);
    w.key("args");
    w.arr_open();
    for &a in &spec.args {
        w.num(i128::from(a));
    }
    w.arr_close();
    w.key("cfg");
    write_config(w, &spec.cfg);
    w.key("inject");
    match spec.inject {
        None => w.null(),
        Some(i) => {
            w.obj_open();
            w.key("seed");
            w.num(i128::from(i.seed));
            w.key("rate");
            w.num(i128::from(i.rate));
            w.key("modes");
            w.arr_open();
            for on in [
                i.modes.bit_flips,
                i.modes.spurious_interrupts,
                i.modes.decode_probes,
                i.modes.misalign_probes,
                i.modes.fuel_jitter,
                i.modes.wstack_corruption,
            ] {
                w.bool(on);
            }
            w.arr_close();
            w.obj_close();
        }
    }
    w.key("recovery");
    w.bool(spec.recovery);
    w.key("mode");
    match spec.mode {
        JobMode::Direct => w.str("direct"),
        JobMode::Supervised {
            ckpt_every,
            max_retries,
        } => {
            w.obj_open();
            w.key("ckpt_every");
            w.num(i128::from(ckpt_every));
            w.key("max_retries");
            w.num(i128::from(max_retries));
            w.obj_close();
        }
        JobMode::Sharded {
            shard_cycles,
            threads,
        } => {
            w.obj_open();
            w.key("shard_cycles");
            w.num(i128::from(shard_cycles));
            w.key("threads");
            w.num(i128::from(threads));
            w.obj_close();
        }
    }
    w.key("timeout_ms");
    match spec.timeout_ms {
        None => w.null(),
        Some(ms) => w.num(i128::from(ms)),
    }
    w.key("journal");
    w.bool(spec.journal);
    w.key("snapshot");
    match &spec.snapshot {
        None => w.null(),
        Some(s) => s.write_json(w),
    }
    w.obj_close();
}

/// Parses a [`write_spec`] document back into a [`JobSpec`].
///
/// # Errors
/// [`JsonError`] on malformed JSON or a spec that does not match the
/// schema (including a snapshot failing its admission limits).
pub fn parse_spec(v: &Json) -> Result<JobSpec, JsonError> {
    let obj = v.as_obj("spec")?;
    let program = parse_program(get(obj, "program")?)?;
    let args = get(obj, "args")?
        .as_arr("spec.args")?
        .iter()
        .map(|a| a.as_i32("spec.args[..]"))
        .collect::<Result<Vec<i32>, _>>()?;
    let cfg = read_config(get(obj, "cfg")?.as_obj("spec.cfg")?)?;
    let inject = match get(obj, "inject")? {
        Json::Null => None,
        v => {
            let i = v.as_obj("spec.inject")?;
            let flags = get(i, "modes")?
                .as_arr("spec.inject.modes")?
                .iter()
                .map(|b| b.as_bool("spec.inject.modes[..]"))
                .collect::<Result<Vec<bool>, _>>()?;
            let [bit_flips, spurious_interrupts, decode_probes, misalign_probes, fuel_jitter, wstack_corruption] =
                flags[..]
            else {
                return Err(JsonError::schema("spec.inject.modes: expected 6 flags"));
            };
            Some(InjectConfig {
                seed: get(i, "seed")?.as_u64("spec.inject.seed")?,
                rate: get(i, "rate")?.as_u32("spec.inject.rate")?,
                modes: InjectModes {
                    bit_flips,
                    spurious_interrupts,
                    decode_probes,
                    misalign_probes,
                    fuel_jitter,
                    wstack_corruption,
                },
            })
        }
    };
    let recovery = get(obj, "recovery")?.as_bool("spec.recovery")?;
    let mode = match get(obj, "mode")? {
        Json::Str(s) if s == "direct" => JobMode::Direct,
        Json::Obj(m) if get_opt(m, "shard_cycles").is_some() => JobMode::Sharded {
            shard_cycles: get(m, "shard_cycles")?.as_u64("spec.mode.shard_cycles")?,
            threads: get(m, "threads")?.as_u32("spec.mode.threads")?,
        },
        Json::Obj(m) => JobMode::Supervised {
            ckpt_every: get(m, "ckpt_every")?.as_u64("spec.mode.ckpt_every")?,
            max_retries: get(m, "max_retries")?.as_u32("spec.mode.max_retries")?,
        },
        _ => return Err(JsonError::schema("spec.mode: expected \"direct\" or {…}")),
    };
    let timeout_ms = match get(obj, "timeout_ms")? {
        Json::Null => None,
        v => Some(v.as_u64("spec.timeout_ms")?),
    };
    let journal = get(obj, "journal")?.as_bool("spec.journal")?;
    let snapshot = match get(obj, "snapshot")? {
        Json::Null => None,
        v => Some(Box::new(Snapshot::from_json_value(v)?)),
    };
    Ok(JobSpec {
        program,
        args,
        cfg,
        inject,
        recovery,
        mode,
        timeout_ms,
        snapshot,
        journal,
    })
}

/// The success response to a submit.
pub fn submit_response(tickets: &[SubmitTicket]) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("ok");
    w.bool(true);
    w.key("jobs");
    w.arr_open();
    for t in tickets {
        w.obj_open();
        w.key("seed");
        w.num(i128::from(t.seed));
        w.key("id");
        w.num(i128::from(t.id));
        w.key("dedup");
        w.bool(t.dedup);
        w.obj_close();
    }
    w.arr_close();
    w.obj_close();
    w.finish()
}

/// The structured failure response to a submit.
pub fn submit_error_response(err: &SubmitError) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("ok");
    w.bool(false);
    match err {
        SubmitError::Overloaded(Overloaded {
            client,
            depth,
            capacity,
            rejected,
        }) => {
            w.key("error");
            w.str("overloaded");
            w.key("client");
            w.str(client);
            w.key("depth");
            w.num(*depth as i128);
            w.key("capacity");
            w.num(*capacity as i128);
            w.key("rejected");
            w.num(*rejected as i128);
        }
        SubmitError::ShuttingDown => {
            w.key("error");
            w.str("shutting-down");
        }
    }
    w.obj_close();
    w.finish()
}

/// The response to a poll.
pub fn poll_response(state: Option<&PollState>, id: u64) -> String {
    let mut w = Writer::new();
    w.obj_open();
    match state {
        None => {
            w.key("ok");
            w.bool(false);
            w.key("error");
            w.str("unknown-job");
            w.key("id");
            w.num(i128::from(id));
        }
        Some(PollState::Queued) => {
            w.key("ok");
            w.bool(true);
            w.key("state");
            w.str("queued");
        }
        Some(PollState::Running) => {
            w.key("ok");
            w.bool(true);
            w.key("state");
            w.str("running");
        }
        Some(PollState::Done(out)) => {
            w.key("ok");
            w.bool(true);
            w.key("state");
            w.str("done");
            w.key("result");
            write_output(&mut w, out);
        }
    }
    w.obj_close();
    w.finish()
}

/// One job result as a standalone JSON document — what a poll response
/// embeds under `"result"`, and what the write-ahead log stores so a
/// recovered result can be replayed to clients byte for byte.
pub fn output_json(out: &JobOutput) -> String {
    let mut w = Writer::new();
    write_output(&mut w, out);
    w.finish()
}

fn write_output(w: &mut Writer, out: &JobOutput) {
    if let JobOutput::Recovered { summary, .. } = out {
        // The stored wire rendering of the original result, verbatim: a
        // client polling across a server restart sees identical bytes.
        w.raw(summary);
        return;
    }
    w.obj_open();
    w.key("kind");
    w.str(out.kind());
    match out {
        JobOutput::Finished(r) => {
            w.key("signature");
            w.str(&outcome_signature(&r.outcome));
            w.key("result");
            match r.outcome {
                InjectOutcome::Halted { result } => w.num(i128::from(result)),
                InjectOutcome::Faulted { .. } => w.null(),
            }
            w.key("instructions");
            w.num(i128::from(r.stats.instructions));
            w.key("events");
            w.num(r.events.len() as i128);
        }
        JobOutput::Supervised(r) => {
            w.key("outcome");
            w.str(&match &r.outcome {
                SupervisorOutcome::Halted { result } => format!("halt {result}"),
                SupervisorOutcome::Faulted { error } => format!("fault: {error}"),
                SupervisorOutcome::WatchdogExpired => "watchdog".to_owned(),
                SupervisorOutcome::DeadlineExceeded => "deadline".to_owned(),
            });
            w.key("attempts");
            w.num(i128::from(r.attempts));
            w.key("rollbacks");
            w.num(i128::from(r.rollbacks));
            w.key("escalations");
            w.num(i128::from(r.escalations));
            w.key("instructions");
            w.num(i128::from(r.stats.instructions));
            w.key("events");
            w.num(r.events.len() as i128);
        }
        JobOutput::TimedOut { stats, events } => {
            w.key("instructions");
            w.num(i128::from(stats.instructions));
            w.key("events");
            w.num(events.len() as i128);
        }
        JobOutput::SetupFailed { message } => {
            w.key("message");
            w.str(message);
        }
        JobOutput::Panicked { message, artifact } => {
            w.key("message");
            w.str(message);
            w.key("artifact");
            match artifact {
                None => w.null(),
                Some(path) => w.str(path),
            }
        }
        JobOutput::SnapshotRejected { message } => {
            w.key("message");
            w.str(message);
        }
        JobOutput::Recovered { .. } => unreachable!("handled above"),
    }
    w.key("digest");
    w.str(&format!("{:016x}", out.digest()));
    w.obj_close();
}

/// The response to a journal request: one chunk of the recorded journal
/// text, or a structured refusal when the job has no retained journal or
/// the sequence number is out of range.
pub fn journal_response(id: u64, seq: u64, journal: Option<&str>) -> String {
    let mut w = Writer::new();
    w.obj_open();
    let Some(text) = journal else {
        w.key("ok");
        w.bool(false);
        w.key("error");
        w.str("no-journal");
        w.key("id");
        w.num(i128::from(id));
        w.obj_close();
        return w.finish();
    };
    let bounds = chunk_bounds(text, JOURNAL_CHUNK_BYTES);
    let chunks = bounds.len() as u64;
    let Some(&(start, end)) = usize::try_from(seq).ok().and_then(|i| bounds.get(i)) else {
        w.key("ok");
        w.bool(false);
        w.key("error");
        w.str("bad-seq");
        w.key("id");
        w.num(i128::from(id));
        w.key("seq");
        w.num(i128::from(seq));
        w.key("chunks");
        w.num(i128::from(chunks));
        w.obj_close();
        return w.finish();
    };
    w.key("ok");
    w.bool(true);
    w.key("id");
    w.num(i128::from(id));
    w.key("seq");
    w.num(i128::from(seq));
    w.key("chunks");
    w.num(i128::from(chunks));
    w.key("bytes");
    w.num(text.len() as i128);
    w.key("data");
    w.str(&text[start..end]);
    w.key("last");
    w.bool(seq + 1 == chunks);
    w.obj_close();
    w.finish()
}

/// Chunk boundaries over `text`, each at most `chunk` bytes, split on
/// char boundaries so every chunk is valid UTF-8. An empty text still has
/// one (empty) chunk, so `chunks` is never zero.
fn chunk_bounds(text: &str, chunk: usize) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut start = 0usize;
    loop {
        let mut end = (start + chunk.max(1)).min(text.len());
        while !text.is_char_boundary(end) {
            end -= 1;
        }
        bounds.push((start, end));
        if end == text.len() {
            return bounds;
        }
        start = end;
    }
}

/// The response to a status request.
pub fn status_response(status: &StatusReport) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("ok");
    w.bool(true);
    w.key("queues");
    w.arr_open();
    for q in &status.queues {
        w.obj_open();
        w.key("client");
        w.str(&q.client);
        w.key("weight");
        w.num(i128::from(q.weight));
        w.key("depth");
        w.num(q.depth as i128);
        w.obj_close();
    }
    w.arr_close();
    w.key("queued");
    w.num(status.queued as i128);
    w.key("running");
    w.num(status.running as i128);
    w.key("cached");
    w.num(status.cached as i128);
    w.key("counters");
    w.obj_open();
    let c = &status.counters;
    for (k, v) in [
        ("submitted", c.submitted),
        ("dedup_hits", c.dedup_hits),
        ("shed", c.shed),
        ("completed", c.completed),
        ("panics", c.panics),
        ("timeouts", c.timeouts),
        ("setup_failures", c.setup_failures),
        ("retries", c.retries),
        ("escalations", c.escalations),
        ("wal_replayed", c.wal_replayed),
        ("wal_reseeded", c.wal_reseeded),
        ("snapshots_rejected", c.snapshots_rejected),
    ] {
        w.key(k);
        w.num(i128::from(v));
    }
    w.obj_close();
    w.key("trap_totals");
    w.obj_open();
    for kind in TrapKind::ALL {
        w.key(&format!("{kind:?}"));
        w.num(i128::from(c.trap_totals[kind.index()]));
    }
    w.obj_close();
    w.obj_close();
    w.finish()
}

/// The acknowledgement sent before the server stops.
pub fn shutdown_response() -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("ok");
    w.bool(true);
    w.key("state");
    w.str("shutting-down");
    w.obj_close();
    w.finish()
}

/// A structured parse/schema failure reply.
pub fn bad_request(message: &str) -> String {
    frame_error("bad-request", message)
}

/// A structured transport-level failure reply: oversized frames,
/// truncated frames, invalid UTF-8. Malformed input is always answered,
/// never dropped or panicked on.
pub fn frame_error(error: &str, message: &str) -> String {
    let mut w = Writer::new();
    w.obj_open();
    w.key("ok");
    w.bool(false);
    w.key("error");
    w.str(error);
    w.key("message");
    w.str(message);
    w.obj_close();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_request_round_trips() {
        let prog = Program {
            words: vec![10, 20],
            entry_offset: 4,
            data: vec![(64, vec![1, 2, 3])],
            symbols: Default::default(),
        };
        let line = submit_request(
            "alice",
            2,
            &prog,
            &[7, -3],
            &SimConfig::default(),
            &[0, 1, 5],
            true,
            120,
            "all",
            true,
            "direct",
            Some(500),
            false,
            None,
        );
        match parse_request(&line).unwrap() {
            Request::Submit {
                client,
                weight,
                specs,
            } => {
                assert_eq!(client, "alice");
                assert_eq!(weight, 2);
                assert_eq!(specs.len(), 3);
                assert_eq!(specs[2].inject.unwrap().seed, 5);
                assert_eq!(specs[0].inject.unwrap().rate, 120);
                assert_eq!(specs[0].args, vec![7, -3]);
                assert_eq!(specs[0].program.words, vec![10, 20]);
                assert_eq!(specs[0].program.data, vec![(64, vec![1, 2, 3])]);
                assert!(specs[0].recovery);
                assert_eq!(specs[0].timeout_ms, Some(500));
                assert_eq!(specs[0].mode, JobMode::Direct);
                assert_eq!(specs[0].cfg, SimConfig::default());
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_schema_errors() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"warp\"}").is_err());
        assert!(parse_request("{\"op\":\"poll\"}").is_err(), "missing id");
        // Empty seed lists are rejected before touching the queues.
        let line = "{\"op\":\"submit\",\"client\":\"c\",\"args\":[],\"seeds\":[],\
                    \"program\":{\"words\":[1],\"entry_offset\":0}}";
        assert!(parse_request(line).is_err());
    }

    #[test]
    fn poll_and_control_requests_parse() {
        match parse_request("{\"op\":\"poll\",\"id\":9,\"wait_ms\":50}").unwrap() {
            Request::Poll { id, wait_ms } => {
                assert_eq!(id, 9);
                assert_eq!(wait_ms, Some(50));
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            parse_request("{\"op\":\"status\"}").unwrap(),
            Request::Status
        ));
        assert!(matches!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        ));
        match parse_request("{\"op\":\"journal\",\"id\":4,\"seq\":2}").unwrap() {
            Request::Journal { id, seq } => {
                assert_eq!((id, seq), (4, 2));
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn spec_round_trips_through_the_wal_format() {
        let spec = JobSpec {
            program: Program {
                words: vec![7, 8, 9],
                entry_offset: 4,
                data: vec![(128, vec![1, 2])],
                symbols: Default::default(),
            },
            args: vec![3, -4],
            cfg: SimConfig::default(),
            inject: Some(InjectConfig::with_seed(11)),
            recovery: true,
            mode: JobMode::Supervised {
                ckpt_every: 500,
                max_retries: 2,
            },
            timeout_ms: Some(750),
            snapshot: None,
            journal: true,
        };
        let mut w = Writer::new();
        write_spec(&mut w, &spec);
        let text = w.finish();
        let back = parse_spec(&Parser::new(&text).parse_document().unwrap()).unwrap();
        assert_eq!(back.key(), spec.key(), "identity survives the round trip");
        assert_eq!(back.args, spec.args);
        assert_eq!(back.inject, spec.inject);
        assert_eq!(back.mode, spec.mode);
        assert_eq!(back.timeout_ms, spec.timeout_ms);
        assert!(back.journal);
        // And serialization is stable: a second round trip is byte-equal.
        let mut w2 = Writer::new();
        write_spec(&mut w2, &back);
        assert_eq!(w2.finish(), text);

        // Sharded mode survives the same trip (no watchdog allowed there).
        let sharded = JobSpec {
            mode: JobMode::Sharded {
                shard_cycles: 4_096,
                threads: 8,
            },
            timeout_ms: None,
            ..spec
        };
        let mut w3 = Writer::new();
        write_spec(&mut w3, &sharded);
        let text3 = w3.finish();
        let back3 = parse_spec(&Parser::new(&text3).parse_document().unwrap()).unwrap();
        assert_eq!(back3.key(), sharded.key(), "sharded identity survives");
        assert_eq!(back3.mode, sharded.mode);
    }

    #[test]
    fn journal_chunks_cover_the_text_and_reject_bad_seqs() {
        let text = "j".repeat(JOURNAL_CHUNK_BYTES + 17);
        let bounds = chunk_bounds(&text, JOURNAL_CHUNK_BYTES);
        assert_eq!(bounds.len(), 2);
        assert_eq!(bounds[0], (0, JOURNAL_CHUNK_BYTES));
        assert_eq!(bounds[1], (JOURNAL_CHUNK_BYTES, text.len()));
        // Empty journals still answer one (empty, last) chunk.
        assert_eq!(chunk_bounds("", JOURNAL_CHUNK_BYTES), vec![(0, 0)]);

        let last = journal_response(9, 1, Some(&text));
        assert!(last.contains("\"last\":true"), "{last}");
        let bad = journal_response(9, 2, Some(&text));
        assert!(bad.contains("\"error\":\"bad-seq\""), "{bad}");
        let none = journal_response(9, 0, None);
        assert!(none.contains("\"error\":\"no-journal\""), "{none}");
    }

    #[test]
    fn snapshot_submits_reject_incompatible_modes() {
        // A malformed snapshot value is a schema error, not a panic.
        let bad = "{\"op\":\"submit\",\"client\":\"c\",\"args\":[],\"seeds\":[1],\
                   \"program\":{\"words\":[1],\"entry_offset\":0},\"snapshot\":7}";
        assert!(parse_request(bad).is_err());
        // journal recording is direct-mode only.
        let sup = "{\"op\":\"submit\",\"client\":\"c\",\"args\":[],\"seeds\":[1],\
                   \"program\":{\"words\":[1],\"entry_offset\":0},\
                   \"journal\":true,\"mode\":\"supervised\"}";
        assert!(parse_request(sup).is_err());
    }
}
