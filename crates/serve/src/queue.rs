//! Per-client bounded queues with fair-share weighted round-robin draining.
//!
//! Every client gets its own FIFO with a hard capacity; a submission that
//! would overflow it is rejected with a structured [`Overloaded`] — load is
//! shed at the front door, never by panicking or silently dropping queued
//! work. The scheduler drains jobs in weighted round-robin order: each
//! drain pass visits the clients cyclically and takes up to `weight` jobs
//! from each per round, so a client with weight 2 gets twice the service
//! of a weight-1 client under contention, and no client can starve another
//! by flooding.

use std::collections::VecDeque;
use std::fmt;

/// A structured admission rejection: the client's queue cannot take the
/// submission. The whole submission is rejected atomically (no partial
/// enqueue), so the client can back off and retry it as a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overloaded {
    /// The client whose queue is full.
    pub client: String,
    /// Jobs currently queued for that client.
    pub depth: usize,
    /// The per-client queue capacity.
    pub capacity: usize,
    /// Jobs in the rejected submission.
    pub rejected: usize,
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overloaded: client {:?} queue at {}/{} cannot take {} more job(s)",
            self.client, self.depth, self.capacity, self.rejected
        )
    }
}

impl std::error::Error for Overloaded {}

struct ClientQueue {
    name: String,
    weight: u32,
    jobs: VecDeque<u64>,
}

/// The set of per-client queues plus the round-robin cursor.
pub struct QueueSet {
    queues: Vec<ClientQueue>,
    capacity: usize,
    /// Index of the client the next drain pass starts from.
    cursor: usize,
}

/// One row of [`QueueSet::depths`]: client name, weight, queued jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueDepth {
    /// Client name.
    pub client: String,
    /// Fair-share weight.
    pub weight: u32,
    /// Jobs currently queued.
    pub depth: usize,
}

impl QueueSet {
    /// An empty queue set with the given per-client capacity.
    pub fn new(capacity: usize) -> QueueSet {
        QueueSet {
            queues: Vec::new(),
            capacity: capacity.max(1),
            cursor: 0,
        }
    }

    fn client_index(&mut self, name: &str, weight: u32) -> usize {
        if let Some(i) = self.queues.iter().position(|q| q.name == name) {
            // The latest submission's weight wins — clients may retune.
            self.queues[i].weight = weight.max(1);
            return i;
        }
        self.queues.push(ClientQueue {
            name: name.to_owned(),
            weight: weight.max(1),
            jobs: VecDeque::new(),
        });
        self.queues.len() - 1
    }

    /// Enqueues `ids` for `client` atomically, or rejects the whole
    /// submission when it would overflow the client's queue.
    ///
    /// # Errors
    /// [`Overloaded`] with the queue's depth and capacity.
    pub fn try_push(&mut self, client: &str, weight: u32, ids: &[u64]) -> Result<(), Overloaded> {
        let cap = self.capacity;
        let i = self.client_index(client, weight);
        let depth = self.queues[i].jobs.len();
        if depth + ids.len() > cap {
            return Err(Overloaded {
                client: client.to_owned(),
                depth,
                capacity: cap,
                rejected: ids.len(),
            });
        }
        self.queues[i].jobs.extend(ids.iter().copied());
        Ok(())
    }

    /// Enqueues one recovered job, bypassing the capacity check: write-
    /// ahead-log replay must never shed work the pre-crash service had
    /// already admitted, even if it briefly overfills a queue.
    pub fn force_push(&mut self, client: &str, weight: u32, id: u64) {
        let i = self.client_index(client, weight);
        self.queues[i].jobs.push_back(id);
    }

    /// Drains up to `max` job ids in weighted round-robin order: repeated
    /// rounds over the clients (starting after where the last drain
    /// started), taking up to `weight` jobs from each per round.
    pub fn drain(&mut self, max: usize) -> Vec<u64> {
        let mut out = Vec::new();
        if self.queues.is_empty() || max == 0 {
            return out;
        }
        let n = self.queues.len();
        let start = self.cursor % n;
        self.cursor = (self.cursor + 1) % n;
        'rounds: loop {
            let mut took_any = false;
            for off in 0..n {
                let q = &mut self.queues[(start + off) % n];
                for _ in 0..q.weight {
                    let Some(id) = q.jobs.pop_front() else { break };
                    out.push(id);
                    took_any = true;
                    if out.len() >= max {
                        break 'rounds;
                    }
                }
            }
            if !took_any {
                break;
            }
        }
        out
    }

    /// Total jobs queued across all clients.
    pub fn depth(&self) -> usize {
        self.queues.iter().map(|q| q.jobs.len()).sum()
    }

    /// Per-client depths, in registration order.
    pub fn depths(&self) -> Vec<QueueDepth> {
        self.queues
            .iter()
            .map(|q| QueueDepth {
                client: q.name.clone(),
                weight: q.weight,
                depth: q.jobs.len(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_is_rejected_atomically() {
        let mut qs = QueueSet::new(4);
        qs.try_push("a", 1, &[1, 2, 3]).unwrap();
        let err = qs.try_push("a", 1, &[4, 5]).unwrap_err();
        assert_eq!(
            err,
            Overloaded {
                client: "a".into(),
                depth: 3,
                capacity: 4,
                rejected: 2,
            }
        );
        // Nothing from the rejected submission landed.
        assert_eq!(qs.depth(), 3);
        // A fitting submission still goes through.
        qs.try_push("a", 1, &[4]).unwrap();
        assert_eq!(qs.depth(), 4);
        // Another client has its own capacity.
        qs.try_push("b", 1, &[10, 11]).unwrap();
        assert_eq!(qs.depth(), 6);
    }

    #[test]
    fn drain_is_weighted_round_robin() {
        let mut qs = QueueSet::new(16);
        qs.try_push("a", 2, &[1, 2, 3, 4, 5, 6]).unwrap();
        qs.try_push("b", 1, &[101, 102, 103]).unwrap();
        // Round 1: two from a, one from b; round 2: the same again.
        assert_eq!(qs.drain(6), vec![1, 2, 101, 3, 4, 102]);
        // Cursor advanced: the next pass starts at b.
        assert_eq!(qs.drain(10), vec![103, 5, 6]);
        assert_eq!(qs.depth(), 0);
        assert!(qs.drain(10).is_empty());
    }

    #[test]
    fn drain_respects_max_and_empty_queues() {
        let mut qs = QueueSet::new(16);
        qs.try_push("solo", 3, &[1, 2, 3, 4]).unwrap();
        assert_eq!(qs.drain(2), vec![1, 2]);
        assert_eq!(qs.drain(100), vec![3, 4]);
    }
}
