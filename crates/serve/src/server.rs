//! Transport: the same newline-delimited protocol over TCP or any byte
//! stream (stdin/stdout for `risc1 serve --stdin`).
//!
//! Each TCP connection gets its own thread; all of them share one
//! [`ExecService`], whose single state lock is the only synchronisation.
//! A `shutdown` request answers first, then stops the service (waiting
//! for the in-flight batch) and unblocks the accept loop, so shutdown is
//! always clean: no connection is severed mid-response.

use crate::service::ExecService;
use crate::wire::{self, Request};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Handles one request line, returning the response and whether the
/// server should shut down after sending it.
pub fn handle_line(service: &ExecService, line: &str) -> (String, bool) {
    match wire::parse_request(line) {
        Err(e) => (wire::bad_request(&e.to_string()), false),
        Ok(Request::Submit {
            client,
            weight,
            specs,
        }) => match service.submit(&client, weight, specs) {
            Ok(tickets) => (wire::submit_response(&tickets), false),
            Err(e) => (wire::submit_error_response(&e), false),
        },
        Ok(Request::Poll { id, wait_ms }) => {
            let state = match wait_ms {
                Some(ms) if ms > 0 => service.wait(id, Duration::from_millis(ms)),
                _ => service.poll(id),
            };
            (wire::poll_response(state.as_ref(), id), false)
        }
        Ok(Request::Status) => (wire::status_response(&service.status()), false),
        Ok(Request::Shutdown) => (wire::shutdown_response(), true),
    }
}

/// Serves the protocol over any line stream until EOF or a `shutdown`
/// request (stdin mode). Returns whether shutdown was requested.
///
/// # Errors
/// Propagates I/O errors from the underlying stream.
pub fn serve_lines(
    service: &ExecService,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = handle_line(service, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if stop {
            service.shutdown();
            return Ok(true);
        }
    }
    Ok(false)
}

/// Accepts connections on `listener` until a client sends `shutdown`.
/// Each connection runs on its own thread; the service (and its queues,
/// dedup map and counters) is shared across all of them.
///
/// # Errors
/// Propagates fatal `accept` errors. Per-connection I/O errors only end
/// that connection.
pub fn serve_tcp(service: &ExecService, listener: TcpListener) -> std::io::Result<()> {
    let stop = AtomicBool::new(false);
    let addr = listener.local_addr()?;
    std::thread::scope(|scope| {
        loop {
            let (stream, _) = listener.accept()?;
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stop = &stop;
            scope.spawn(move || {
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                let mut writer = stream;
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    let (response, shutdown) = handle_line(service, &line);
                    if writer.write_all(response.as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err()
                        || writer.flush().is_err()
                    {
                        break;
                    }
                    if shutdown {
                        service.shutdown();
                        stop.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so the server exits.
                        let _ = TcpStream::connect(addr);
                        return;
                    }
                }
            });
        }
        Ok(())
    })
}
