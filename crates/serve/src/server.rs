//! Transport: the same newline-delimited protocol over TCP or any byte
//! stream (stdin/stdout for `risc1 serve --stdin`).
//!
//! Each TCP connection gets its own thread; all of them share one
//! [`ExecService`], whose single state lock is the only synchronisation.
//! A `shutdown` request answers first, then stops the service (waiting
//! for the in-flight batch) and unblocks the accept loop, so shutdown is
//! always clean: no connection is severed mid-response.
//!
//! Frames are read through a bounded reader: a request line longer than
//! [`MAX_WIRE_LINE_BYTES`] is discarded (to the next newline) and answered
//! with a structured `oversized-frame` error instead of growing an
//! unbounded buffer; a stream that ends mid-line gets a `truncated-frame`
//! error; invalid UTF-8 gets `bad-request`. Malformed input is always
//! answered, never panicked on.

use crate::service::ExecService;
use crate::wire::{self, Request};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Hard cap on one request line. Large enough for a maximal submit (a
/// 64 MiB snapshot serializes to well under this only when sparse, so
/// genuinely huge snapshots must ship fewer resident pages), small enough
/// to bound what one connection can make the server buffer.
pub const MAX_WIRE_LINE_BYTES: usize = 64 << 20;

/// One framing outcome from [`read_frame`].
enum Frame {
    /// A complete line (without the trailing newline).
    Line(String),
    /// The line exceeded the cap; it was discarded up to the next newline.
    Oversized,
    /// The stream ended mid-line (no trailing newline).
    Truncated,
    /// The line was complete but not UTF-8.
    BadUtf8,
    /// Clean end of stream.
    Eof,
}

/// Reads one newline-delimited frame without ever buffering more than
/// `max` bytes of it.
fn read_frame(reader: &mut impl BufRead, max: usize) -> std::io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (newline_at, len) = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                return Ok(if buf.is_empty() {
                    Frame::Eof
                } else {
                    Frame::Truncated
                });
            }
            (chunk.iter().position(|&b| b == b'\n'), chunk.len())
        };
        match newline_at {
            Some(pos) => {
                if buf.len() + pos > max {
                    reader.consume(pos + 1);
                    return Ok(Frame::Oversized);
                }
                let chunk = reader.fill_buf()?;
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return Ok(match String::from_utf8(buf) {
                    Ok(line) => Frame::Line(line),
                    Err(_) => Frame::BadUtf8,
                });
            }
            None => {
                if buf.len() + len > max {
                    // Over the cap with no newline in sight: stop
                    // accumulating and discard through the next newline.
                    buf.clear();
                    reader.consume(len);
                    loop {
                        let (pos, len) = {
                            let chunk = reader.fill_buf()?;
                            if chunk.is_empty() {
                                // Oversized *and* truncated; the size
                                // violation came first.
                                return Ok(Frame::Oversized);
                            }
                            (chunk.iter().position(|&b| b == b'\n'), chunk.len())
                        };
                        match pos {
                            Some(p) => {
                                reader.consume(p + 1);
                                return Ok(Frame::Oversized);
                            }
                            None => reader.consume(len),
                        }
                    }
                }
                let chunk = reader.fill_buf()?;
                buf.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
}

/// The structured reply for one non-`Line` frame, or `None` at stream end.
fn frame_reply(frame: &Frame) -> Option<String> {
    match frame {
        Frame::Line(_) | Frame::Eof => None,
        Frame::Oversized => Some(wire::frame_error(
            "oversized-frame",
            &format!("request line exceeds {MAX_WIRE_LINE_BYTES} bytes"),
        )),
        Frame::Truncated => Some(wire::frame_error(
            "truncated-frame",
            "stream ended mid-line (missing trailing newline)",
        )),
        Frame::BadUtf8 => Some(wire::bad_request("request line is not valid UTF-8")),
    }
}

/// Handles one request line, returning the response and whether the
/// server should shut down after sending it.
pub fn handle_line(service: &ExecService, line: &str) -> (String, bool) {
    match wire::parse_request(line) {
        Err(e) => (wire::bad_request(&e.to_string()), false),
        Ok(Request::Submit {
            client,
            weight,
            specs,
        }) => match service.submit(&client, weight, specs) {
            Ok(tickets) => (wire::submit_response(&tickets), false),
            Err(e) => (wire::submit_error_response(&e), false),
        },
        Ok(Request::Poll { id, wait_ms }) => {
            let state = match wait_ms {
                Some(ms) if ms > 0 => service.wait(id, Duration::from_millis(ms)),
                _ => service.poll(id),
            };
            (wire::poll_response(state.as_ref(), id), false)
        }
        Ok(Request::Journal { id, seq }) => {
            let journal = service.journal(id);
            (
                wire::journal_response(id, seq, journal.as_ref().map(|j| j.as_str())),
                false,
            )
        }
        Ok(Request::Status) => (wire::status_response(&service.status()), false),
        Ok(Request::Shutdown) => (wire::shutdown_response(), true),
    }
}

/// Serves the protocol over any byte stream until EOF or a `shutdown`
/// request (stdin mode). Returns whether shutdown was requested.
///
/// # Errors
/// Propagates I/O errors from the underlying stream.
pub fn serve_lines(
    service: &ExecService,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<bool> {
    let mut reader = reader;
    loop {
        let frame = read_frame(&mut reader, MAX_WIRE_LINE_BYTES)?;
        let at_end = matches!(frame, Frame::Eof | Frame::Truncated);
        let (response, stop) = match (&frame, frame_reply(&frame)) {
            (Frame::Eof, _) => return Ok(false),
            (_, Some(reply)) => (reply, false),
            (Frame::Line(line), None) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(service, line)
            }
            _ => unreachable!("every non-line frame has a reply"),
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if stop {
            service.shutdown();
            return Ok(true);
        }
        if at_end {
            return Ok(false);
        }
    }
}

/// Accepts connections on `listener` until a client sends `shutdown`.
/// Each connection runs on its own thread; the service (and its queues,
/// dedup map and counters) is shared across all of them.
///
/// # Errors
/// Propagates fatal `accept` errors. Per-connection I/O errors only end
/// that connection.
pub fn serve_tcp(service: &ExecService, listener: TcpListener) -> std::io::Result<()> {
    let stop = AtomicBool::new(false);
    let addr = listener.local_addr()?;
    std::thread::scope(|scope| {
        loop {
            let (stream, _) = listener.accept()?;
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stop = &stop;
            scope.spawn(move || {
                let mut reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                let mut writer = stream;
                while let Ok(frame) = read_frame(&mut reader, MAX_WIRE_LINE_BYTES) {
                    let at_end = matches!(frame, Frame::Eof | Frame::Truncated);
                    let (response, shutdown) = match (&frame, frame_reply(&frame)) {
                        (Frame::Eof, _) => break,
                        (_, Some(reply)) => (reply, false),
                        (Frame::Line(line), None) => {
                            if line.trim().is_empty() {
                                continue;
                            }
                            handle_line(service, line)
                        }
                        _ => unreachable!("every non-line frame has a reply"),
                    };
                    if writer.write_all(response.as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err()
                        || writer.flush().is_err()
                    {
                        break;
                    }
                    if shutdown {
                        service.shutdown();
                        stop.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so the server exits.
                        let _ = TcpStream::connect(addr);
                        return;
                    }
                    if at_end {
                        break;
                    }
                }
            });
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frames(input: &[u8], max: usize) -> Vec<&'static str> {
        let mut reader = BufReader::new(Cursor::new(input.to_vec()));
        let mut out = Vec::new();
        loop {
            match read_frame(&mut reader, max).unwrap() {
                Frame::Line(_) => out.push("line"),
                Frame::Oversized => out.push("oversized"),
                Frame::Truncated => out.push("truncated"),
                Frame::BadUtf8 => out.push("bad-utf8"),
                Frame::Eof => return out,
            }
        }
    }

    #[test]
    fn frame_reader_enforces_the_cap_and_recovers() {
        // Normal lines pass; the oversized middle line is discarded and
        // the stream keeps going.
        let mut input = b"short\n".to_vec();
        input.extend(vec![b'x'; 100]);
        input.push(b'\n');
        input.extend(b"after\n");
        assert_eq!(frames(&input, 16), vec!["line", "oversized", "line"]);
        // A line of exactly the cap is fine.
        let exact = [vec![b'y'; 16], vec![b'\n']].concat();
        assert_eq!(frames(&exact, 16), vec!["line"]);
        // Truncated tail (no trailing newline).
        assert_eq!(frames(b"complete\npartial", 64), vec!["line", "truncated"]);
        // Oversized with no newline before EOF still terminates.
        assert_eq!(frames(&[b'z'; 100], 16), vec!["oversized"]);
        // Invalid UTF-8 is framed but flagged.
        assert_eq!(frames(&[0xff, 0xfe, b'\n'], 16), vec!["bad-utf8"]);
    }

    #[test]
    fn frame_reader_handles_tiny_buffer_chunks() {
        // A BufReader with a 1-byte buffer forces the multi-chunk path.
        let input = b"hello world\nbye\n";
        let mut reader = BufReader::with_capacity(1, Cursor::new(input.to_vec()));
        match read_frame(&mut reader, 64).unwrap() {
            Frame::Line(l) => assert_eq!(l, "hello world"),
            _ => panic!("expected a line"),
        }
        match read_frame(&mut reader, 2).unwrap() {
            Frame::Oversized => {}
            _ => panic!("expected oversized"),
        }
        assert!(matches!(read_frame(&mut reader, 2).unwrap(), Frame::Eof));
    }
}
