//! The execution service: admission, fair-share scheduling, crash-only
//! workers, and structured status.
//!
//! [`ExecService`] is a long-running library object. Clients [`submit`]
//! campaigns of [`JobSpec`]s; a background scheduler thread drains the
//! per-client queues in weighted round-robin order and runs each batch
//! over [`parallel_map`] — the same deterministic runner every campaign in
//! the repo uses, so results are independent of worker count. Every job
//! runs under `catch_unwind`: a panic inside the simulator is journaled to
//! the replay-artifacts funnel and reported as a structured
//! [`JobOutput::Panicked`], never a dead worker.
//!
//! The robustness state machine, end to end:
//!
//! ```text
//! submit ──▶ dedup hit? ──────────────▶ ticket (cached / in-flight id)
//!    │
//!    ├──▶ queue full? ──▶ Overloaded (whole submission shed, counted)
//!    │
//!    └──▶ Queued ──▶ Running ──▶ Done(JobOutput)
//!                      │  supervised jobs retry with backoff inside the
//!                      │  PR-3 supervisor; poisoned checkpoints escalate
//!                      └─ panic ──▶ journal to artifacts ──▶ Done(Panicked)
//! ```
//!
//! With a [`wal_dir`](ServiceConfig::wal_dir) configured, every admission
//! and completion is appended to a [write-ahead log](crate::wal) before
//! the client hears about it, and [`recover`](ServiceConfig::recover)
//! replays that log on startup: completed results re-seed the cache and
//! job table (byte-identical to the pre-crash responses), incomplete jobs
//! re-enqueue under their original ids, and the idempotent job keys make
//! re-execution safe — a `kill -9` mid-campaign loses nothing.
//!
//! [`submit`]: ExecService::submit

use crate::cache::ResultCache;
use crate::job::{JobKey, JobMode, JobOutput, JobSpec};
use crate::queue::{Overloaded, QueueDepth, QueueSet};
use crate::wal::{replay_wal, WalRecord, WalWriter};
use risc1_core::json::{get, Parser};
use risc1_core::{Deadline, Journal, JournalEvent, TrapKind, JOURNAL_VERSION};
use risc1_ir::{
    default_threads, parallel_map, recorded_outcome, run_risc_deadline, run_risc_resumed,
    run_risc_supervised, SupervisorConfig, TimedOutcome,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for an [`ExecService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads per batch (defaults to the campaign runner's
    /// `RISC1_THREADS`-aware thread count).
    pub threads: usize,
    /// Per-client queue capacity; submissions that would overflow it are
    /// rejected with a structured [`Overloaded`].
    pub queue_cap: usize,
    /// Bound on the LRU result cache *and* on retained finished jobs.
    pub cache_cap: usize,
    /// Most jobs the scheduler drains into one parallel batch.
    pub batch_max: usize,
    /// Where panicking jobs journal their campaigns for offline replay.
    pub artifact_dir: String,
    /// Directory of the crash-safe write-ahead job log; `None` runs the
    /// service without durability.
    pub wal_dir: Option<String>,
    /// Replay an existing log in [`wal_dir`](Self::wal_dir) on startup,
    /// re-seeding completed results and re-enqueueing incomplete jobs
    /// under their original ids.
    pub recover: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let threads = default_threads();
        ServiceConfig {
            threads,
            queue_cap: 64,
            cache_cap: 256,
            batch_max: threads.max(1) * 4,
            artifact_dir: "target/replay-artifacts".to_owned(),
            wal_dir: None,
            recover: false,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The client's queue cannot take the submission (load shed).
    Overloaded(Overloaded),
    /// The service is shutting down and admits nothing new.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded(o) => write!(f, "{o}"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The receipt for one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitTicket {
    /// The injection seed of the spec (0 for pristine runs).
    pub seed: u64,
    /// The job id to poll.
    pub id: u64,
    /// True when the job was served by dedup — the id refers to an
    /// in-flight or cached execution of an identical spec.
    pub dedup: bool,
}

/// Where a job currently is.
// A `Done` report dwarfs the marker states, but boxing it would break the
// nested patterns clients match (`PollState::Done(JobOutput::Finished(r))`),
// and poll results are transient values, not a resident table.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PollState {
    /// Waiting in its client's queue.
    Queued,
    /// Claimed by the current batch.
    Running,
    /// Finished; the output is yours.
    Done(JobOutput),
}

/// Monotonic service counters, exposed by the `status` endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Jobs accepted for execution (dedup hits not included).
    pub submitted: u64,
    /// Submitted jobs served from the dedup map or result cache.
    pub dedup_hits: u64,
    /// Jobs rejected by load shedding.
    pub shed: u64,
    /// Jobs that finished executing.
    pub completed: u64,
    /// Jobs that ended in a caught panic.
    pub panics: u64,
    /// Jobs stopped by their wall-clock watchdog.
    pub timeouts: u64,
    /// Jobs whose setup failed before any instruction ran.
    pub setup_failures: u64,
    /// Supervisor retry attempts across all supervised jobs.
    pub retries: u64,
    /// Supervisor escalations to the campaign baseline.
    pub escalations: u64,
    /// Incomplete jobs re-enqueued from the write-ahead log at startup.
    pub wal_replayed: u64,
    /// Completed results re-seeded from the write-ahead log at startup.
    pub wal_reseeded: u64,
    /// Warm-start snapshots rejected at restore time (corruption, version
    /// skew, config mismatch).
    pub snapshots_rejected: u64,
    /// Per-cause trap totals accumulated from every finished job, indexed
    /// by [`TrapKind::index`].
    pub trap_totals: [u64; TrapKind::COUNT],
}

impl Default for Counters {
    fn default() -> Counters {
        Counters {
            submitted: 0,
            dedup_hits: 0,
            shed: 0,
            completed: 0,
            panics: 0,
            timeouts: 0,
            setup_failures: 0,
            retries: 0,
            escalations: 0,
            wal_replayed: 0,
            wal_reseeded: 0,
            snapshots_rejected: 0,
            trap_totals: [0; TrapKind::COUNT],
        }
    }
}

/// A point-in-time snapshot of the service, for the `status` endpoint.
#[derive(Debug, Clone)]
pub struct StatusReport {
    /// Per-client queue depths and weights.
    pub queues: Vec<QueueDepth>,
    /// Jobs queued across all clients.
    pub queued: usize,
    /// Jobs in the currently running batch.
    pub running: usize,
    /// Entries in the result cache.
    pub cached: usize,
    /// The monotonic counters.
    pub counters: Counters,
}

// Resident in the job table, but the table is bounded by `cache_cap`
// retention — a few hundred entries — so the variant size gap is cheaper
// than indirecting every poll.
#[allow(clippy::large_enum_variant)]
enum JobState {
    Queued,
    Running,
    Done(JobOutput),
}

struct State {
    queues: QueueSet,
    /// Specs of queued jobs (removed when the scheduler claims them).
    specs: HashMap<u64, JobSpec>,
    jobs: HashMap<u64, JobState>,
    keys: HashMap<u64, JobKey>,
    /// Canonical job id per key, for in-flight dedup.
    dedup: HashMap<JobKey, u64>,
    cache: ResultCache,
    counters: Counters,
    next_id: u64,
    shutdown: bool,
    /// Finished job ids, oldest first, so retention stays bounded.
    completed_order: VecDeque<u64>,
    /// The write-ahead log's append half, when durability is on. Written
    /// under this state lock so log order matches admission order.
    wal: Option<WalWriter>,
    /// Recorded replay journals of finished `journal:true` jobs, retained
    /// (and evicted) alongside the job table for streamed download.
    journals: HashMap<u64, Arc<String>>,
}

struct Inner {
    cfg: ServiceConfig,
    state: Mutex<State>,
    /// Signalled when work arrives or shutdown is requested.
    work: Condvar,
    /// Signalled when a batch of jobs finishes.
    done: Condvar,
}

/// The long-running execution service. See the module docs for the state
/// machine; construction spawns the scheduler thread, [`shutdown`]
/// (or drop) stops and joins it.
///
/// [`shutdown`]: ExecService::shutdown
pub struct ExecService {
    inner: Arc<Inner>,
    scheduler: Mutex<Option<JoinHandle<()>>>,
}

impl ExecService {
    /// Starts a service (and its scheduler thread) with the given config.
    ///
    /// # Panics
    /// When [`wal_dir`](ServiceConfig::wal_dir) is set but the log cannot
    /// be opened (or, with [`recover`](ServiceConfig::recover), read) —
    /// starting a service that silently drops its durability guarantee
    /// would be worse than not starting.
    pub fn start(cfg: ServiceConfig) -> ExecService {
        let mut state = State {
            queues: QueueSet::new(cfg.queue_cap),
            specs: HashMap::new(),
            jobs: HashMap::new(),
            keys: HashMap::new(),
            dedup: HashMap::new(),
            cache: ResultCache::new(cfg.cache_cap),
            counters: Counters::default(),
            next_id: 1,
            shutdown: false,
            completed_order: VecDeque::new(),
            wal: None,
            journals: HashMap::new(),
        };
        if let Some(dir) = cfg.wal_dir.as_deref() {
            let dir = Path::new(dir);
            if cfg.recover {
                let (records, _) = replay_wal(dir)
                    .unwrap_or_else(|e| panic!("cannot replay WAL in {}: {e}", dir.display()));
                seed_from_wal(&mut state, records);
                evict_retained(&mut state, cfg.cache_cap);
            }
            state.wal = Some(
                WalWriter::open(dir)
                    .unwrap_or_else(|e| panic!("cannot open WAL in {}: {e}", dir.display())),
            );
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            work: Condvar::new(),
            done: Condvar::new(),
            cfg,
        });
        let scheduler = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || scheduler_loop(&inner))
        };
        ExecService {
            inner,
            scheduler: Mutex::new(Some(scheduler)),
        }
    }

    /// Submits a campaign for `client` (registering it with `weight` on
    /// first contact). Admission is atomic: either every spec gets a
    /// ticket, or the whole submission is rejected. Specs whose key
    /// matches an in-flight or cached job are served by dedup and do not
    /// consume queue space.
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] when the fresh jobs would overflow the
    /// client's queue (they are counted as shed);
    /// [`SubmitError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit(
        &self,
        client: &str,
        weight: u32,
        specs: Vec<JobSpec>,
    ) -> Result<Vec<SubmitTicket>, SubmitError> {
        let mut st = self.inner.state.lock().expect("service state");
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let keys: Vec<JobKey> = specs.iter().map(JobSpec::key).collect();

        // Count the genuinely new jobs first so admission is atomic.
        let mut batch_seen = HashSet::new();
        let mut fresh = 0usize;
        for key in &keys {
            if !st.dedup.contains_key(key) && st.cache.get(key).is_none() && batch_seen.insert(*key)
            {
                fresh += 1;
            }
        }
        let depth = st
            .queues
            .depths()
            .iter()
            .find(|q| q.client == client)
            .map_or(0, |q| q.depth);
        if depth + fresh > self.inner.cfg.queue_cap {
            st.counters.shed += specs.len() as u64;
            return Err(SubmitError::Overloaded(Overloaded {
                client: client.to_owned(),
                depth,
                capacity: self.inner.cfg.queue_cap,
                rejected: specs.len(),
            }));
        }

        let mut tickets = Vec::with_capacity(specs.len());
        let mut enqueue = Vec::new();
        for (spec, key) in specs.into_iter().zip(keys) {
            let seed = spec.inject.map_or(0, |i| i.seed);
            if let Some(&id) = st.dedup.get(&key) {
                st.counters.dedup_hits += 1;
                tickets.push(SubmitTicket {
                    seed,
                    id,
                    dedup: true,
                });
            } else if let Some(out) = st.cache.get(&key).cloned() {
                // Completed long ago and since evicted from the job table:
                // materialise a fresh Done job straight from the cache.
                let id = st.next_id;
                st.next_id += 1;
                st.jobs.insert(id, JobState::Done(out));
                st.keys.insert(id, key);
                st.dedup.insert(key, id);
                st.completed_order.push_back(id);
                st.counters.dedup_hits += 1;
                tickets.push(SubmitTicket {
                    seed,
                    id,
                    dedup: true,
                });
            } else {
                let id = st.next_id;
                st.next_id += 1;
                // Log the admission before the ticket exists: a crash after
                // this line re-runs the job, a crash before it means the
                // client never got a ticket to lose.
                if let Some(wal) = st.wal.as_mut() {
                    if let Err(e) = wal.append_admit(id, client, weight, &spec) {
                        eprintln!("risc1-serve: WAL admit append failed: {e}");
                    }
                }
                st.specs.insert(id, spec);
                st.jobs.insert(id, JobState::Queued);
                st.keys.insert(id, key);
                st.dedup.insert(key, id);
                st.counters.submitted += 1;
                enqueue.push(id);
                tickets.push(SubmitTicket {
                    seed,
                    id,
                    dedup: false,
                });
            }
        }
        st.queues
            .try_push(client, weight, &enqueue)
            .expect("admission was checked before ids were allocated");
        evict_retained(&mut st, self.inner.cfg.cache_cap);
        drop(st);
        self.inner.work.notify_all();
        Ok(tickets)
    }

    /// Where job `id` currently is (`None` for ids the service does not
    /// know — never issued, or finished and since evicted by retention).
    pub fn poll(&self, id: u64) -> Option<PollState> {
        let st = self.inner.state.lock().expect("service state");
        st.jobs.get(&id).map(|j| match j {
            JobState::Queued => PollState::Queued,
            JobState::Running => PollState::Running,
            JobState::Done(out) => PollState::Done(out.clone()),
        })
    }

    /// [`poll`](Self::poll), but blocks until the job is done, the
    /// timeout elapses, or the service shuts down.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<PollState> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().expect("service state");
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(JobState::Done(out)) => return Some(PollState::Done(out.clone())),
                Some(JobState::Queued) | Some(JobState::Running) => {}
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if st.shutdown || remaining.is_zero() {
                return self_poll(&st, id);
            }
            let (guard, _) = self
                .inner
                .done
                .wait_timeout(st, remaining)
                .expect("service state");
            st = guard;
        }
    }

    /// The recorded replay journal of job `id`, when the job was submitted
    /// with `journal:true`, finished, and is still retained. The text is
    /// the standard [`Journal`] JSON document, replayable by
    /// `risc1 replay`.
    pub fn journal(&self, id: u64) -> Option<Arc<String>> {
        let st = self.inner.state.lock().expect("service state");
        st.journals.get(&id).cloned()
    }

    /// A point-in-time status snapshot: queue depths, retry/dedup/shed
    /// counters, per-cause trap totals.
    pub fn status(&self) -> StatusReport {
        let st = self.inner.state.lock().expect("service state");
        StatusReport {
            queues: st.queues.depths(),
            queued: st.queues.depth(),
            running: st
                .jobs
                .values()
                .filter(|j| matches!(j, JobState::Running))
                .count(),
            cached: st.cache.len(),
            counters: st.counters.clone(),
        }
    }

    /// Stops admitting work, lets the in-flight batch finish, and joins
    /// the scheduler thread. Queued-but-unstarted jobs are abandoned.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().expect("service state");
            st.shutdown = true;
        }
        self.inner.work.notify_all();
        self.inner.done.notify_all();
        let handle = self.scheduler.lock().expect("scheduler handle").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for ExecService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn self_poll(st: &State, id: u64) -> Option<PollState> {
    st.jobs.get(&id).map(|j| match j {
        JobState::Queued => PollState::Queued,
        JobState::Running => PollState::Running,
        JobState::Done(out) => PollState::Done(out.clone()),
    })
}

fn scheduler_loop(inner: &Inner) {
    loop {
        // Claim a batch (or exit on shutdown).
        let batch: Vec<(u64, JobSpec, JobKey)> = {
            let mut st = inner.state.lock().expect("service state");
            loop {
                if st.shutdown {
                    return;
                }
                let ids = st.queues.drain(inner.cfg.batch_max);
                if !ids.is_empty() {
                    break ids
                        .into_iter()
                        .map(|id| {
                            let spec = st.specs.remove(&id).expect("queued job has a spec");
                            let key = st.keys[&id];
                            st.jobs.insert(id, JobState::Running);
                            (id, spec, key)
                        })
                        .collect();
                }
                st = inner.work.wait(st).expect("service state");
            }
        };
        // Execute outside the lock; the deterministic runner keeps results
        // independent of the worker count.
        let outs = parallel_map(&batch, inner.cfg.threads, |_, (id, spec, key)| {
            let (out, journal) = execute(spec, *key, &inner.cfg.artifact_dir);
            (*id, *key, out, journal)
        });
        let mut st = inner.state.lock().expect("service state");
        for (id, key, out, journal) in outs {
            record_completion(&mut st, id, key, out);
            if let Some(text) = journal {
                st.journals.insert(id, Arc::new(text));
            }
        }
        evict_retained(&mut st, inner.cfg.cache_cap);
        drop(st);
        inner.done.notify_all();
    }
}

fn record_completion(st: &mut State, id: u64, key: JobKey, out: JobOutput) {
    match &out {
        JobOutput::Finished(r) => add_traps(&mut st.counters, &r.stats.trap_counts),
        JobOutput::Supervised(r) => {
            st.counters.retries += u64::from(r.attempts.saturating_sub(1));
            st.counters.escalations += u64::from(r.escalations);
            add_traps(&mut st.counters, &r.stats.trap_counts);
        }
        JobOutput::TimedOut { stats, .. } => {
            st.counters.timeouts += 1;
            add_traps(&mut st.counters, &stats.trap_counts);
        }
        JobOutput::SetupFailed { .. } => st.counters.setup_failures += 1,
        JobOutput::Panicked { .. } => st.counters.panics += 1,
        JobOutput::SnapshotRejected { .. } => st.counters.snapshots_rejected += 1,
        // Only created by WAL replay, which never routes through here.
        JobOutput::Recovered { .. } => {}
    }
    st.counters.completed += 1;
    if let Some(wal) = st.wal.as_mut() {
        if let Err(e) = wal.append_done(id, &out) {
            eprintln!("risc1-serve: WAL done append failed: {e}");
        }
    }
    st.cache.insert(key, out.clone());
    st.jobs.insert(id, JobState::Done(out));
    st.completed_order.push_back(id);
}

/// Rebuilds service state from a replayed write-ahead log: admits with a
/// matching done record become [`JobOutput::Recovered`] results (cache,
/// dedup and job table re-seeded, responses byte-identical); admits
/// without one re-enqueue under their original ids for idempotent
/// re-execution.
fn seed_from_wal(st: &mut State, records: Vec<WalRecord>) {
    let mut admits = Vec::new();
    let mut dones: HashMap<u64, (u64, String)> = HashMap::new();
    for rec in records {
        match rec {
            WalRecord::Admit {
                id,
                client,
                weight,
                spec,
            } => admits.push((id, client, weight, spec)),
            WalRecord::Done { id, digest, result } => {
                // Duplicate done records (a recovered-then-re-executed
                // job) carry identical digests; last wins either way.
                dones.insert(id, (digest, result));
            }
        }
    }
    for (id, client, weight, spec) in admits {
        st.next_id = st.next_id.max(id + 1);
        let key = spec.key();
        if let Some((digest, summary)) = dones.remove(&id) {
            let kind = result_kind(&summary);
            let out = JobOutput::Recovered {
                kind,
                digest,
                summary,
            };
            st.cache.insert(key, out.clone());
            st.jobs.insert(id, JobState::Done(out));
            st.keys.insert(id, key);
            st.dedup.insert(key, id);
            st.completed_order.push_back(id);
            st.counters.wal_reseeded += 1;
        } else {
            st.specs.insert(id, *spec);
            st.jobs.insert(id, JobState::Queued);
            st.keys.insert(id, key);
            st.dedup.insert(key, id);
            st.queues.force_push(&client, weight, id);
            st.counters.wal_replayed += 1;
        }
    }
}

/// The `kind` tag of a stored result rendering, for the recovered
/// output's own tag. The log wrote this JSON itself, so a parse failure
/// means on-disk corruption that slipped past record parsing; surface it
/// as a tag rather than guessing.
fn result_kind(summary: &str) -> String {
    Parser::new(summary)
        .parse_document()
        .ok()
        .and_then(|doc| {
            let obj = doc.as_obj("result").ok()?;
            Some(get(obj, "kind").ok()?.as_str("kind").ok()?.to_owned())
        })
        .unwrap_or_else(|| "unreadable".to_owned())
}

/// Keeps the finished-job table bounded: only the most recent `retain`
/// completions stay pollable by id (their outputs remain in the LRU cache
/// a while longer, so dedup still works after eviction).
fn evict_retained(st: &mut State, retain: usize) {
    while st.completed_order.len() > retain {
        let Some(old) = st.completed_order.pop_front() else {
            break;
        };
        st.jobs.remove(&old);
        st.journals.remove(&old);
        if let Some(key) = st.keys.remove(&old) {
            if st.dedup.get(&key) == Some(&old) {
                st.dedup.remove(&key);
            }
        }
    }
}

fn add_traps(counters: &mut Counters, trap_counts: &[u64; TrapKind::COUNT]) {
    for (total, n) in counters.trap_totals.iter_mut().zip(trap_counts) {
        *total += n;
    }
}

/// Runs one job to a structured [`JobOutput`], plus the recorded journal
/// text when the spec asked for one and the run finished. Never panics:
/// the simulator call is wrapped in `catch_unwind`, and a caught panic
/// journals the events applied so far to the replay-artifacts funnel.
fn execute(spec: &JobSpec, key: JobKey, artifact_dir: &str) -> (JobOutput, Option<String>) {
    let deadline = spec.timeout_ms.map(Deadline::after_ms);
    match spec.mode {
        JobMode::Direct if spec.snapshot.is_some() => {
            // Warm start: resume from the validated snapshot and execute
            // only the suffix. The restored statistics cover the prefix,
            // so a finished report is bit-identical to a cold run.
            let snap = spec.snapshot.as_deref().expect("checked above");
            let run = catch_unwind(AssertUnwindSafe(|| run_risc_resumed(snap, deadline)));
            let out = match run {
                Ok(Ok(TimedOutcome::Finished(report))) => JobOutput::Finished(report),
                Ok(Ok(TimedOutcome::TimedOut { stats, events })) => {
                    JobOutput::TimedOut { stats, events }
                }
                Ok(Err(e)) => JobOutput::SnapshotRejected {
                    message: e.to_string(),
                },
                Err(payload) => JobOutput::Panicked {
                    message: panic_message(&payload),
                    artifact: None,
                },
            };
            (out, None)
        }
        JobMode::Direct => {
            // The event sink lives outside `catch_unwind` so a panicking
            // job still yields the schedule it applied before dying.
            let sink = Mutex::new(Vec::new());
            let run = catch_unwind(AssertUnwindSafe(|| {
                let mut events = sink.lock().expect("sink is unpoisoned before the run");
                run_risc_deadline(
                    &spec.program,
                    &spec.args,
                    spec.cfg.clone(),
                    spec.inject,
                    spec.recovery,
                    deadline,
                    Some(&mut events),
                )
            }));
            let recorded = sink.into_inner().unwrap_or_else(|e| e.into_inner());
            match run {
                Ok(Ok(TimedOutcome::Finished(report))) => {
                    let journal = spec
                        .journal
                        .then(|| build_journal(spec, recorded, &report).to_json());
                    (JobOutput::Finished(report), journal)
                }
                Ok(Ok(TimedOutcome::TimedOut { stats, events })) => {
                    (JobOutput::TimedOut { stats, events }, None)
                }
                Ok(Err(e)) => (
                    JobOutput::SetupFailed {
                        message: e.to_string(),
                    },
                    None,
                ),
                Err(payload) => (
                    JobOutput::Panicked {
                        message: panic_message(&payload),
                        artifact: journal_panic(spec, recorded, artifact_dir, key),
                    },
                    None,
                ),
            }
        }
        JobMode::Sharded {
            shard_cycles,
            threads,
        } => {
            // Checkpoint-parallel execution. The stitcher proves the
            // result bit-identical to a sequential run before it returns,
            // so a finished output here carries the same wire digest as
            // the equivalent direct job — clients can mix modes freely.
            let run = catch_unwind(AssertUnwindSafe(|| match spec.inject {
                Some(icfg) => risc1_ir::run_sharded_injected(
                    &spec.program,
                    &spec.args,
                    spec.cfg.clone(),
                    icfg,
                    spec.recovery,
                    shard_cycles,
                    threads as usize,
                ),
                None if spec.recovery => {
                    // Recovery stubs without injection: a zero-rate,
                    // no-mode injector installs them and changes nothing
                    // else.
                    let mut icfg = risc1_core::InjectConfig::with_seed(0);
                    icfg.rate = 0;
                    icfg.modes = risc1_core::inject::InjectModes::none();
                    risc1_ir::run_sharded_injected(
                        &spec.program,
                        &spec.args,
                        spec.cfg.clone(),
                        icfg,
                        spec.recovery,
                        shard_cycles,
                        threads as usize,
                    )
                }
                None => risc1_ir::run_sharded_with(
                    &spec.program,
                    &spec.args,
                    spec.cfg.clone(),
                    shard_cycles,
                    threads as usize,
                ),
            }));
            let out = match run {
                Ok(Ok(rep)) => JobOutput::Finished(rep.report),
                // Plan-time setup failures and stitch violations are both
                // structured rejections: the job never produced a result.
                Ok(Err(e)) => JobOutput::SetupFailed {
                    message: e.to_string(),
                },
                Err(payload) => JobOutput::Panicked {
                    message: panic_message(&payload),
                    artifact: journal_panic(spec, Vec::new(), artifact_dir, key),
                },
            };
            (out, None)
        }
        JobMode::Supervised {
            ckpt_every,
            max_retries,
        } => {
            let sup = SupervisorConfig {
                ckpt_every,
                max_retries,
                deadline,
                ..SupervisorConfig::default()
            };
            let run = catch_unwind(AssertUnwindSafe(|| {
                run_risc_supervised(
                    &spec.program,
                    &spec.args,
                    spec.cfg.clone(),
                    spec.inject,
                    spec.recovery,
                    sup,
                )
            }));
            let out = match run {
                Ok(Ok(report)) => JobOutput::Supervised(report),
                Ok(Err(e)) => JobOutput::SetupFailed {
                    message: e.to_string(),
                },
                Err(payload) => JobOutput::Panicked {
                    message: panic_message(&payload),
                    artifact: journal_panic(spec, Vec::new(), artifact_dir, key),
                },
            };
            (out, None)
        }
    }
}

/// The replay journal of a finished direct run: the spec's campaign plus
/// the step-keyed events the deadline runner recorded and the comparable
/// outcome triple — exactly what `risc1 replay` consumes.
fn build_journal(
    spec: &JobSpec,
    events: Vec<JournalEvent>,
    report: &risc1_ir::InjectReport,
) -> Journal {
    Journal {
        version: JOURNAL_VERSION,
        seed: spec.inject.map_or(0, |i| i.seed),
        rate: spec.inject.map_or(0, |i| i.rate),
        recovery: spec.recovery,
        cfg: spec.cfg.clone(),
        words: spec.program.words.clone(),
        entry_offset: spec.program.entry_offset,
        data: spec.program.data.clone(),
        args: spec.args.clone(),
        events,
        outcome: Some(recorded_outcome(report)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Journals a panicking job's campaign (program, config, events applied so
/// far, no outcome) into the same artifact funnel the CI injection sweep
/// uses, so `risc1 replay` can reproduce the crash offline.
fn journal_panic(
    spec: &JobSpec,
    events: Vec<JournalEvent>,
    dir: &str,
    key: JobKey,
) -> Option<String> {
    let journal = Journal {
        version: JOURNAL_VERSION,
        seed: spec.inject.map_or(0, |i| i.seed),
        rate: spec.inject.map_or(0, |i| i.rate),
        recovery: spec.recovery,
        cfg: spec.cfg.clone(),
        words: spec.program.words.clone(),
        entry_offset: spec.program.entry_offset,
        data: spec.program.data.clone(),
        args: spec.args.clone(),
        events,
        outcome: None,
    };
    std::fs::create_dir_all(dir).ok()?;
    let path = format!(
        "{dir}/serve_panic_{:016x}_{:016x}_seed{}.json",
        key.program, key.config, key.seed
    );
    std::fs::write(&path, journal.to_json()).ok()?;
    Some(path)
}
