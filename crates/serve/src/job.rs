//! Job identity and results: what a client asks the service to run, how
//! the service recognises a duplicate, and everything a finished job can
//! report back.

use risc1_core::snapshot::{config_hash, Fnv64, Snapshot};
use risc1_core::{ExecStats, InjectConfig, InjectEvent, Program, SimConfig, TrapKind};
use risc1_ir::{outcome_signature, InjectReport, SupervisorReport};

/// How a job is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobMode {
    /// One attempt, bit-identical to
    /// [`run_risc_injected`](risc1_ir::run_risc_injected) of the same
    /// `(program, args, cfg, inject, recovery)` — the law the chaos test
    /// enforces.
    Direct,
    /// Under the PR-3 supervisor: incremental checkpoints, rollback and
    /// retry with a fresh injector stream on structured faults, escalation
    /// to the campaign baseline when a retry makes no forward progress.
    Supervised {
        /// Checkpoint interval in instructions.
        ckpt_every: u64,
        /// Rollback attempts before the fault surfaces.
        max_retries: u32,
    },
    /// Checkpoint-parallel execution
    /// ([`run_sharded_with`](risc1_ir::run_sharded_with)): plan, shard,
    /// re-execute on worker threads, stitch, and prove bit-identity with
    /// the sequential run. The output is a [`JobOutput::Finished`] whose
    /// report — and therefore wire digest — equals the same job run
    /// [`Direct`](JobMode::Direct), so clients can mix modes freely.
    Sharded {
        /// Shard length in retired instructions.
        shard_cycles: u64,
        /// Worker threads for the shard phase (0 = available parallelism).
        threads: u32,
    },
}

/// One unit of work: a program plus everything that determines its result.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The compiled program image.
    pub program: Program,
    /// Arguments for `main`.
    pub args: Vec<i32>,
    /// Simulator configuration (engine tier, fuel, window count, …).
    pub cfg: SimConfig,
    /// Fault-injection campaign, or `None` for a pristine run.
    pub inject: Option<InjectConfig>,
    /// Whether to install the per-cause recovery stubs.
    pub recovery: bool,
    /// Execution mode.
    pub mode: JobMode,
    /// Per-job wall-clock watchdog, layered on fuel preemption. The
    /// [`Deadline`](risc1_core::Deadline) is armed when the job *starts
    /// executing*, not when it is queued.
    pub timeout_ms: Option<u64>,
    /// Warm start: resume from this checkpointed state instead of reset.
    /// Wire snapshots are untrusted — they pass the codec's admission
    /// limits at parse time and full checksum verification at restore
    /// time; any mismatch surfaces as [`JobOutput::SnapshotRejected`].
    /// Mutually exclusive with injection, supervision and journal
    /// recording (enforced at parse time).
    pub snapshot: Option<Box<Snapshot>>,
    /// Record a replay journal of the run and retain it for streamed
    /// download (`journal` wire requests). Direct mode only.
    pub journal: bool,
}

/// The idempotency key of a job: `(program hash, config hash, seed)`.
/// The config hash folds in everything else that determines the result —
/// args, recovery, injection rate and modes, execution mode, timeout — so
/// equal keys imply bit-identical outputs and the service may serve a
/// duplicate submission from its result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobKey {
    /// FNV-1a over the program image (words, entry offset, data).
    pub program: u64,
    /// FNV-1a over the simulator config and the remaining spec fields.
    pub config: u64,
    /// The injection seed (0 for pristine runs).
    pub seed: u64,
}

impl JobSpec {
    /// The dedup key of this spec.
    pub fn key(&self) -> JobKey {
        let mut p = Fnv64::new();
        for &w in &self.program.words {
            p.write_u64(u64::from(w));
        }
        p.write_u64(u64::from(self.program.entry_offset));
        for (addr, bytes) in &self.program.data {
            p.write_u64(u64::from(*addr));
            p.write_bytes(bytes);
        }

        let mut c = Fnv64::new();
        c.write_u64(config_hash(&self.cfg));
        c.write_u64(self.args.len() as u64);
        for &a in &self.args {
            c.write_u64(a as u32 as u64);
        }
        c.write_u8(u8::from(self.recovery));
        match self.inject {
            None => c.write_u8(0),
            Some(i) => {
                c.write_u8(1);
                c.write_u64(u64::from(i.rate));
                c.write_u8(u8::from(i.modes.bit_flips));
                c.write_u8(u8::from(i.modes.spurious_interrupts));
                c.write_u8(u8::from(i.modes.decode_probes));
                c.write_u8(u8::from(i.modes.misalign_probes));
                c.write_u8(u8::from(i.modes.fuel_jitter));
                c.write_u8(u8::from(i.modes.wstack_corruption));
            }
        }
        match self.mode {
            JobMode::Direct => c.write_u8(0),
            JobMode::Supervised {
                ckpt_every,
                max_retries,
            } => {
                c.write_u8(1);
                c.write_u64(ckpt_every);
                c.write_u64(u64::from(max_retries));
            }
            JobMode::Sharded {
                shard_cycles,
                threads,
            } => {
                c.write_u8(2);
                c.write_u64(shard_cycles);
                c.write_u64(u64::from(threads));
            }
        }
        match self.timeout_ms {
            None => c.write_u8(0),
            Some(ms) => {
                c.write_u8(1);
                c.write_u64(ms);
            }
        }
        match &self.snapshot {
            None => c.write_u8(0),
            Some(s) => {
                // Identity of the prefix being skipped: fold the full
                // canonical serialization, not the snapshot's self-declared
                // checksum. Wire snapshots are untrusted — a tampered body
                // that keeps the original's stored checksum must not share
                // a key with the original, or dedup would serve it the
                // cached result instead of a restore-time rejection.
                c.write_u8(1);
                c.write_bytes(s.to_json().as_bytes());
            }
        }
        c.write_u8(u8::from(self.journal));

        JobKey {
            program: p.finish(),
            config: c.finish(),
            seed: self.inject.map_or(0, |i| i.seed),
        }
    }
}

/// Everything a completed job can report. Structured end to end: a panic
/// inside the simulator is caught, journaled, and lands here as
/// [`JobOutput::Panicked`] — never as a dead worker.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// A direct run completed; the report is bit-identical to
    /// [`run_risc_injected`](risc1_ir::run_risc_injected).
    Finished(InjectReport),
    /// A supervised run completed (possibly after rollbacks/escalations).
    Supervised(SupervisorReport),
    /// The wall-clock watchdog fired mid-run.
    TimedOut {
        /// Statistics at the moment the run was stopped.
        stats: ExecStats,
        /// Faults the injector had applied so far.
        events: Vec<InjectEvent>,
    },
    /// The run could not be arranged (image too large, too many args).
    SetupFailed {
        /// The rendered setup error.
        message: String,
    },
    /// The job panicked; the worker caught it and journaled the applied
    /// events to the replay-artifacts funnel.
    Panicked {
        /// The panic payload, rendered.
        message: String,
        /// Path of the journal written for offline replay, when the write
        /// succeeded.
        artifact: Option<String>,
    },
    /// The warm-start snapshot failed restore-time verification
    /// (corruption, version skew, or a configuration mismatch). Always a
    /// structured rejection, never a panic.
    SnapshotRejected {
        /// The rendered [`RestoreError`](risc1_core::RestoreError).
        message: String,
    },
    /// Re-seeded from the write-ahead log after a restart. The summary is
    /// the stored wire rendering of the original result, replayed
    /// verbatim, so responses are byte-identical across the restart.
    Recovered {
        /// The original output's kind tag.
        kind: String,
        /// The original output's digest.
        digest: u64,
        /// The original result object exactly as it was serialized.
        summary: String,
    },
}

impl JobOutput {
    /// A short machine-readable tag for wire responses and logs. For a
    /// recovered result this is the *original* output's tag, so clients
    /// cannot tell a re-seeded result from a live one.
    pub fn kind(&self) -> &str {
        match self {
            JobOutput::Finished(_) => "finished",
            JobOutput::Supervised(_) => "supervised",
            JobOutput::TimedOut { .. } => "timeout",
            JobOutput::SetupFailed { .. } => "setup-error",
            JobOutput::Panicked { .. } => "panic",
            JobOutput::SnapshotRejected { .. } => "snapshot-rejected",
            JobOutput::Recovered { kind, .. } => kind,
        }
    }

    /// A 64-bit identity digest of the output, so a remote client can
    /// check bit-identity against a local run without shipping the full
    /// report over the wire. Folds the outcome signature, instructions
    /// retired, per-cause trap counts and the applied-event log.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        match self {
            JobOutput::Finished(r) => {
                h.write_u8(1);
                fold_report(&mut h, &outcome_signature(&r.outcome), &r.stats, &r.events);
            }
            JobOutput::Supervised(r) => {
                h.write_u8(2);
                fold_report(&mut h, &format!("{:?}", r.outcome), &r.stats, &r.events);
                h.write_u64(u64::from(r.attempts));
                h.write_u64(u64::from(r.rollbacks));
                h.write_u64(u64::from(r.escalations));
            }
            JobOutput::TimedOut { stats, events } => {
                h.write_u8(3);
                fold_report(&mut h, "timeout", stats, events);
            }
            JobOutput::SetupFailed { message } => {
                h.write_u8(4);
                h.write_bytes(message.as_bytes());
            }
            JobOutput::Panicked { message, .. } => {
                h.write_u8(5);
                h.write_bytes(message.as_bytes());
            }
            JobOutput::SnapshotRejected { message } => {
                h.write_u8(6);
                h.write_bytes(message.as_bytes());
            }
            // A recovered result keeps the original execution's digest —
            // the restart bit-identity law on the wire.
            JobOutput::Recovered { digest, .. } => return *digest,
        }
        h.finish()
    }
}

fn fold_report(h: &mut Fnv64, signature: &str, stats: &ExecStats, events: &[InjectEvent]) {
    h.write_bytes(signature.as_bytes());
    h.write_u64(stats.instructions);
    for kind in TrapKind::ALL {
        h.write_u64(stats.trap_count(kind));
    }
    h.write_u64(events.len() as u64);
    for ev in events {
        h.write_bytes(ev.to_string().as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_core::InjectConfig;

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            program: Program {
                words: vec![1, 2, 3],
                entry_offset: 0,
                data: vec![(64, vec![9, 9])],
                symbols: Default::default(),
            },
            args: vec![5],
            cfg: SimConfig::default(),
            inject: Some(InjectConfig::with_seed(seed)),
            recovery: true,
            mode: JobMode::Direct,
            timeout_ms: None,
            snapshot: None,
            journal: false,
        }
    }

    #[test]
    fn key_separates_every_identity_dimension() {
        let base = spec(7).key();
        assert_eq!(base, spec(7).key(), "keys are deterministic");
        assert_ne!(base, spec(8).key(), "seed");

        let mut other = spec(7);
        other.args = vec![6];
        assert_ne!(base, other.key(), "args");

        let mut other = spec(7);
        other.recovery = false;
        assert_ne!(base, other.key(), "recovery");

        let mut other = spec(7);
        other.mode = JobMode::Supervised {
            ckpt_every: 1000,
            max_retries: 3,
        };
        assert_ne!(base, other.key(), "mode");

        let mut other = spec(7);
        other.mode = JobMode::Sharded {
            shard_cycles: 1000,
            threads: 3,
        };
        assert_ne!(base, other.key(), "sharded mode");
        let mut again = spec(7);
        again.mode = JobMode::Sharded {
            shard_cycles: 1000,
            threads: 4,
        };
        assert_ne!(other.key(), again.key(), "sharded thread count");

        let mut other = spec(7);
        other.timeout_ms = Some(50);
        assert_ne!(base, other.key(), "timeout");

        let mut other = spec(7);
        other.program.words[0] = 99;
        assert_ne!(base, other.key(), "program");

        let mut other = spec(7);
        other.cfg.fuel += 1;
        assert_ne!(base, other.key(), "config");

        let mut other = spec(7);
        other.journal = true;
        assert_ne!(base, other.key(), "journal");
    }

    #[test]
    fn recovered_output_keeps_the_original_digest_and_kind() {
        let out = JobOutput::Recovered {
            kind: "finished".to_owned(),
            digest: 0xdead_beef_cafe_f00d,
            summary: "{\"kind\":\"finished\"}".to_owned(),
        };
        assert_eq!(out.digest(), 0xdead_beef_cafe_f00d);
        assert_eq!(out.kind(), "finished");
    }
}
