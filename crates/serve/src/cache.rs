//! Bounded LRU cache of finished job outputs, keyed by [`JobKey`].
//!
//! The idempotency half of dedup: a resubmission whose key is already
//! cached is served from here without re-executing — safe because equal
//! keys imply bit-identical outputs (the key folds every input that
//! determines the result). The cache is hard-bounded; inserting past
//! capacity evicts the least-recently-used entry, so a long-running
//! server's memory stays flat.

use crate::job::{JobKey, JobOutput};
use std::collections::HashMap;

/// A bounded least-recently-used map from job key to finished output.
pub struct ResultCache {
    capacity: usize,
    /// Logical clock; bumped on every touch so eviction can find the LRU
    /// entry without a linked list (eviction is O(n), n ≤ capacity).
    tick: u64,
    map: HashMap<JobKey, (u64, JobOutput)>,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// The cached output for `key`, refreshing its recency.
    pub fn get(&mut self, key: &JobKey) -> Option<&JobOutput> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(t, out)| {
            *t = tick;
            &*out
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: JobKey, out: JobOutput) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(&victim) = self.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| k) {
                self.map.remove(&victim);
            }
        }
        self.map.insert(key, (self.tick, out));
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> JobKey {
        JobKey {
            program: 1,
            config: 2,
            seed,
        }
    }

    fn out(msg: &str) -> JobOutput {
        JobOutput::SetupFailed {
            message: msg.into(),
        }
    }

    fn msg(o: &JobOutput) -> &str {
        match o {
            JobOutput::SetupFailed { message } => message,
            _ => unreachable!(),
        }
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), out("one"));
        c.insert(key(2), out("two"));
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(msg(c.get(&key(1)).unwrap()), "one");
        c.insert(key(3), out("three"));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(2)).is_none(), "LRU entry was evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), out("one"));
        c.insert(key(1), out("one again"));
        assert_eq!(c.len(), 1);
        assert_eq!(msg(c.get(&key(1)).unwrap()), "one again");
    }
}
