//! # `risc1-serve` — fault-tolerant batch execution service
//!
//! The serving layer over the simulator stack: a long-running,
//! dependency-free service that accepts campaign jobs (program + seed
//! range + [`SimConfig`](risc1_core::SimConfig) + fuel/deadline budget),
//! schedules them with per-client fair-share weighted queuing over the
//! deterministic campaign runner, and executes each job either directly
//! or under the checkpoint/rollback/escalate supervisor.
//!
//! The design is crash-only and semantically transparent:
//!
//! * **Transparency law** — a direct job's result is bit-identical to
//!   [`run_risc_injected`](risc1_ir::run_risc_injected) of the same
//!   `(program, args, cfg, inject, recovery)`; `tests/serve_chaos.rs`
//!   drives concurrent clients against a mixed clean/injected workload
//!   and checks every accepted job against a local rerun.
//! * **Load shedding, never silent drops** — per-client queues are
//!   bounded; an overflowing submission is rejected atomically with a
//!   structured [`Overloaded`], and the shed count is visible in
//!   [`status`](ExecService::status).
//! * **Idempotent dedup** — jobs are keyed by `(program hash, config
//!   hash, seed)`; duplicate submissions are served from the in-flight
//!   map or a bounded LRU [result cache](cache::ResultCache).
//! * **Crash-only workers** — a panicking job is caught, journaled to
//!   the replay-artifacts funnel for offline `risc1 replay`, and reported
//!   as a structured [`JobOutput::Panicked`].
//! * **Watchdogs** — per-job wall-clock [`Deadline`](risc1_core::Deadline)s
//!   layered on the simulator's fuel preemption.
//!
//! Transports: in-process (library calls), TCP, or stdin/stdout — all
//! speaking the newline-delimited JSON protocol in [`wire`].

pub mod cache;
pub mod job;
pub mod queue;
pub mod server;
pub mod service;
pub mod wire;

pub use job::{JobKey, JobMode, JobOutput, JobSpec};
pub use queue::{Overloaded, QueueDepth};
pub use server::{handle_line, serve_lines, serve_tcp};
pub use service::{
    Counters, ExecService, PollState, ServiceConfig, StatusReport, SubmitError, SubmitTicket,
};
