//! # `risc1-serve` — fault-tolerant batch execution service
//!
//! The serving layer over the simulator stack: a long-running,
//! dependency-free service that accepts campaign jobs (program + seed
//! range + [`SimConfig`](risc1_core::SimConfig) + fuel/deadline budget),
//! schedules them with per-client fair-share weighted queuing over the
//! deterministic campaign runner, and executes each job either directly
//! or under the checkpoint/rollback/escalate supervisor.
//!
//! The design is crash-only and semantically transparent:
//!
//! * **Transparency law** — a direct job's result is bit-identical to
//!   [`run_risc_injected`](risc1_ir::run_risc_injected) of the same
//!   `(program, args, cfg, inject, recovery)`; `tests/serve_chaos.rs`
//!   drives concurrent clients against a mixed clean/injected workload
//!   and checks every accepted job against a local rerun.
//! * **Load shedding, never silent drops** — per-client queues are
//!   bounded; an overflowing submission is rejected atomically with a
//!   structured [`Overloaded`], and the shed count is visible in
//!   [`status`](ExecService::status).
//! * **Idempotent dedup** — jobs are keyed by `(program hash, config
//!   hash, seed)`; duplicate submissions are served from the in-flight
//!   map or a bounded LRU [result cache](cache::ResultCache).
//! * **Crash-only workers** — a panicking job is caught, journaled to
//!   the replay-artifacts funnel for offline `risc1 replay`, and reported
//!   as a structured [`JobOutput::Panicked`].
//! * **Watchdogs** — per-job wall-clock [`Deadline`](risc1_core::Deadline)s
//!   layered on the simulator's fuel preemption.
//!
//! * **Durability** — with a [`wal_dir`](ServiceConfig::wal_dir), every
//!   admission and completion hits a crash-safe [write-ahead log](wal)
//!   before the client hears about it; `--recover` replays the log on
//!   restart so a `kill -9` mid-campaign loses nothing and every digest
//!   stays bit-identical.
//! * **Warm starts** — a job may carry a checksummed
//!   [`Snapshot`](risc1_core::Snapshot) and resume from it; wire
//!   snapshots are untrusted and every corruption/version/config mismatch
//!   is a structured [`JobOutput::SnapshotRejected`].
//! * **Streamed replay journals** — `journal:true` jobs retain a replay
//!   journal the client can pull in bounded, acked chunks and replay
//!   bit for bit with `risc1 replay`, no server filesystem access needed.
//!
//! Transports: in-process (library calls), TCP, or stdin/stdout — all
//! speaking the newline-delimited JSON protocol in [`wire`].

pub mod cache;
pub mod job;
pub mod queue;
pub mod server;
pub mod service;
pub mod wal;
pub mod wire;

pub use job::{JobKey, JobMode, JobOutput, JobSpec};
pub use queue::{Overloaded, QueueDepth};
pub use server::{handle_line, serve_lines, serve_tcp, MAX_WIRE_LINE_BYTES};
pub use service::{
    Counters, ExecService, PollState, ServiceConfig, StatusReport, SubmitError, SubmitTicket,
};
pub use wal::{replay_wal, WalRecord, WalScan, WalWriter};
