//! MC disassembler: 16-bit instruction words back to assembly text.

use crate::isa::{Ea, McOp};

/// One decoded instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedLine {
    /// Byte offset within the stream.
    pub offset: u32,
    /// Encoded length in bytes.
    pub len: u32,
    /// Rendered assembly text.
    pub text: String,
}

fn fetch(words: &[u16], cur: &mut usize) -> Option<u16> {
    let w = *words.get(*cur)?;
    *cur += 1;
    Some(w)
}

fn decode_ea(spec: u8, words: &[u16], cur: &mut usize) -> Option<Ea> {
    Some(match spec {
        0..=5 => Ea::D(spec),
        6 | 7 => Ea::Ind(spec - 6),
        8 | 9 => Ea::A(spec - 8),
        10 => Ea::Push,
        11 => Ea::Pop,
        12 => Ea::Frame(fetch(words, cur)? as i16),
        13 | 14 => {
            let lo = u32::from(fetch(words, cur)?);
            let hi = u32::from(fetch(words, cur)?);
            let v = lo | hi << 16;
            if spec == 13 {
                Ea::Abs(v)
            } else {
                Ea::Imm(v)
            }
        }
        _ => Ea::Imm16(fetch(words, cur)? as i16),
    })
}

/// Decodes one instruction at word index `word_idx`.
pub fn decode_one(words: &[u16], word_idx: usize) -> Option<DecodedLine> {
    let mut cur = word_idx;
    let base = fetch(words, &mut cur)?;
    let op = McOp::from_code((base >> 8) as u8)?;
    let mut parts: Vec<String> = Vec::new();
    if op.has_src() {
        parts.push(decode_ea((base & 0xf) as u8, words, &mut cur)?.to_string());
    }
    if op.has_dst() {
        parts.push(decode_ea((base >> 4 & 0xf) as u8, words, &mut cur)?.to_string());
    }
    if op.has_ext16() {
        let v = fetch(words, &mut cur)? as i16;
        if op.condition().is_some() || matches!(op, McOp::Bra | McOp::Jsr) {
            let target = (cur as i64 * 2 + i64::from(v)) as u32;
            parts.push(format!("{target:#x}"));
        } else {
            parts.push(format!("#{v}"));
        }
    }
    let text = if parts.is_empty() {
        op.name().to_string()
    } else {
        format!("{} {}", op.name(), parts.join(", "))
    };
    Some(DecodedLine {
        offset: word_idx as u32 * 2,
        len: (cur - word_idx) as u32 * 2,
        text,
    })
}

/// Disassembles a whole word stream; undecodable words render as `.word`.
pub fn disassemble(words: &[u16]) -> String {
    let mut out = String::new();
    let mut idx = 0usize;
    while idx < words.len() {
        match decode_one(words, idx) {
            Some(line) => {
                out.push_str(&format!("{:#06x}:  {}\n", line.offset, line.text));
                idx += line.len as usize / 2;
            }
            None => {
                out.push_str(&format!("{:#06x}:  .word {:#06x}\n", idx * 2, words[idx]));
                idx += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::McAsm;

    #[test]
    fn round_trips_a_program_listing() {
        let mut a = McAsm::new();
        let f = a.new_label();
        a.emit(McOp::Move, Ea::Imm16(40), Ea::D(0));
        a.emit(McOp::Add, Ea::Frame(8), Ea::D(0));
        a.emit(McOp::Move, Ea::D(0), Ea::Push);
        a.branch(McOp::Jsr, f);
        a.ext16(McOp::AddSp, 4);
        a.bind(f);
        a.ext16(McOp::Link, 8);
        a.emit0(McOp::Unlk);
        a.emit0(McOp::Rts);
        a.emit0(McOp::Halt);
        let p = a.finish().unwrap();
        let text = disassemble(&p.words);
        assert!(text.contains("move #40, d0"), "{text}");
        assert!(text.contains("add 8(fp), d0"), "{text}");
        assert!(text.contains("move d0, -(sp)"), "{text}");
        assert!(text.contains("jsr"), "{text}");
        assert!(text.contains("addsp #4"), "{text}");
        assert!(text.contains("link #8"), "{text}");
        assert!(text.contains("unlk") && text.contains("rts") && text.contains("halt"));
        assert!(!text.contains(".word"), "{text}");
    }

    #[test]
    fn branch_targets_resolve_to_byte_offsets() {
        let mut a = McAsm::new();
        let top = a.new_label();
        a.bind(top);
        a.emit_src(McOp::Tst, Ea::D(0));
        a.branch(McOp::Bne, top);
        let p = a.finish().unwrap();
        let text = disassemble(&p.words);
        assert!(text.contains("bne 0x0"), "{text}");
    }

    #[test]
    fn garbage_and_truncation_degrade_gracefully() {
        let text = disassemble(&[0xff00, 0x0100]); // bad opcode, then move d0,d0
        assert!(text.contains(".word 0xff00"));
        assert!(text.contains("move d0, d0"));
        // Truncated immediate:
        assert!(decode_one(&[(McOp::Move as u16) << 8 | 0x0f], 0).is_none());
    }
}
