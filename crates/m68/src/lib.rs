//! # `risc1-m68` — "MC", the open 16-bit-word CISC baseline
//!
//! Besides the VAX, the RISC I paper benchmarks against the 16-bit
//! microprocessors of its day — the Motorola 68000 and Zilog Z8002. Those
//! are proprietary; this crate builds an open machine of the same *class*:
//!
//! * **16-bit instruction granularity** — a one-word base instruction plus
//!   0–2 extension words per operand (displacement, absolute address or
//!   immediate), so instructions are 2–10 bytes and average shorter than
//!   RISC I's fixed 4;
//! * **register + memory operands** — six data registers, two address
//!   registers, push/pop and frame-relative modes;
//! * **an expensive microcoded call** — `JSR` pushes the return address,
//!   `LINK`/`UNLK` build and tear down stack frames, `RTS` pops — every
//!   call walks memory, the behaviour register windows eliminate;
//! * **a 16-bit-bus cost model** — every instruction word fetched and
//!   every data access is charged bus time, and multiply/divide are long
//!   microcoded iterations (the 68000 took ~70 clocks for `MULS`).
//!
//! MC is *not* binary-compatible with the 68000 (see DESIGN.md §5) — it
//! reproduces the structural properties the paper's comparison relies on
//! with a clean encoding.
//!
//! ```
//! use risc1_m68::{McAsm, McCpu, McConfig, McOp, Ea};
//!
//! let mut a = McAsm::new();
//! a.emit(McOp::Move, Ea::Imm(40), Ea::D(0));
//! a.emit(McOp::Add, Ea::Imm(2), Ea::D(0));
//! a.emit0(McOp::Halt);
//! let prog = a.finish().unwrap();
//! let mut cpu = McCpu::new(McConfig::default());
//! cpu.load_program(&prog).unwrap();
//! cpu.run().unwrap();
//! assert_eq!(cpu.result(), 42);
//! ```

pub mod builder;
pub mod cpu;
pub mod disasm;
pub mod isa;

pub use builder::{McAsm, McBuildError, McLabel, McProgram};
pub use cpu::{McConfig, McCpu, McError, McStats};
pub use disasm::disassemble as disassemble_mc;
pub use isa::{Ea, McCc, McOp};
