//! Word-accurate MC program builder with labels.

use crate::isa::{Ea, McOp};
use std::collections::HashMap;
use std::fmt;

/// A forward-referenceable label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct McLabel(usize);

/// A finished MC program: 16-bit instruction words plus data images.
#[derive(Debug, Clone, Default)]
pub struct McProgram {
    /// Instruction stream, one `u16` per word.
    pub words: Vec<u16>,
    /// Data images (absolute address, bytes).
    pub data: Vec<(u32, Vec<u8>)>,
    /// Symbols (name → byte offset).
    pub symbols: HashMap<String, u32>,
}

impl McProgram {
    /// Static code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.words.len() as u64 * 2
    }

    /// The code as a little-endian byte image.
    pub fn code_image(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 2);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Adds a data image.
    pub fn add_data(&mut self, addr: u32, bytes: Vec<u8>) {
        self.data.push((addr, bytes));
    }
}

/// A build failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McBuildError {
    /// A referenced label was never bound.
    UnboundLabel(McLabel),
    /// A branch displacement exceeded 16 bits.
    DispOutOfRange {
        /// The target label.
        label: McLabel,
        /// The displacement in bytes.
        delta: i64,
    },
}

impl fmt::Display for McBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McBuildError::UnboundLabel(l) => write!(f, "label {l:?} never bound"),
            McBuildError::DispOutOfRange { label, delta } => {
                write!(f, "displacement {delta} to {label:?} exceeds 16 bits")
            }
        }
    }
}

impl std::error::Error for McBuildError {}

/// Incremental builder.
#[derive(Debug, Default)]
pub struct McAsm {
    words: Vec<u16>,
    labels: Vec<Option<u32>>,
    /// (word index of the disp16 extension, label)
    fixups: Vec<(usize, McLabel)>,
    symbols: HashMap<String, u32>,
}

impl McAsm {
    /// An empty builder.
    pub fn new() -> McAsm {
        McAsm::default()
    }

    /// Current byte offset.
    pub fn here(&self) -> u32 {
        self.words.len() as u32 * 2
    }

    /// Allocates an unbound label.
    pub fn new_label(&mut self) -> McLabel {
        self.labels.push(None);
        McLabel(self.labels.len() - 1)
    }

    /// Binds `label` here.
    pub fn bind(&mut self, label: McLabel) {
        debug_assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Records a symbol here.
    pub fn symbol(&mut self, name: &str) {
        self.symbols.insert(name.to_string(), self.here());
    }

    fn base_word(op: McOp, src: u8, dst: u8) -> u16 {
        u16::from(op as u8) << 8 | u16::from(dst & 0xf) << 4 | u16::from(src & 0xf)
    }

    /// Emits a two-operand instruction.
    pub fn emit(&mut self, op: McOp, src: Ea, dst: Ea) {
        debug_assert!(op.has_src() && op.has_dst(), "{op} operand shape");
        self.words.push(Self::base_word(op, src.spec(), dst.spec()));
        src.encode_ext(&mut self.words);
        dst.encode_ext(&mut self.words);
    }

    /// Emits a source-only instruction (`tst`).
    pub fn emit_src(&mut self, op: McOp, src: Ea) {
        debug_assert!(op.has_src() && !op.has_dst(), "{op} operand shape");
        self.words.push(Self::base_word(op, src.spec(), 0));
        src.encode_ext(&mut self.words);
    }

    /// Emits a destination-only instruction (`clr`).
    pub fn emit_dst(&mut self, op: McOp, dst: Ea) {
        debug_assert!(!op.has_src() && op.has_dst(), "{op} operand shape");
        self.words.push(Self::base_word(op, 0, dst.spec()));
        dst.encode_ext(&mut self.words);
    }

    /// Emits a no-operand instruction (`halt`, `rts`, `unlk`).
    pub fn emit0(&mut self, op: McOp) {
        debug_assert!(!op.has_src() && !op.has_dst() && !op.has_ext16());
        self.words.push(Self::base_word(op, 0, 0));
    }

    /// Emits a branch or `jsr` to a label.
    pub fn branch(&mut self, op: McOp, label: McLabel) {
        debug_assert!(op.has_ext16() && op != McOp::Link && op != McOp::AddSp);
        self.words.push(Self::base_word(op, 0, 0));
        self.fixups.push((self.words.len(), label));
        self.words.push(0);
    }

    /// Emits `link #frame_bytes` or `addsp #n`.
    pub fn ext16(&mut self, op: McOp, v: i16) {
        debug_assert!(matches!(op, McOp::Link | McOp::AddSp));
        self.words.push(Self::base_word(op, 0, 0));
        self.words.push(v as u16);
    }

    /// Resolves fixups and returns the program.
    ///
    /// # Errors
    /// See [`McBuildError`].
    pub fn finish(self) -> Result<McProgram, McBuildError> {
        let mut words = self.words;
        for (pos, label) in self.fixups {
            let target = self.labels[label.0].ok_or(McBuildError::UnboundLabel(label))?;
            // Displacement relative to the word after the extension.
            let delta = i64::from(target) - (pos as i64 + 1) * 2;
            let d =
                i16::try_from(delta).map_err(|_| McBuildError::DispOutOfRange { label, delta })?;
            words[pos] = d as u16;
        }
        Ok(McProgram {
            words,
            data: Vec::new(),
            symbols: self.symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_word_packs_fields() {
        let w = McAsm::base_word(McOp::Add, Ea::Imm16(5).spec(), Ea::D(3).spec());
        assert_eq!(w >> 8, McOp::Add as u16);
        assert_eq!(w >> 4 & 0xf, 3);
        assert_eq!(w & 0xf, 15);
    }

    #[test]
    fn instruction_sizes_vary() {
        let mut a = McAsm::new();
        a.emit(McOp::Move, Ea::D(0), Ea::D(1)); // 1 word
        a.emit(McOp::Move, Ea::Imm16(7), Ea::D(1)); // 2 words
        a.emit(McOp::Move, Ea::Abs(0x8000), Ea::Frame(-4)); // 1+2+1 words
        a.emit0(McOp::Halt);
        let p = a.finish().unwrap();
        assert_eq!(p.words.len(), 1 + 2 + 4 + 1);
        assert_eq!(p.code_bytes(), 16);
    }

    #[test]
    fn branches_resolve_forward_and_back() {
        let mut a = McAsm::new();
        let top = a.new_label();
        let out = a.new_label();
        a.bind(top);
        a.emit_src(McOp::Tst, Ea::D(0)); // 2 bytes
        a.branch(McOp::Beq, out); // 4 bytes: disp at words[2]
        a.branch(McOp::Bra, top); // disp at words[4]
        a.bind(out);
        a.emit0(McOp::Halt);
        let p = a.finish().unwrap();
        // beq: target byte 10, after-ext byte 6 → +4
        assert_eq!(p.words[2] as i16, 4);
        // bra: target 0, after-ext byte 10 → −10
        assert_eq!(p.words[4] as i16, -10);
    }

    #[test]
    fn unbound_label_reported() {
        let mut a = McAsm::new();
        let l = a.new_label();
        a.branch(McOp::Bra, l);
        assert!(matches!(a.finish(), Err(McBuildError::UnboundLabel(_))));
    }
}
