//! The MC instruction set: 16-bit base words plus extension words.
//!
//! Base word layout: `[opcode:8][dst spec:4][src spec:4]`. Each spec may
//! demand extension words, which follow the base word src-first:
//!
//! | spec | meaning | extension |
//! |------|---------|-----------|
//! | 0–5  | data register `D0`–`D5` | — |
//! | 6    | `(A0)` memory deferred | — |
//! | 7    | `(A1)` memory deferred | — |
//! | 8    | address register `A0` | — |
//! | 9    | address register `A1` | — |
//! | 10   | `-(SP)` push | — |
//! | 11   | `(SP)+` pop | — |
//! | 12   | `d16(FP)` frame slot | 1 word |
//! | 13   | `abs32` absolute address | 2 words |
//! | 14   | `imm32` immediate | 2 words |
//! | 15   | `imm16` sign-extended immediate | 1 word |
//!
//! Branches, `JSR`, `LINK` and `ADDSP` carry one extension word
//! (displacement or count) and leave the spec nibbles zero.

use std::fmt;

/// An effective address (operand) of an MC instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ea {
    /// Data register `D0`–`D5`.
    D(u8),
    /// Memory at `(A0)` or `(A1)` (index 0 or 1).
    Ind(u8),
    /// Address register `A0` or `A1` (index 0 or 1).
    A(u8),
    /// Push: `-(SP)`.
    Push,
    /// Pop: `(SP)+`.
    Pop,
    /// Frame slot `d16(FP)`.
    Frame(i16),
    /// Absolute 32-bit address.
    Abs(u32),
    /// 32-bit immediate.
    Imm(u32),
    /// 16-bit sign-extended immediate (half the size of `Imm`).
    Imm16(i16),
}

impl Ea {
    /// The spec nibble.
    pub fn spec(&self) -> u8 {
        match self {
            Ea::D(n) => {
                debug_assert!(*n < 6);
                *n
            }
            Ea::Ind(n) => 6 + (n & 1),
            Ea::A(n) => 8 + (n & 1),
            Ea::Push => 10,
            Ea::Pop => 11,
            Ea::Frame(_) => 12,
            Ea::Abs(_) => 13,
            Ea::Imm(_) => 14,
            Ea::Imm16(_) => 15,
        }
    }

    /// Extension words this operand contributes.
    pub fn ext_words(&self) -> usize {
        match self {
            Ea::Frame(_) | Ea::Imm16(_) => 1,
            Ea::Abs(_) | Ea::Imm(_) => 2,
            _ => 0,
        }
    }

    /// Appends the extension words.
    pub fn encode_ext(&self, out: &mut Vec<u16>) {
        match *self {
            Ea::Frame(d) => out.push(d as u16),
            Ea::Imm16(v) => out.push(v as u16),
            Ea::Abs(v) | Ea::Imm(v) => {
                out.push(v as u16);
                out.push((v >> 16) as u16);
            }
            _ => {}
        }
    }

    /// Whether evaluating this operand as a source reads memory.
    pub fn reads_memory(&self) -> bool {
        matches!(self, Ea::Ind(_) | Ea::Pop | Ea::Frame(_) | Ea::Abs(_))
    }

    /// The cheapest immediate form for a constant.
    pub fn imm(v: i32) -> Ea {
        match i16::try_from(v) {
            Ok(s) => Ea::Imm16(s),
            Err(_) => Ea::Imm(v as u32),
        }
    }
}

impl fmt::Display for Ea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Ea::D(n) => write!(f, "d{n}"),
            Ea::Ind(n) => write!(f, "(a{n})"),
            Ea::A(n) => write!(f, "a{n}"),
            Ea::Push => write!(f, "-(sp)"),
            Ea::Pop => write!(f, "(sp)+"),
            Ea::Frame(d) => write!(f, "{d}(fp)"),
            Ea::Abs(a) => write!(f, "@{a:#x}"),
            Ea::Imm(v) => write!(f, "#{}", v as i32),
            Ea::Imm16(v) => write!(f, "#{v}"),
        }
    }
}

/// Branch conditions (signed comparisons suffice for the IR backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum McCc {
    /// Z.
    Eq,
    /// !Z.
    Ne,
    /// N ^ V.
    Lt,
    /// Z | (N ^ V).
    Le,
    /// !Z & !(N ^ V).
    Gt,
    /// !(N ^ V).
    Ge,
}

macro_rules! mc_ops {
    ($(($v:ident, $name:literal, $code:expr, $nsrc:expr, $ndst:expr, $ext:expr, $extra:expr, $d:literal)),* $(,)?) => {
        /// An MC opcode.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum McOp {
            $(#[doc = $d] $v = $code,)*
        }

        impl McOp {
            /// Every opcode.
            pub const ALL: &'static [McOp] = &[$(McOp::$v),*];

            /// Mnemonic.
            pub fn name(self) -> &'static str {
                match self { $(McOp::$v => $name,)* }
            }

            /// Whether the instruction takes a source operand.
            pub fn has_src(self) -> bool {
                match self { $(McOp::$v => $nsrc,)* }
            }

            /// Whether the instruction takes a destination operand.
            pub fn has_dst(self) -> bool {
                match self { $(McOp::$v => $ndst,)* }
            }

            /// Whether the opcode carries its own 16-bit extension word
            /// (branch displacement, frame size, stack adjust).
            pub fn has_ext16(self) -> bool {
                match self { $(McOp::$v => $ext,)* }
            }

            /// Extra microcycles beyond fetch + operand traffic.
            pub fn extra_cycles(self) -> u64 {
                match self { $(McOp::$v => $extra,)* }
            }

            /// Decodes an opcode byte.
            pub fn from_code(b: u8) -> Option<McOp> {
                match b { $($code => Some(McOp::$v),)* _ => None }
            }
        }
    };
}

mc_ops! {
    (Halt,  "halt",  0x00, false, false, false, 0,  "stop the machine"),
    (Move,  "move",  0x01, true,  true,  false, 0,  "dst := src (32-bit), sets N/Z"),
    (MoveB, "move.b",0x02, true,  true,  false, 0,  "byte move: register destinations zero-extend"),
    (Add,   "add",   0x10, true,  true,  false, 0,  "dst := dst + src"),
    (Sub,   "sub",   0x11, true,  true,  false, 0,  "dst := dst - src"),
    (Mul,   "muls",  0x12, true,  true,  false, 30, "dst := dst * src (long microcoded multiply)"),
    (Divs,  "divs",  0x13, true,  true,  false, 60, "dst := dst / src (long microcoded divide)"),
    (And,   "and",   0x14, true,  true,  false, 0,  "dst := dst & src"),
    (Or,    "or",    0x15, true,  true,  false, 0,  "dst := dst | src"),
    (Eor,   "eor",   0x16, true,  true,  false, 0,  "dst := dst ^ src"),
    (Lsl,   "lsl",   0x17, true,  true,  false, 1,  "dst := dst << (src & 31)"),
    (Asr,   "asr",   0x18, true,  true,  false, 1,  "dst := dst >> (src & 31) arithmetic"),
    (Cmp,   "cmp",   0x20, true,  true,  false, 0,  "flags := dst - src"),
    (Tst,   "tst",   0x21, true,  false, false, 0,  "flags := src - 0"),
    (Clr,   "clr",   0x22, false, true,  false, 0,  "dst := 0"),
    (Bra,   "bra",   0x30, false, false, true,  2,  "branch always (disp16)"),
    (Beq,   "beq",   0x31, false, false, true,  0,  "branch if equal"),
    (Bne,   "bne",   0x32, false, false, true,  0,  "branch if not equal"),
    (Blt,   "blt",   0x33, false, false, true,  0,  "branch if less (signed)"),
    (Ble,   "ble",   0x34, false, false, true,  0,  "branch if less or equal"),
    (Bgt,   "bgt",   0x35, false, false, true,  0,  "branch if greater"),
    (Bge,   "bge",   0x36, false, false, true,  0,  "branch if greater or equal"),
    (Jsr,   "jsr",   0x40, false, false, true,  4,  "push return address, jump (disp16)"),
    (Rts,   "rts",   0x41, false, false, false, 4,  "pop return address, jump"),
    (Link,  "link",  0x42, false, false, true,  2,  "push FP, FP := SP, SP -= n"),
    (Unlk,  "unlk",  0x43, false, false, false, 2,  "SP := FP, FP := pop"),
    (AddSp, "addsp", 0x44, false, false, true,  0,  "SP += n (signed; pops call arguments)"),
}

impl McOp {
    /// The branch condition, if conditional.
    pub fn condition(self) -> Option<McCc> {
        Some(match self {
            McOp::Beq => McCc::Eq,
            McOp::Bne => McCc::Ne,
            McOp::Blt => McCc::Lt,
            McOp::Ble => McCc::Le,
            McOp::Bgt => McCc::Gt,
            McOp::Bge => McCc::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for McOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn opcode_bytes_unique_and_roundtrip() {
        let set: HashSet<u8> = McOp::ALL.iter().map(|o| *o as u8).collect();
        assert_eq!(set.len(), McOp::ALL.len());
        for op in McOp::ALL {
            assert_eq!(McOp::from_code(*op as u8), Some(*op));
        }
        assert_eq!(McOp::from_code(0xff), None);
    }

    #[test]
    fn spec_nibbles_are_distinct() {
        let eas = [
            Ea::D(0),
            Ea::D(5),
            Ea::Ind(0),
            Ea::Ind(1),
            Ea::A(0),
            Ea::A(1),
            Ea::Push,
            Ea::Pop,
            Ea::Frame(4),
            Ea::Abs(8),
            Ea::Imm(9),
            Ea::Imm16(3),
        ];
        let specs: HashSet<u8> = eas.iter().map(Ea::spec).collect();
        assert_eq!(specs.len(), eas.len());
        assert!(eas.iter().all(|e| e.spec() < 16));
    }

    #[test]
    fn extension_word_counts() {
        assert_eq!(Ea::D(1).ext_words(), 0);
        assert_eq!(Ea::Frame(-8).ext_words(), 1);
        assert_eq!(Ea::Imm16(100).ext_words(), 1);
        assert_eq!(Ea::Abs(0x12345).ext_words(), 2);
        assert_eq!(Ea::Imm(0x12345).ext_words(), 2);
    }

    #[test]
    fn imm_picks_the_short_form() {
        assert_eq!(Ea::imm(100), Ea::Imm16(100));
        assert_eq!(Ea::imm(-4), Ea::Imm16(-4));
        assert_eq!(Ea::imm(70_000), Ea::Imm(70_000));
        assert_eq!(Ea::imm(-70_000), Ea::Imm((-70_000i32) as u32));
    }

    #[test]
    fn conditions_only_on_conditional_branches() {
        assert_eq!(McOp::Bra.condition(), None);
        assert_eq!(McOp::Beq.condition(), Some(McCc::Eq));
        assert_eq!(McOp::Add.condition(), None);
    }
}
