//! The MC processor: 16-bit-word decode, operand resolution, the
//! stack-frame calling convention, and the 16-bit-bus cost model.

use crate::builder::McProgram;
use crate::isa::{Ea, McCc, McOp};
use risc1_core::{MemError, Memory};
use std::collections::HashMap;
use std::fmt;

/// Configuration of an MC machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McConfig {
    /// Memory size in bytes.
    pub mem_bytes: usize,
    /// Load address for programs.
    pub code_base: u32,
    /// Initial stack pointer (grows down).
    pub stack_top: u32,
    /// Instruction budget.
    pub fuel: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            mem_bytes: 1 << 20,
            code_base: 0x1000,
            stack_top: 0xe0000,
            fuel: 200_000_000,
        }
    }
}

/// Cycles charged per 16-bit instruction word fetched over the bus.
pub const WORD_FETCH: u64 = 2;
/// Cycles per 32-bit data access (two bus transfers).
pub const LONG_ACCESS: u64 = 4;
/// Cycles per 8/16-bit data access.
pub const SHORT_ACCESS: u64 = 2;

/// Why an MC program failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McError {
    /// Memory fault.
    Mem {
        /// PC of the faulting instruction.
        pc: u32,
        /// Underlying fault.
        err: MemError,
    },
    /// Undefined opcode or spec nibble.
    Decode {
        /// PC of the instruction.
        pc: u32,
        /// The offending base word.
        word: u16,
    },
    /// An immediate used as a destination.
    WriteToImmediate {
        /// PC of the instruction.
        pc: u32,
    },
    /// Division by zero.
    DivideByZero {
        /// PC of the instruction.
        pc: u32,
    },
    /// `rts` with no frame on the stack.
    RtsAtTopLevel {
        /// PC of the instruction.
        pc: u32,
    },
    /// Fuel exhausted.
    OutOfFuel,
    /// Stepped after halt.
    AlreadyHalted,
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Mem { pc, err } => write!(f, "memory fault at pc {pc:#010x}: {err}"),
            McError::Decode { pc, word } => {
                write!(f, "undecodable word {word:#06x} at pc {pc:#010x}")
            }
            McError::WriteToImmediate { pc } => {
                write!(f, "immediate destination at pc {pc:#010x}")
            }
            McError::DivideByZero { pc } => write!(f, "division by zero at pc {pc:#010x}"),
            McError::RtsAtTopLevel { pc } => write!(f, "rts with empty stack at pc {pc:#010x}"),
            McError::OutOfFuel => write!(f, "instruction fuel exhausted"),
            McError::AlreadyHalted => write!(f, "mc cpu is halted"),
        }
    }
}

impl std::error::Error for McError {}

/// MC flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McFlags {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Signed overflow.
    pub v: bool,
}

impl McCc {
    /// Evaluates against the flags.
    pub fn eval(self, f: McFlags) -> bool {
        let lt = f.n ^ f.v;
        match self {
            McCc::Eq => f.z,
            McCc::Ne => !f.z,
            McCc::Lt => lt,
            McCc::Le => f.z || lt,
            McCc::Gt => !f.z && !lt,
            McCc::Ge => !lt,
        }
    }
}

/// Run statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct McStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// Instruction-stream bytes fetched.
    pub ifetch_bytes: u64,
    /// Data reads.
    pub data_reads: u64,
    /// Data writes.
    pub data_writes: u64,
    /// Calls (`jsr`).
    pub calls: u64,
    /// Returns (`rts`).
    pub rets: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Deepest call depth.
    pub max_depth: u64,
    /// Dynamic opcode histogram.
    pub op_counts: HashMap<McOp, u64>,
}

impl McStats {
    /// Average cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Total data traffic.
    pub fn data_traffic(&self) -> u64 {
        self.data_reads + self.data_writes
    }
}

/// A resolved operand.
#[derive(Debug, Clone, Copy)]
enum Loc {
    D(u8),
    A(u8),
    Mem(u32),
    Val(u32),
}

/// The MC processor.
#[derive(Debug, Clone)]
pub struct McCpu {
    cfg: McConfig,
    /// Main memory (public for inspection and argument setup).
    pub mem: Memory,
    d: [u32; 6],
    a: [u32; 2],
    sp: u32,
    fp: u32,
    pc: u32,
    flags: McFlags,
    depth: u64,
    halted: bool,
    stats: McStats,
    /// Data cycles accumulated during the current step.
    step_data_cycles: u64,
}

impl McCpu {
    /// An MC machine at reset.
    pub fn new(cfg: McConfig) -> McCpu {
        let mem = Memory::new(cfg.mem_bytes);
        let (sp, pc) = (cfg.stack_top, cfg.code_base);
        McCpu {
            cfg,
            mem,
            d: [0; 6],
            a: [0; 2],
            sp,
            fp: sp,
            pc,
            flags: McFlags::default(),
            depth: 0,
            halted: false,
            stats: McStats::default(),
            step_data_cycles: 0,
        }
    }

    /// Loads a program.
    ///
    /// # Errors
    /// Fails if an image does not fit.
    pub fn load_program(&mut self, prog: &McProgram) -> Result<(), MemError> {
        self.mem
            .load_image(self.cfg.code_base, &prog.code_image())?;
        for (addr, bytes) in &prog.data {
            self.mem.load_image(*addr, bytes)?;
        }
        self.pc = self.cfg.code_base;
        self.mem.reset_traffic();
        Ok(())
    }

    /// Reads data register `Dn`.
    pub fn dreg(&self, n: u8) -> u32 {
        self.d[n as usize]
    }

    /// The conventional return value (`D0`).
    pub fn result(&self) -> i32 {
        self.d[0] as i32
    }

    /// Whether `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Statistics (memory traffic synced).
    pub fn stats(&self) -> McStats {
        let mut s = self.stats.clone();
        s.data_reads = self.mem.traffic().reads;
        s.data_writes = self.mem.traffic().writes;
        s
    }

    /// Runs to `halt`.
    ///
    /// # Errors
    /// Any [`McError`].
    pub fn run(&mut self) -> Result<(), McError> {
        while !self.halted {
            self.step()?;
        }
        Ok(())
    }

    fn fetch_word(&mut self, cur: &mut u32, pc: u32) -> Result<u16, McError> {
        let lo = self
            .mem
            .peek_u8(*cur)
            .map_err(|err| McError::Mem { pc, err })?;
        let hi = self
            .mem
            .peek_u8(*cur + 1)
            .map_err(|err| McError::Mem { pc, err })?;
        *cur += 2;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    fn decode_ea(&mut self, spec: u8, cur: &mut u32, pc: u32) -> Result<Ea, McError> {
        Ok(match spec {
            0..=5 => Ea::D(spec),
            6 | 7 => Ea::Ind(spec - 6),
            8 | 9 => Ea::A(spec - 8),
            10 => Ea::Push,
            11 => Ea::Pop,
            12 => Ea::Frame(self.fetch_word(cur, pc)? as i16),
            13 | 14 => {
                let lo = u32::from(self.fetch_word(cur, pc)?);
                let hi = u32::from(self.fetch_word(cur, pc)?);
                let v = lo | hi << 16;
                if spec == 13 {
                    Ea::Abs(v)
                } else {
                    Ea::Imm(v)
                }
            }
            _ => Ea::Imm16(self.fetch_word(cur, pc)? as i16),
        })
    }

    fn resolve(&mut self, ea: Ea) -> Loc {
        match ea {
            Ea::D(n) => Loc::D(n),
            Ea::A(n) => Loc::A(n),
            Ea::Ind(n) => Loc::Mem(self.a[n as usize]),
            Ea::Push => {
                self.sp = self.sp.wrapping_sub(4);
                Loc::Mem(self.sp)
            }
            Ea::Pop => {
                let addr = self.sp;
                self.sp = self.sp.wrapping_add(4);
                Loc::Mem(addr)
            }
            Ea::Frame(d) => Loc::Mem(self.fp.wrapping_add(d as i32 as u32)),
            Ea::Abs(a) => Loc::Mem(a),
            Ea::Imm(v) => Loc::Val(v),
            Ea::Imm16(v) => Loc::Val(v as i32 as u32),
        }
    }

    fn read(&mut self, ea: Ea, byte: bool, pc: u32) -> Result<u32, McError> {
        match self.resolve(ea) {
            Loc::Val(v) => Ok(v),
            Loc::D(n) => Ok(if byte {
                self.d[n as usize] & 0xff
            } else {
                self.d[n as usize]
            }),
            Loc::A(n) => Ok(self.a[n as usize]),
            Loc::Mem(addr) => {
                if byte {
                    self.step_data_cycles += SHORT_ACCESS;
                    self.mem
                        .read_u8(addr)
                        .map(u32::from)
                        .map_err(|err| McError::Mem { pc, err })
                } else {
                    self.step_data_cycles += LONG_ACCESS;
                    self.mem
                        .read_u32(addr)
                        .map_err(|err| McError::Mem { pc, err })
                }
            }
        }
    }

    fn write(&mut self, ea: Ea, v: u32, byte: bool, pc: u32) -> Result<(), McError> {
        match self.resolve(ea) {
            Loc::Val(_) => Err(McError::WriteToImmediate { pc }),
            Loc::D(n) => {
                // Byte writes to data registers zero-extend — this is the
                // machine's `movzbl` equivalent, used for byte arrays.
                self.d[n as usize] = if byte { v & 0xff } else { v };
                Ok(())
            }
            Loc::A(n) => {
                self.a[n as usize] = v;
                Ok(())
            }
            Loc::Mem(addr) => {
                if byte {
                    self.step_data_cycles += SHORT_ACCESS;
                    self.mem
                        .write_u8(addr, v as u8)
                        .map_err(|err| McError::Mem { pc, err })
                } else {
                    self.step_data_cycles += LONG_ACCESS;
                    self.mem
                        .write_u32(addr, v)
                        .map_err(|err| McError::Mem { pc, err })
                }
            }
        }
    }

    fn push_long(&mut self, v: u32, pc: u32) -> Result<(), McError> {
        self.sp = self.sp.wrapping_sub(4);
        self.step_data_cycles += LONG_ACCESS;
        self.mem
            .write_u32(self.sp, v)
            .map_err(|err| McError::Mem { pc, err })
    }

    fn pop_long(&mut self, pc: u32) -> Result<u32, McError> {
        let v = self
            .mem
            .read_u32(self.sp)
            .map_err(|err| McError::Mem { pc, err })?;
        self.step_data_cycles += LONG_ACCESS;
        self.sp = self.sp.wrapping_add(4);
        Ok(v)
    }

    fn set_nz(&mut self, v: u32) {
        self.flags = McFlags {
            n: (v as i32) < 0,
            z: v == 0,
            v: false,
        };
    }

    /// Executes one instruction.
    ///
    /// # Errors
    /// See [`McError`].
    pub fn step(&mut self) -> Result<(), McError> {
        if self.halted {
            return Err(McError::AlreadyHalted);
        }
        if self.stats.instructions >= self.cfg.fuel {
            return Err(McError::OutOfFuel);
        }
        let pc = self.pc;
        let mut cur = pc;
        let base = self.fetch_word(&mut cur, pc)?;
        let op = McOp::from_code((base >> 8) as u8).ok_or(McError::Decode { pc, word: base })?;
        let src_spec = (base & 0xf) as u8;
        let dst_spec = (base >> 4 & 0xf) as u8;

        let src = if op.has_src() {
            Some(self.decode_ea(src_spec, &mut cur, pc)?)
        } else {
            None
        };
        let dst = if op.has_dst() {
            Some(self.decode_ea(dst_spec, &mut cur, pc)?)
        } else {
            None
        };
        let ext = if op.has_ext16() {
            Some(self.fetch_word(&mut cur, pc)? as i16)
        } else {
            None
        };
        let insn_end = cur;
        let fetched_words = u64::from(insn_end - pc) / 2;
        self.stats.ifetch_bytes += fetched_words * 2;
        self.step_data_cycles = 0;

        let mut next_pc = insn_end;
        let mut extra = op.extra_cycles();

        match op {
            McOp::Halt => self.halted = true,
            McOp::Move => {
                let v = self.read(src.unwrap(), false, pc)?;
                self.write(dst.unwrap(), v, false, pc)?;
                self.set_nz(v);
            }
            McOp::MoveB => {
                let v = self.read(src.unwrap(), true, pc)?;
                self.write(dst.unwrap(), v, true, pc)?;
                self.set_nz(v & 0xff);
            }
            McOp::Clr => {
                self.write(dst.unwrap(), 0, false, pc)?;
                self.set_nz(0);
            }
            McOp::Add
            | McOp::Sub
            | McOp::Mul
            | McOp::Divs
            | McOp::And
            | McOp::Or
            | McOp::Eor
            | McOp::Lsl
            | McOp::Asr => {
                let s = self.read(src.unwrap(), false, pc)?;
                let dst_ea = dst.unwrap();
                let d = self.read(dst_ea, false, pc)?;
                let v = match op {
                    McOp::Add => {
                        let (v, _) = d.overflowing_add(s);
                        self.flags = McFlags {
                            n: (v as i32) < 0,
                            z: v == 0,
                            v: ((d ^ v) & (s ^ v)) >> 31 != 0,
                        };
                        v
                    }
                    McOp::Sub => {
                        let v = d.wrapping_sub(s);
                        self.flags = McFlags {
                            n: (v as i32) < 0,
                            z: v == 0,
                            v: ((d ^ s) & (d ^ v)) >> 31 != 0,
                        };
                        v
                    }
                    McOp::Mul => {
                        let v = (d as i32).wrapping_mul(s as i32) as u32;
                        self.set_nz(v);
                        v
                    }
                    McOp::Divs => {
                        if s == 0 {
                            return Err(McError::DivideByZero { pc });
                        }
                        let v = (d as i32).wrapping_div(s as i32) as u32;
                        self.set_nz(v);
                        v
                    }
                    McOp::And => {
                        let v = d & s;
                        self.set_nz(v);
                        v
                    }
                    McOp::Or => {
                        let v = d | s;
                        self.set_nz(v);
                        v
                    }
                    McOp::Eor => {
                        let v = d ^ s;
                        self.set_nz(v);
                        v
                    }
                    McOp::Lsl => {
                        let v = d << (s & 31);
                        self.set_nz(v);
                        v
                    }
                    _ => {
                        let v = ((d as i32) >> (s & 31)) as u32;
                        self.set_nz(v);
                        v
                    }
                };
                // Read-modify-write destinations resolve once more for the
                // write; Pop/Push destinations would double their side
                // effect, so the backend never uses them as RMW targets.
                self.write(dst_ea, v, false, pc)?;
            }
            McOp::Cmp => {
                let s = self.read(src.unwrap(), false, pc)?;
                let d = self.read(dst.unwrap(), false, pc)?;
                let v = d.wrapping_sub(s);
                self.flags = McFlags {
                    n: (v as i32) < 0,
                    z: v == 0,
                    v: ((d ^ s) & (d ^ v)) >> 31 != 0,
                };
            }
            McOp::Tst => {
                let s = self.read(src.unwrap(), false, pc)?;
                self.set_nz(s);
            }
            McOp::Bra => {
                next_pc = insn_end.wrapping_add(ext.unwrap() as i32 as u32);
                self.stats.taken_branches += 1;
            }
            McOp::Beq | McOp::Bne | McOp::Blt | McOp::Ble | McOp::Bgt | McOp::Bge => {
                if op.condition().expect("conditional").eval(self.flags) {
                    next_pc = insn_end.wrapping_add(ext.unwrap() as i32 as u32);
                    self.stats.taken_branches += 1;
                    extra += 2;
                }
            }
            McOp::Jsr => {
                self.push_long(insn_end, pc)?;
                next_pc = insn_end.wrapping_add(ext.unwrap() as i32 as u32);
                self.depth += 1;
                self.stats.max_depth = self.stats.max_depth.max(self.depth);
                self.stats.calls += 1;
                self.stats.taken_branches += 1;
            }
            McOp::Rts => {
                if self.depth == 0 {
                    return Err(McError::RtsAtTopLevel { pc });
                }
                next_pc = self.pop_long(pc)?;
                self.depth -= 1;
                self.stats.rets += 1;
                self.stats.taken_branches += 1;
            }
            McOp::Link => {
                let fp = self.fp;
                self.push_long(fp, pc)?;
                self.fp = self.sp;
                self.sp = self.sp.wrapping_sub(ext.unwrap() as i32 as u32);
            }
            McOp::Unlk => {
                self.sp = self.fp;
                self.fp = self.pop_long(pc)?;
            }
            McOp::AddSp => {
                self.sp = self.sp.wrapping_add(ext.unwrap() as i32 as u32);
            }
        }

        self.stats.cycles += fetched_words * WORD_FETCH + self.step_data_cycles + extra;
        self.stats.instructions += 1;
        *self.stats.op_counts.entry(op).or_insert(0) += 1;
        self.pc = next_pc;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::McAsm;

    fn run(build: impl FnOnce(&mut McAsm)) -> McCpu {
        let mut a = McAsm::new();
        build(&mut a);
        let prog = a.finish().unwrap();
        let mut cpu = McCpu::new(McConfig::default());
        cpu.load_program(&prog).unwrap();
        cpu.run().unwrap();
        cpu
    }

    #[test]
    fn move_add_and_flags() {
        let cpu = run(|a| {
            a.emit(McOp::Move, Ea::Imm16(40), Ea::D(0));
            a.emit(McOp::Add, Ea::Imm16(2), Ea::D(0));
            a.emit0(McOp::Halt);
        });
        assert_eq!(cpu.result(), 42);
    }

    #[test]
    fn memory_operands_and_absolute_addressing() {
        let cpu = run(|a| {
            a.emit(McOp::Move, Ea::Imm16(7), Ea::Abs(0x2000));
            a.emit(McOp::Move, Ea::Abs(0x2000), Ea::D(1));
            a.emit(McOp::Add, Ea::Abs(0x2000), Ea::D(1));
            a.emit(McOp::Move, Ea::D(1), Ea::D(0));
            a.emit0(McOp::Halt);
        });
        assert_eq!(cpu.result(), 14);
    }

    #[test]
    fn byte_moves_zero_extend_into_registers() {
        let cpu = run(|a| {
            a.emit(McOp::Move, Ea::Imm16(-2), Ea::D(1)); // 0xFFFF_FFFE
            a.emit(McOp::Move, Ea::Imm(0x2000), Ea::A(0));
            a.emit(McOp::MoveB, Ea::D(1), Ea::Ind(0)); // store byte 0xFE
            a.emit(McOp::MoveB, Ea::Ind(0), Ea::D(0)); // load zero-extended
            a.emit0(McOp::Halt);
        });
        assert_eq!(cpu.result(), 0xfe);
    }

    #[test]
    fn push_pop_and_stack_balance() {
        let cpu = run(|a| {
            a.emit(McOp::Move, Ea::Imm16(11), Ea::Push);
            a.emit(McOp::Move, Ea::Imm16(31), Ea::Push);
            a.emit(McOp::Move, Ea::Pop, Ea::D(0)); // 31
            a.emit(McOp::Add, Ea::Pop, Ea::D(0)); // +11
            a.emit0(McOp::Halt);
        });
        assert_eq!(cpu.result(), 42);
        assert_eq!(cpu.sp, McConfig::default().stack_top);
    }

    #[test]
    fn loop_with_branches() {
        // sum 1..=10
        let cpu = run(|a| {
            let top = a.new_label();
            a.emit_dst(McOp::Clr, Ea::D(0));
            a.emit(McOp::Move, Ea::Imm16(10), Ea::D(1));
            a.bind(top);
            a.emit(McOp::Add, Ea::D(1), Ea::D(0));
            a.emit(McOp::Sub, Ea::Imm16(1), Ea::D(1));
            a.emit_src(McOp::Tst, Ea::D(1));
            a.branch(McOp::Bgt, top);
            a.emit0(McOp::Halt);
        });
        assert_eq!(cpu.result(), 55);
    }

    #[test]
    fn jsr_link_frame_and_rts() {
        // f(x) = x - 8, locals in the frame; called with 50.
        let cpu = run(|a| {
            let f = a.new_label();
            a.emit(McOp::Move, Ea::Imm16(50), Ea::Push); // arg
            a.branch(McOp::Jsr, f);
            a.ext16(McOp::AddSp, 4); // pop arg
            a.emit0(McOp::Halt);

            a.bind(f);
            a.ext16(McOp::Link, 4); // one local
                                    // arg at fp+8 (saved fp at fp, ret addr at fp+4)
            a.emit(McOp::Move, Ea::Frame(8), Ea::D(0));
            a.emit(McOp::Sub, Ea::Imm16(8), Ea::D(0));
            a.emit(McOp::Move, Ea::D(0), Ea::Frame(-4)); // spill to the local
            a.emit(McOp::Move, Ea::Frame(-4), Ea::D(0)); // and back
            a.emit0(McOp::Unlk);
            a.emit0(McOp::Rts);
        });
        assert_eq!(cpu.result(), 42);
        let s = cpu.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.rets, 1);
        assert_eq!(cpu.sp, McConfig::default().stack_top, "stack balanced");
    }

    #[test]
    fn recursive_factorial() {
        let cpu = run(|a| {
            let fact = a.new_label();
            let rec = a.new_label();
            a.emit(McOp::Move, Ea::Imm16(10), Ea::Push);
            a.branch(McOp::Jsr, fact);
            a.ext16(McOp::AddSp, 4);
            a.emit0(McOp::Halt);

            a.bind(fact);
            a.ext16(McOp::Link, 0);
            a.emit(McOp::Move, Ea::Frame(8), Ea::D(1));
            a.emit(McOp::Cmp, Ea::Imm16(1), Ea::D(1)); // flags = n - 1
            a.branch(McOp::Bgt, rec);
            a.emit(McOp::Move, Ea::Imm16(1), Ea::D(0));
            a.emit0(McOp::Unlk);
            a.emit0(McOp::Rts);
            a.bind(rec);
            a.emit(McOp::Sub, Ea::Imm16(1), Ea::D(1));
            a.emit(McOp::Move, Ea::D(1), Ea::Push);
            a.branch(McOp::Jsr, fact);
            a.ext16(McOp::AddSp, 4);
            a.emit(McOp::Mul, Ea::Frame(8), Ea::D(0));
            a.emit0(McOp::Unlk);
            a.emit0(McOp::Rts);
        });
        assert_eq!(cpu.result(), 3_628_800);
        assert_eq!(cpu.stats().max_depth, 10);
    }

    #[test]
    fn cost_model_charges_words_and_accesses() {
        // move d0,d1: 1 word = 2 cycles.
        // move @0x2000,d0: 3 words + one long access = 6 + 4 = 10.
        let cheap = run(|a| {
            a.emit(McOp::Move, Ea::D(0), Ea::D(1));
            a.emit0(McOp::Halt);
        });
        let costly = run(|a| {
            a.emit(McOp::Move, Ea::Abs(0x2000), Ea::D(0));
            a.emit0(McOp::Halt);
        });
        assert_eq!(costly.stats().cycles - cheap.stats().cycles, 8);
    }

    #[test]
    fn errors_divide_rts_fuel_decode() {
        let mut a = McAsm::new();
        a.emit(McOp::Divs, Ea::Imm16(0), Ea::D(0));
        let prog = a.finish().unwrap();
        let mut cpu = McCpu::new(McConfig::default());
        cpu.load_program(&prog).unwrap();
        assert!(matches!(cpu.run(), Err(McError::DivideByZero { .. })));

        let mut a = McAsm::new();
        a.emit0(McOp::Rts);
        let prog = a.finish().unwrap();
        let mut cpu = McCpu::new(McConfig::default());
        cpu.load_program(&prog).unwrap();
        assert!(matches!(cpu.run(), Err(McError::RtsAtTopLevel { .. })));

        let mut cpu = McCpu::new(McConfig::default());
        cpu.load_program(&McProgram {
            words: vec![0xff00],
            ..McProgram::default()
        })
        .unwrap();
        assert!(matches!(cpu.run(), Err(McError::Decode { .. })));

        let mut a = McAsm::new();
        let top = a.new_label();
        a.bind(top);
        a.branch(McOp::Bra, top);
        let prog = a.finish().unwrap();
        let mut cpu = McCpu::new(McConfig {
            fuel: 50,
            ..McConfig::default()
        });
        cpu.load_program(&prog).unwrap();
        assert_eq!(cpu.run(), Err(McError::OutOfFuel));
    }

    #[test]
    fn shifts() {
        let cpu = run(|a| {
            a.emit(McOp::Move, Ea::Imm16(-64), Ea::D(0));
            a.emit(McOp::Asr, Ea::Imm16(3), Ea::D(0)); // -8
            a.emit(McOp::Lsl, Ea::Imm16(2), Ea::D(0)); // -32
            a.emit0(McOp::Halt);
        });
        assert_eq!(cpu.result(), -32);
    }
}
