//! Byte-accurate program builder for CX, with labels and branch fixups.
//!
//! The IR code generator and the tests construct CX programs through this
//! builder instead of a textual assembler: labels are allocated with
//! [`CxAsm::new_label`], bound with [`CxAsm::bind`], and every
//! `disp16`-carrying instruction referencing a label is patched when
//! [`CxAsm::finish`] resolves the stream.

use crate::isa::{Op, Operand};
use crate::program::CxProgram;
use std::collections::HashMap;
use std::fmt;

/// A forward-referenceable position in the instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A failure while building a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `finish` was called while a label was still unbound.
    UnboundLabel(Label),
    /// A branch displacement exceeded 16 signed bits.
    DispOutOfRange {
        /// The offending label.
        label: Label,
        /// The displacement that did not fit.
        delta: i64,
    },
    /// An instruction was emitted with the wrong number of operands.
    WrongOperandCount {
        /// The opcode.
        op: Op,
        /// Operands supplied.
        got: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label {l:?} never bound"),
            BuildError::DispOutOfRange { label, delta } => {
                write!(f, "displacement {delta} to {label:?} exceeds 16 bits")
            }
            BuildError::WrongOperandCount { op, got } => {
                write!(f, "`{op}` takes {} operands, got {got}", op.operand_count())
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental CX program builder.
#[derive(Debug, Default)]
pub struct CxAsm {
    bytes: Vec<u8>,
    labels: Vec<Option<u32>>,
    /// (byte position of a disp16 field, target label)
    fixups: Vec<(usize, Label)>,
    symbols: HashMap<String, u32>,
    errors: Vec<BuildError>,
}

impl CxAsm {
    /// A fresh, empty builder.
    pub fn new() -> CxAsm {
        CxAsm::default()
    }

    /// Current byte offset (where the next instruction will start).
    pub fn here(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Allocates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        debug_assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Records a symbol name at the current position (diagnostics only).
    pub fn symbol(&mut self, name: &str) {
        self.symbols.insert(name.to_string(), self.here());
    }

    /// Emits a non-branching instruction with its operand specifiers.
    pub fn emit(&mut self, op: Op, operands: &[Operand]) {
        debug_assert!(!op.has_disp16(), "use branch()/calls() for {op}");
        if operands.len() != op.operand_count() {
            self.errors.push(BuildError::WrongOperandCount {
                op,
                got: operands.len(),
            });
            return;
        }
        self.bytes.push(op as u8);
        for o in operands {
            o.encode(&mut self.bytes);
        }
    }

    /// Emits a zero-operand instruction (`halt`, `ret`).
    pub fn emit0(&mut self, op: Op) {
        self.emit(op, &[]);
    }

    /// Emits a conditional or unconditional branch to `label`.
    pub fn branch(&mut self, op: Op, label: Label) {
        debug_assert!(op.has_disp16() && op != Op::Calls, "not a branch: {op}");
        self.bytes.push(op as u8);
        self.fixups.push((self.bytes.len(), label));
        self.bytes.extend_from_slice(&[0, 0]);
    }

    /// Emits `calls #narg, label`.
    pub fn calls(&mut self, narg: u8, label: Label) {
        debug_assert!(narg < 64, "narg fits a short literal");
        self.bytes.push(Op::Calls as u8);
        Operand::Lit(narg).encode(&mut self.bytes);
        self.fixups.push((self.bytes.len(), label));
        self.bytes.extend_from_slice(&[0, 0]);
    }

    /// Resolves all fixups and returns the finished program.
    ///
    /// # Errors
    /// Reports the first deferred emission error, unbound label, or
    /// out-of-range displacement.
    pub fn finish(mut self) -> Result<CxProgram, BuildError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        for (pos, label) in self.fixups {
            let target = self.labels[label.0].ok_or(BuildError::UnboundLabel(label))?;
            // Displacement is relative to the first byte after the field.
            let delta = target as i64 - (pos as i64 + 2);
            let d =
                i16::try_from(delta).map_err(|_| BuildError::DispOutOfRange { label, delta })?;
            self.bytes[pos..pos + 2].copy_from_slice(&d.to_le_bytes());
        }
        Ok(CxProgram {
            bytes: self.bytes,
            entry_offset: 0,
            data: Vec::new(),
            symbols: self.symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::CReg;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = CxAsm::new();
        let top = a.new_label();
        let out = a.new_label();
        a.bind(top);
        a.emit(Op::TstL, &[Operand::Reg(CReg::R0)]); // 2 bytes
        a.branch(Op::Beql, out); // 3 bytes, disp at 3..5
        a.branch(Op::Brw, top); // 3 bytes, disp at 6..8
        a.bind(out);
        a.emit0(Op::Halt);
        let p = a.finish().unwrap();
        // beql: target 8, after-field 5 → +3
        assert_eq!(i16::from_le_bytes([p.bytes[3], p.bytes[4]]), 3);
        // brw: target 0, after-field 8 → −8
        assert_eq!(i16::from_le_bytes([p.bytes[6], p.bytes[7]]), -8);
    }

    #[test]
    fn unbound_label_is_reported() {
        let mut a = CxAsm::new();
        let l = a.new_label();
        a.branch(Op::Brw, l);
        assert!(matches!(a.finish(), Err(BuildError::UnboundLabel(_))));
    }

    #[test]
    fn wrong_operand_count_is_reported() {
        let mut a = CxAsm::new();
        a.emit(Op::AddL3, &[Operand::Lit(1), Operand::Reg(CReg::R0)]);
        assert!(matches!(
            a.finish(),
            Err(BuildError::WrongOperandCount {
                op: Op::AddL3,
                got: 2
            })
        ));
    }

    #[test]
    fn calls_encodes_narg_literal() {
        let mut a = CxAsm::new();
        let f = a.new_label();
        a.calls(2, f);
        a.bind(f);
        a.emit0(Op::Ret);
        let p = a.finish().unwrap();
        assert_eq!(p.bytes[0], Op::Calls as u8);
        assert_eq!(p.bytes[1], 2, "short literal narg");
    }

    #[test]
    fn symbols_recorded() {
        let mut a = CxAsm::new();
        a.emit0(Op::Halt);
        a.symbol("f");
        a.emit0(Op::Ret);
        let p = a.finish().unwrap();
        assert_eq!(p.symbols["f"], 1);
    }
}
