//! # `risc1-cisc` — "CX", the open CISC baseline machine
//!
//! The RISC I paper evaluates against contemporary microcoded CISC machines
//! (VAX-11/780, PDP-11/70, M68000, Z8002). Those are proprietary designs, so
//! this crate builds an open substitute with the same *structural*
//! properties the paper's argument rests on:
//!
//! * **variable-length instructions** — a one-byte opcode followed by
//!   general operand specifiers, 2–17 bytes per instruction, giving the
//!   dense code the paper's code-size table credits CISC with;
//! * **memory operands everywhere** — any operand of any ALU instruction
//!   may name memory through register-deferred, displacement, immediate,
//!   absolute or autoincrement/decrement modes;
//! * **an expensive, general procedure call** — `CALLS` builds a full stack
//!   frame (return PC, saved FP/AP, argument count) in memory, and `RET`
//!   tears it down, mirroring the VAX calling standard whose cost the paper
//!   dissects;
//! * **a microcoded cost model** — every instruction is charged a decode
//!   base, per-specifier microcycles, per-memory-access cycles and
//!   per-operation extras (multiply, divide, call), calibrated so the
//!   machine averages the ~6–10 cycles per instruction of a VAX-11/780
//!   class design (see [`cost`]).
//!
//! The machine is complete enough that the shared IR compiler
//! (`risc1-ir`) targets it with the same source programs it compiles for
//! RISC I — the paper's methodology exactly.
//!
//! ```
//! use risc1_cisc::{CxAsm, CxCpu, CxConfig, Op, Operand, CReg};
//!
//! let mut a = CxAsm::new();
//! // r0 := 40; r0 := r0 + 2; halt
//! a.emit(Op::MovL, &[Operand::Imm(40), Operand::Reg(CReg::R0)]);
//! a.emit(Op::AddL2, &[Operand::Imm(2), Operand::Reg(CReg::R0)]);
//! a.emit0(Op::Halt);
//! let prog = a.finish().unwrap();
//! let mut cpu = CxCpu::new(CxConfig::default());
//! cpu.load_program(&prog).unwrap();
//! cpu.run().unwrap();
//! assert_eq!(cpu.reg(CReg::R0), 42);
//! ```

pub mod builder;
pub mod cost;
pub mod cpu;
pub mod disasm;
pub mod isa;
pub mod program;

pub use builder::{BuildError, CxAsm, Label};
pub use cpu::{CxConfig, CxCpu, CxError, CxStats};
pub use disasm::disassemble as disassemble_cx;
pub use isa::{CReg, Cc, Op, Operand};
pub use program::CxProgram;
