//! CX disassembler: byte stream back to assembly text.

use crate::isa::{CReg, Op, Operand};

/// One decoded instruction: its text, byte offset and encoded length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedLine {
    /// Byte offset within the stream.
    pub offset: u32,
    /// Encoded length in bytes.
    pub len: u32,
    /// Rendered assembly text.
    pub text: String,
}

fn fetch_u8(bytes: &[u8], cur: &mut usize) -> Option<u8> {
    let b = *bytes.get(*cur)?;
    *cur += 1;
    Some(b)
}

fn fetch_u32(bytes: &[u8], cur: &mut usize) -> Option<u32> {
    let mut v = 0u32;
    for i in 0..4 {
        v |= u32::from(fetch_u8(bytes, cur)?) << (8 * i);
    }
    Some(v)
}

fn fetch_operand(bytes: &[u8], cur: &mut usize) -> Option<Operand> {
    let b = fetch_u8(bytes, cur)?;
    if b < 0x40 {
        return Some(Operand::Lit(b));
    }
    let (mode, regn) = (b >> 4, b & 0x0f);
    let reg = CReg::new(regn);
    Some(match (mode, reg) {
        (5, Some(r)) => Operand::Reg(r),
        (6, Some(r)) => Operand::Deferred(r),
        (7, Some(r)) => Operand::AutoDec(r),
        (8, Some(r)) => Operand::AutoInc(r),
        (8, None) => Operand::Imm(fetch_u32(bytes, cur)?),
        (9, None) => Operand::Abs(fetch_u32(bytes, cur)?),
        (0xa, Some(r)) => Operand::Disp8(fetch_u8(bytes, cur)? as i8, r),
        (0xc, Some(r)) => {
            let lo = fetch_u8(bytes, cur)?;
            let hi = fetch_u8(bytes, cur)?;
            Operand::Disp16(i16::from_le_bytes([lo, hi]), r)
        }
        (0xe, Some(r)) => Operand::Disp32(fetch_u32(bytes, cur)? as i32, r),
        _ => return None,
    })
}

/// Decodes one instruction starting at `offset`. Returns `None` when the
/// bytes do not form a valid instruction (truncated or undefined).
pub fn decode_one(bytes: &[u8], offset: u32) -> Option<DecodedLine> {
    let mut cur = offset as usize;
    let opbyte = fetch_u8(bytes, &mut cur)?;
    let op = Op::from_code(opbyte)?;
    let mut parts: Vec<String> = Vec::new();
    for _ in 0..op.operand_count() {
        parts.push(fetch_operand(bytes, &mut cur)?.to_string());
    }
    if op.has_disp16() {
        let lo = fetch_u8(bytes, &mut cur)?;
        let hi = fetch_u8(bytes, &mut cur)?;
        let disp = i16::from_le_bytes([lo, hi]);
        let target = (cur as i64 + i64::from(disp)) as u32;
        parts.push(format!("{:#x}", target));
    }
    let text = if parts.is_empty() {
        op.name().to_string()
    } else {
        format!("{} {}", op.name(), parts.join(", "))
    };
    Some(DecodedLine {
        offset,
        len: (cur - offset as usize) as u32,
        text,
    })
}

/// Disassembles a whole code stream; undecodable bytes render as `.byte`
/// and decoding resynchronises at the next byte.
pub fn disassemble(bytes: &[u8]) -> String {
    let mut out = String::new();
    let mut offset = 0u32;
    while (offset as usize) < bytes.len() {
        match decode_one(bytes, offset) {
            Some(line) => {
                out.push_str(&format!("{:#06x}:  {}\n", line.offset, line.text));
                offset += line.len;
            }
            None => {
                out.push_str(&format!(
                    "{:#06x}:  .byte {:#04x}\n",
                    offset, bytes[offset as usize]
                ));
                offset += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CxAsm;

    #[test]
    fn round_trips_a_program_listing() {
        let mut a = CxAsm::new();
        let f = a.new_label();
        a.emit(Op::MovL, &[Operand::Imm(40), Operand::Reg(CReg::R1)]);
        a.emit(
            Op::AddL3,
            &[
                Operand::Lit(2),
                Operand::Disp8(-4, CReg::FP),
                Operand::Reg(CReg::R0),
            ],
        );
        a.emit(Op::PushL, &[Operand::Reg(CReg::R0)]);
        a.calls(1, f);
        a.bind(f);
        a.emit0(Op::Ret);
        a.emit0(Op::Halt);
        let p = a.finish().unwrap();
        let text = disassemble(&p.bytes);
        assert!(text.contains("movl #40, r1"), "{text}");
        assert!(text.contains("addl3 #2, -4(fp), r0"), "{text}");
        assert!(text.contains("pushl r0"), "{text}");
        assert!(text.contains("calls"), "{text}");
        assert!(text.contains("ret"), "{text}");
        assert!(text.contains("halt"), "{text}");
        // Every line decoded — no .byte fallbacks in valid code.
        assert!(!text.contains(".byte"), "{text}");
    }

    #[test]
    fn branch_targets_are_absolute_offsets() {
        let mut a = CxAsm::new();
        let top = a.new_label();
        a.bind(top);
        a.emit(Op::TstL, &[Operand::Reg(CReg::R0)]);
        a.branch(Op::Bneq, top);
        let p = a.finish().unwrap();
        let text = disassemble(&p.bytes);
        assert!(text.contains("bneq 0x0"), "{text}");
    }

    #[test]
    fn garbage_bytes_degrade_gracefully() {
        let text = disassemble(&[0xff, 0x01, 0x51, 0x52]);
        assert!(text.contains(".byte 0xff"));
        assert!(text.contains("movl r1, r2"));
    }

    #[test]
    fn truncated_instruction_is_not_decoded() {
        // movl #imm needs 4 immediate bytes; give it only two.
        assert!(decode_one(&[0x01, 0x8f, 0x01, 0x02], 0).is_none());
    }
}
