//! The CX instruction set: opcodes, registers, operand specifiers and the
//! byte-stream encoding.
//!
//! Encoding follows the VAX scheme: a one-byte opcode, then one specifier
//! per operand. A specifier is a mode/register byte, optionally followed by
//! displacement or immediate bytes:
//!
//! | first byte | meaning | extra bytes |
//! |-----------|----------|-------------|
//! | `0x00`–`0x3F` | short literal 0–63 | — |
//! | `0x5R` | register `R` | — |
//! | `0x6R` | register deferred `(R)` | — |
//! | `0x7R` | autodecrement `-(R)` | — |
//! | `0x8R` | autoincrement `(R)+` | — |
//! | `0x8F` | immediate (autoincrement on PC) | 4 (value) |
//! | `0xAR` | byte displacement `d8(R)` | 1 |
//! | `0xCR` | word displacement `d16(R)` | 2 |
//! | `0xER` | long displacement `d32(R)` | 4 |
//! | `0x9F` | absolute address | 4 |
//!
//! Conditional branches and `BRW`/`CALLS` carry a 16-bit displacement after
//! their specifiers, relative to the end of the instruction.

use std::fmt;

/// A CX general register. `R0`–`R11` are general purpose (R0 carries return
/// values); `AP`, `FP` and `SP` implement the calling standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CReg(u8);

impl CReg {
    /// Creates a register from its number (0–14).
    pub fn new(n: u8) -> Option<CReg> {
        (n < 15).then_some(CReg(n))
    }

    /// Register number.
    pub fn number(self) -> u8 {
        self.0
    }
}

macro_rules! cregs {
    ($($name:ident = $n:expr),* $(,)?) => {
        impl CReg {
            $(#[doc = concat!("Register ", stringify!($name), ".")]
              pub const $name: CReg = CReg($n);)*
        }
    };
}
cregs! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, AP = 12, FP = 13, SP = 14,
}

impl fmt::Display for CReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            12 => write!(f, "ap"),
            13 => write!(f, "fp"),
            14 => write!(f, "sp"),
            n => write!(f, "r{n}"),
        }
    }
}

/// An operand specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Short literal 0–63 (fits in the specifier byte).
    Lit(u8),
    /// Register direct.
    Reg(CReg),
    /// Register deferred: memory at `(R)`.
    Deferred(CReg),
    /// Autodecrement: `R -= 4`, then memory at `(R)` (the push idiom).
    AutoDec(CReg),
    /// Autoincrement: memory at `(R)`, then `R += 4` (the pop idiom).
    AutoInc(CReg),
    /// 32-bit immediate.
    Imm(u32),
    /// Byte displacement off a register: `d8(R)`.
    Disp8(i8, CReg),
    /// Word displacement off a register: `d16(R)`.
    Disp16(i16, CReg),
    /// Long displacement off a register: `d32(R)`.
    Disp32(i32, CReg),
    /// Absolute 32-bit address.
    Abs(u32),
}

impl Operand {
    /// Encoded size in bytes (specifier byte + extension).
    pub fn encoded_len(&self) -> usize {
        match self {
            Operand::Lit(_) | Operand::Reg(_) | Operand::Deferred(_) => 1,
            Operand::AutoDec(_) | Operand::AutoInc(_) => 1,
            Operand::Disp8(..) => 2,
            Operand::Disp16(..) => 3,
            Operand::Imm(_) | Operand::Disp32(..) | Operand::Abs(_) => 5,
        }
    }

    /// Whether evaluating the operand as a *source* touches data memory.
    pub fn reads_memory(&self) -> bool {
        !matches!(self, Operand::Lit(_) | Operand::Reg(_) | Operand::Imm(_))
    }

    /// Appends the encoded specifier to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Operand::Lit(v) => {
                debug_assert!(v < 64);
                out.push(v & 0x3f);
            }
            Operand::Reg(r) => out.push(0x50 | r.number()),
            Operand::Deferred(r) => out.push(0x60 | r.number()),
            Operand::AutoDec(r) => out.push(0x70 | r.number()),
            Operand::AutoInc(r) => out.push(0x80 | r.number()),
            Operand::Imm(v) => {
                out.push(0x8f);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Operand::Disp8(d, r) => {
                out.push(0xa0 | r.number());
                out.push(d as u8);
            }
            Operand::Disp16(d, r) => {
                out.push(0xc0 | r.number());
                out.extend_from_slice(&d.to_le_bytes());
            }
            Operand::Disp32(d, r) => {
                out.push(0xe0 | r.number());
                out.extend_from_slice(&d.to_le_bytes());
            }
            Operand::Abs(a) => {
                out.push(0x9f);
                out.extend_from_slice(&a.to_le_bytes());
            }
        }
    }

    /// Microcycles charged for decoding this specifier (see [`crate::cost`]).
    pub fn decode_cost(&self) -> u64 {
        match self {
            Operand::Lit(_) | Operand::Reg(_) => 0,
            Operand::Deferred(_) | Operand::AutoDec(_) | Operand::AutoInc(_) => 1,
            Operand::Imm(_) | Operand::Disp8(..) => 1,
            Operand::Disp16(..) => 2,
            Operand::Disp32(..) | Operand::Abs(_) => 2,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Operand::Lit(v) => write!(f, "#{v}"),
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Deferred(r) => write!(f, "({r})"),
            Operand::AutoDec(r) => write!(f, "-({r})"),
            Operand::AutoInc(r) => write!(f, "({r})+"),
            Operand::Imm(v) => write!(f, "#{}", v as i32),
            Operand::Disp8(d, r) => write!(f, "{d}({r})"),
            Operand::Disp16(d, r) => write!(f, "{d}({r})"),
            Operand::Disp32(d, r) => write!(f, "{d}({r})"),
            Operand::Abs(a) => write!(f, "@{a:#x}"),
        }
    }
}

/// Branch conditions, tested against the VAX-style N/Z/V/C flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cc {
    /// Z.
    Eql,
    /// !Z.
    Neq,
    /// N ^ V (signed <).
    Lss,
    /// Z | (N ^ V) (signed ≤).
    Leq,
    /// !Z & !(N ^ V) (signed >).
    Gtr,
    /// !(N ^ V) (signed ≥).
    Geq,
    /// C (unsigned <; VAX convention: C = borrow).
    Lssu,
    /// !C & !Z (unsigned >).
    Gtru,
}

macro_rules! cx_ops {
    ($(($variant:ident, $name:literal, $code:expr, $nops:expr, $extra:expr, $desc:literal)),* $(,)?) => {
        /// A CX opcode.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Op {
            $(#[doc = $desc] $variant = $code,)*
        }

        impl Op {
            /// All opcodes.
            pub const ALL: &'static [Op] = &[$(Op::$variant),*];

            /// Mnemonic.
            pub fn name(self) -> &'static str {
                match self { $(Op::$variant => $name,)* }
            }

            /// Number of operand specifiers.
            pub fn operand_count(self) -> usize {
                match self { $(Op::$variant => $nops,)* }
            }

            /// Extra execution microcycles beyond decode + specifiers +
            /// memory (multiply/divide iterations, call frame building…).
            pub fn extra_cycles(self) -> u64 {
                match self { $(Op::$variant => $extra,)* }
            }

            /// Decodes an opcode byte.
            pub fn from_code(b: u8) -> Option<Op> {
                match b { $($code => Some(Op::$variant),)* _ => None }
            }
        }
    };
}

cx_ops! {
    (Halt,   "halt",   0x00, 0, 0,  "stop the machine"),
    (MovL,   "movl",   0x01, 2, 0,  "dst := src (32-bit), sets N/Z"),
    (MovB,   "movb",   0x02, 2, 0,  "dst := low byte of src (byte-wide access)"),
    (MovW,   "movw",   0x03, 2, 0,  "dst := low 16 bits of src (16-bit access)"),
    (MovZBL, "movzbl", 0x04, 2, 0,  "dst := zero-extended byte src"),
    (MovZWL, "movzwl", 0x05, 2, 0,  "dst := zero-extended 16-bit src"),
    (PushL,  "pushl",  0x06, 1, 0,  "push src on the stack"),
    (ClrL,   "clrl",   0x07, 1, 0,  "dst := 0"),
    (AddL2,  "addl2",  0x10, 2, 0,  "dst := dst + src"),
    (AddL3,  "addl3",  0x11, 3, 0,  "dst := src1 + src2"),
    (SubL2,  "subl2",  0x12, 2, 0,  "dst := dst - src"),
    (SubL3,  "subl3",  0x13, 3, 0,  "dst := src2 - src1"),
    (MulL3,  "mull3",  0x14, 3, 8,  "dst := src1 * src2 (microcoded multiply)"),
    (DivL3,  "divl3",  0x15, 3, 12, "dst := src2 / src1 (microcoded divide)"),
    (AndL3,  "andl3",  0x16, 3, 0,  "dst := src1 & src2"),
    (OrL3,   "orl3",   0x17, 3, 0,  "dst := src1 | src2"),
    (XorL3,  "xorl3",  0x18, 3, 0,  "dst := src1 ^ src2"),
    (AshL,   "ashl",   0x19, 3, 1,  "dst := src shifted by count (negative = right)"),
    (CmpL,   "cmpl",   0x1a, 2, 0,  "flags := src1 - src2"),
    (TstL,   "tstl",   0x1b, 1, 0,  "flags := src - 0"),
    (Beql,   "beql",   0x20, 0, 0,  "branch if equal (disp16)"),
    (Bneq,   "bneq",   0x21, 0, 0,  "branch if not equal (disp16)"),
    (Blss,   "blss",   0x22, 0, 0,  "branch if signed less (disp16)"),
    (Bleq,   "bleq",   0x23, 0, 0,  "branch if signed less or equal (disp16)"),
    (Bgtr,   "bgtr",   0x24, 0, 0,  "branch if signed greater (disp16)"),
    (Bgeq,   "bgeq",   0x25, 0, 0,  "branch if signed greater or equal (disp16)"),
    (Blssu,  "blssu",  0x26, 0, 0,  "branch if unsigned lower (disp16)"),
    (Bgtru,  "bgtru",  0x27, 0, 0,  "branch if unsigned higher (disp16)"),
    (Brw,    "brw",    0x28, 0, 0,  "unconditional branch (disp16)"),
    (Calls,  "calls",  0x30, 1, 10, "call procedure: build stack frame (narg spec, disp16 target)"),
    (Ret,    "ret",    0x31, 0, 8,  "return: tear down stack frame, pop arguments"),
}

impl Op {
    /// Whether this opcode carries a 16-bit displacement after its
    /// specifiers.
    pub fn has_disp16(self) -> bool {
        matches!(
            self,
            Op::Beql
                | Op::Bneq
                | Op::Blss
                | Op::Bleq
                | Op::Bgtr
                | Op::Bgeq
                | Op::Blssu
                | Op::Bgtru
                | Op::Brw
                | Op::Calls
        )
    }

    /// The branch condition, if this is a conditional branch.
    pub fn condition(self) -> Option<Cc> {
        Some(match self {
            Op::Beql => Cc::Eql,
            Op::Bneq => Cc::Neq,
            Op::Blss => Cc::Lss,
            Op::Bleq => Cc::Leq,
            Op::Bgtr => Cc::Gtr,
            Op::Bgeq => Cc::Geq,
            Op::Blssu => Cc::Lssu,
            Op::Bgtru => Cc::Gtru,
            _ => return None,
        })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn opcode_bytes_unique() {
        let set: HashSet<u8> = Op::ALL.iter().map(|o| *o as u8).collect();
        assert_eq!(set.len(), Op::ALL.len());
        for op in Op::ALL {
            assert_eq!(Op::from_code(*op as u8), Some(*op));
        }
        assert_eq!(Op::from_code(0xff), None);
    }

    #[test]
    fn operand_lengths() {
        assert_eq!(Operand::Lit(5).encoded_len(), 1);
        assert_eq!(Operand::Reg(CReg::R3).encoded_len(), 1);
        assert_eq!(Operand::Disp8(-4, CReg::FP).encoded_len(), 2);
        assert_eq!(Operand::Disp16(300, CReg::AP).encoded_len(), 3);
        assert_eq!(Operand::Imm(7).encoded_len(), 5);
        assert_eq!(Operand::Abs(0x2000).encoded_len(), 5);
    }

    #[test]
    fn encode_matches_length() {
        let all = [
            Operand::Lit(63),
            Operand::Reg(CReg::SP),
            Operand::Deferred(CReg::R1),
            Operand::AutoDec(CReg::SP),
            Operand::AutoInc(CReg::R2),
            Operand::Imm(0xdead_beef),
            Operand::Disp8(-1, CReg::FP),
            Operand::Disp16(-300, CReg::AP),
            Operand::Disp32(1 << 20, CReg::R4),
            Operand::Abs(0x1234),
        ];
        for o in all {
            let mut buf = Vec::new();
            o.encode(&mut buf);
            assert_eq!(buf.len(), o.encoded_len(), "{o}");
        }
    }

    #[test]
    fn memory_touch_classification() {
        assert!(!Operand::Lit(1).reads_memory());
        assert!(!Operand::Reg(CReg::R0).reads_memory());
        assert!(!Operand::Imm(1).reads_memory());
        assert!(Operand::Deferred(CReg::R0).reads_memory());
        assert!(Operand::Disp8(0, CReg::FP).reads_memory());
        assert!(Operand::Abs(0).reads_memory());
    }

    #[test]
    fn branch_metadata() {
        assert!(Op::Beql.has_disp16());
        assert_eq!(Op::Beql.condition(), Some(Cc::Eql));
        assert!(Op::Brw.has_disp16());
        assert_eq!(Op::Brw.condition(), None);
        assert!(!Op::AddL2.has_disp16());
        assert!(Op::Calls.has_disp16());
    }

    #[test]
    fn register_display() {
        assert_eq!(CReg::SP.to_string(), "sp");
        assert_eq!(CReg::R7.to_string(), "r7");
        assert!(CReg::new(15).is_none());
    }
}
