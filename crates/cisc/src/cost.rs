//! The CX microcycle cost model.
//!
//! CX is "microcoded": every instruction pays a decode/dispatch base, a
//! per-operand-specifier cost (the microcode walks the specifier bytes one
//! at a time), one cycle per data-memory access, and op-specific extra
//! microcycles ([`crate::isa::Op::extra_cycles`]) for iterative operations
//! and the call/return frame machinery.
//!
//! The constants are calibrated against the figures Patterson & Séquin
//! quote for the VAX-11/780 era: ~6–10 cycles average per instruction, and
//! a `CALLS`/`RET` pair costing tens of cycles once its memory traffic is
//! counted — the observation that motivated register windows in the first
//! place.

use risc1_isa::spec;

/// Cycles to fetch and dispatch any opcode: the RISC execute cycle plus one
/// microcycle of decode/dispatch overhead — the irreducible tax of the
/// microcoded control store the paper argues against.
pub const BASE: u64 = spec::EXECUTE_CYCLES + DISPATCH_OVERHEAD;

/// The microcode decode/dispatch overhead per instruction.
pub const DISPATCH_OVERHEAD: u64 = 1;

/// Cycles per data-memory access (read or write) — the same memory, so the
/// same transfer cost the spec table charges RISC loads and stores.
pub const MEM_ACCESS: u64 = spec::MEM_TRANSFER_CYCLES;

/// Extra cycle charged when a branch is taken (the microengine refills the
/// instruction buffer) — the spec table's taken-transfer bubble: CX has no
/// delay slots to hide it.
pub const TAKEN_BRANCH: u64 = spec::TAKEN_TRANSFER_BUBBLE;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Op;

    #[test]
    fn calls_ret_pair_is_expensive() {
        // CALLS pushes 4 longwords, RET pops 4 — 8 memory accesses — plus
        // the extras, landing the pair in the tens of cycles like the VAX.
        let calls = BASE + Op::Calls.extra_cycles() + 4 * MEM_ACCESS;
        let ret = BASE + Op::Ret.extra_cycles() + 4 * MEM_ACCESS;
        assert!(calls + ret >= 30, "got {}", calls + ret);
    }

    #[test]
    fn simple_register_add_is_cheap_but_not_one_cycle() {
        let add = BASE; // register specifiers decode for free
        assert!(add >= 2, "a microcoded machine never reaches 1 CPI");
    }
}
