//! Loadable CX program images.

use std::collections::HashMap;

/// A CX program: a byte stream of variable-length instructions plus data
/// images.
#[derive(Debug, Clone, Default)]
pub struct CxProgram {
    /// The encoded instruction byte stream.
    pub bytes: Vec<u8>,
    /// Byte offset of the entry point within the code.
    pub entry_offset: u32,
    /// Data images: (absolute address, bytes).
    pub data: Vec<(u32, Vec<u8>)>,
    /// Symbol table: name → byte offset.
    pub symbols: HashMap<String, u32>,
}

impl CxProgram {
    /// Static code size in bytes — the quantity the paper's code-size table
    /// (E7) compares. Variable-length encoding is why CX wins this one.
    pub fn code_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Adds a data image at an absolute address.
    pub fn add_data(&mut self, addr: u32, bytes: Vec<u8>) {
        self.data.push((addr, bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_bytes_counts_the_stream() {
        let p = CxProgram {
            bytes: vec![0; 17],
            ..CxProgram::default()
        };
        assert_eq!(p.code_bytes(), 17);
    }
}
