//! The CX processor: byte-stream decode, general operand resolution, the
//! VAX-style calling standard, and the microcoded cost model.

use crate::cost;
use crate::isa::{CReg, Cc, Op, Operand};
use crate::program::CxProgram;
use risc1_core::{MemError, Memory};
use std::collections::HashMap;
use std::fmt;

/// Configuration of one CX machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CxConfig {
    /// Memory size in bytes.
    pub mem_bytes: usize,
    /// Address programs are loaded at.
    pub code_base: u32,
    /// Initial stack pointer (grows down).
    pub stack_top: u32,
    /// Maximum instructions before the simulator gives up.
    pub fuel: u64,
}

impl Default for CxConfig {
    fn default() -> Self {
        CxConfig {
            mem_bytes: 1 << 20,
            code_base: 0x1000,
            stack_top: 0xe0000,
            fuel: 200_000_000,
        }
    }
}

/// Why a CX program failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CxError {
    /// Memory fault.
    Mem {
        /// PC of the faulting instruction.
        pc: u32,
        /// Underlying fault.
        err: MemError,
    },
    /// An undefined opcode or operand-specifier byte.
    Decode {
        /// PC of the instruction.
        pc: u32,
        /// The offending byte.
        byte: u8,
    },
    /// A literal or immediate was used as a destination.
    WriteToLiteral {
        /// PC of the instruction.
        pc: u32,
    },
    /// Integer division by zero (CX traps, like the VAX).
    DivideByZero {
        /// PC of the instruction.
        pc: u32,
    },
    /// `ret` executed with no frame on the stack.
    RetAtTopLevel {
        /// PC of the instruction.
        pc: u32,
    },
    /// Fuel exhausted.
    OutOfFuel,
    /// `step` called after `halt`.
    AlreadyHalted,
}

impl fmt::Display for CxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CxError::Mem { pc, err } => write!(f, "memory fault at pc {pc:#010x}: {err}"),
            CxError::Decode { pc, byte } => {
                write!(f, "undecodable byte {byte:#04x} at pc {pc:#010x}")
            }
            CxError::WriteToLiteral { pc } => {
                write!(f, "literal used as destination at pc {pc:#010x}")
            }
            CxError::DivideByZero { pc } => write!(f, "division by zero at pc {pc:#010x}"),
            CxError::RetAtTopLevel { pc } => {
                write!(f, "ret with empty call stack at pc {pc:#010x}")
            }
            CxError::OutOfFuel => write!(f, "instruction fuel exhausted"),
            CxError::AlreadyHalted => write!(f, "cx cpu is halted"),
        }
    }
}

impl std::error::Error for CxError {}

/// CX condition flags (VAX convention: for subtraction, C = borrow).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CxFlags {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Signed overflow.
    pub v: bool,
    /// Carry/borrow.
    pub c: bool,
}

impl Cc {
    /// Evaluates the branch condition against the flags.
    pub fn eval(self, f: CxFlags) -> bool {
        let lss = f.n ^ f.v;
        match self {
            Cc::Eql => f.z,
            Cc::Neq => !f.z,
            Cc::Lss => lss,
            Cc::Leq => f.z || lss,
            Cc::Gtr => !f.z && !lss,
            Cc::Geq => !lss,
            Cc::Lssu => f.c,
            Cc::Gtru => !f.c && !f.z,
        }
    }
}

/// Statistics for one CX run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CxStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Microcycles consumed.
    pub cycles: u64,
    /// Bytes fetched from the instruction stream (CISC fetch traffic).
    pub ifetch_bytes: u64,
    /// Data-memory reads.
    pub data_reads: u64,
    /// Data-memory writes.
    pub data_writes: u64,
    /// `calls` executed.
    pub calls: u64,
    /// `ret`s executed.
    pub rets: u64,
    /// Branches taken.
    pub taken_branches: u64,
    /// Deepest call depth.
    pub max_depth: u64,
    /// Dynamic opcode histogram.
    pub op_counts: HashMap<Op, u64>,
}

impl CxStats {
    /// Average microcycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Total data traffic.
    pub fn data_traffic(&self) -> u64 {
        self.data_reads + self.data_writes
    }
}

/// A resolved operand location.
#[derive(Debug, Clone, Copy)]
enum Loc {
    Reg(CReg),
    Mem(u32),
    Val(u32),
}

/// The CX processor.
#[derive(Debug, Clone)]
pub struct CxCpu {
    cfg: CxConfig,
    /// Main memory (public for result inspection and argument setup).
    pub mem: Memory,
    regs: [u32; 15],
    pc: u32,
    flags: CxFlags,
    depth: u64,
    halted: bool,
    stats: CxStats,
}

impl CxCpu {
    /// A CX machine at reset.
    pub fn new(cfg: CxConfig) -> CxCpu {
        let mem = Memory::new(cfg.mem_bytes);
        let mut regs = [0u32; 15];
        regs[CReg::SP.number() as usize] = cfg.stack_top;
        regs[CReg::FP.number() as usize] = cfg.stack_top;
        let pc = cfg.code_base;
        CxCpu {
            cfg,
            mem,
            regs,
            pc,
            flags: CxFlags::default(),
            depth: 0,
            halted: false,
            stats: CxStats::default(),
        }
    }

    /// Loads a program and points the PC at its entry.
    ///
    /// # Errors
    /// Fails if an image does not fit in memory.
    pub fn load_program(&mut self, prog: &CxProgram) -> Result<(), MemError> {
        self.mem.load_image(self.cfg.code_base, &prog.bytes)?;
        for (addr, bytes) in &prog.data {
            self.mem.load_image(*addr, bytes)?;
        }
        self.pc = self.cfg.code_base + prog.entry_offset;
        self.mem.reset_traffic();
        Ok(())
    }

    /// Reads a register.
    pub fn reg(&self, r: CReg) -> u32 {
        self.regs[r.number() as usize]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: CReg, v: u32) {
        self.regs[r.number() as usize] = v;
    }

    /// The conventional return value (`R0`).
    pub fn result(&self) -> i32 {
        self.reg(CReg::R0) as i32
    }

    /// Current PC.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Statistics so far (memory traffic synced).
    pub fn stats(&self) -> CxStats {
        let mut s = self.stats.clone();
        s.data_reads = self.mem.traffic().reads;
        s.data_writes = self.mem.traffic().writes;
        s
    }

    /// Runs until `halt`.
    ///
    /// # Errors
    /// Any [`CxError`]; state is left at the faulting instruction.
    pub fn run(&mut self) -> Result<(), CxError> {
        while !self.halted {
            self.step()?;
        }
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    /// See [`CxError`].
    pub fn step(&mut self) -> Result<(), CxError> {
        if self.halted {
            return Err(CxError::AlreadyHalted);
        }
        if self.stats.instructions >= self.cfg.fuel {
            return Err(CxError::OutOfFuel);
        }
        let pc = self.pc;
        let mut cur = pc;
        let opbyte = self.fetch_u8(&mut cur, pc)?;
        let op = Op::from_code(opbyte).ok_or(CxError::Decode { pc, byte: opbyte })?;

        let mut operands = Vec::with_capacity(op.operand_count());
        for _ in 0..op.operand_count() {
            operands.push(self.fetch_operand(&mut cur, pc)?);
        }
        let disp = if op.has_disp16() {
            let lo = self.fetch_u8(&mut cur, pc)?;
            let hi = self.fetch_u8(&mut cur, pc)?;
            Some(i16::from_le_bytes([lo, hi]))
        } else {
            None
        };
        let insn_end = cur;
        self.stats.ifetch_bytes += u64::from(insn_end - pc);

        let mem_before = self.mem.traffic().total();
        let mut cycles = cost::BASE + operands.iter().map(Operand::decode_cost).sum::<u64>();
        cycles += op.extra_cycles();
        let mut next_pc = insn_end;

        match op {
            Op::Halt => {
                self.halted = true;
            }
            Op::MovL => {
                let v = self.read_src(&operands[0], pc, 4)?;
                self.write_dst(&operands[1], v, pc, 4)?;
                self.set_nz(v);
            }
            Op::MovB => {
                let v = self.read_src(&operands[0], pc, 1)?;
                self.write_dst(&operands[1], v, pc, 1)?;
                self.set_nz_byte(v);
            }
            Op::MovW => {
                let v = self.read_src(&operands[0], pc, 2)?;
                self.write_dst(&operands[1], v, pc, 2)?;
                self.set_nz(v as u16 as i16 as i32 as u32);
            }
            Op::MovZBL => {
                let v = self.read_src(&operands[0], pc, 1)? & 0xff;
                self.write_dst(&operands[1], v, pc, 4)?;
                self.set_nz(v);
            }
            Op::MovZWL => {
                let v = self.read_src(&operands[0], pc, 2)? & 0xffff;
                self.write_dst(&operands[1], v, pc, 4)?;
                self.set_nz(v);
            }
            Op::ClrL => {
                self.write_dst(&operands[0], 0, pc, 4)?;
                self.set_nz(0);
            }
            Op::PushL => {
                let v = self.read_src(&operands[0], pc, 4)?;
                self.push(v, pc)?;
                self.set_nz(v);
            }
            Op::AddL2 | Op::AddL3 => {
                let a = self.read_src(&operands[0], pc, 4)?;
                let (bsrc, dst) = if op == Op::AddL2 {
                    (&operands[1], &operands[1])
                } else {
                    (&operands[1], &operands[2])
                };
                let b = self.read_src(bsrc, pc, 4)?;
                let (v, carry) = b.overflowing_add(a);
                self.flags = CxFlags {
                    n: (v as i32) < 0,
                    z: v == 0,
                    v: ((a ^ v) & (b ^ v)) >> 31 != 0,
                    c: carry,
                };
                self.write_dst(dst, v, pc, 4)?;
            }
            Op::SubL2 | Op::SubL3 => {
                // dst := min − sub (sub is the first operand, as on the VAX)
                let sub = self.read_src(&operands[0], pc, 4)?;
                let (minsrc, dst) = if op == Op::SubL2 {
                    (&operands[1], &operands[1])
                } else {
                    (&operands[1], &operands[2])
                };
                let min = self.read_src(minsrc, pc, 4)?;
                let (v, borrow) = min.overflowing_sub(sub);
                self.flags = CxFlags {
                    n: (v as i32) < 0,
                    z: v == 0,
                    v: ((min ^ sub) & (min ^ v)) >> 31 != 0,
                    c: borrow,
                };
                self.write_dst(dst, v, pc, 4)?;
            }
            Op::MulL3 => {
                let a = self.read_src(&operands[0], pc, 4)? as i32;
                let b = self.read_src(&operands[1], pc, 4)? as i32;
                let v = a.wrapping_mul(b) as u32;
                self.write_dst(&operands[2], v, pc, 4)?;
                self.set_nz(v);
            }
            Op::DivL3 => {
                let divisor = self.read_src(&operands[0], pc, 4)? as i32;
                let dividend = self.read_src(&operands[1], pc, 4)? as i32;
                if divisor == 0 {
                    return Err(CxError::DivideByZero { pc });
                }
                let v = dividend.wrapping_div(divisor) as u32;
                self.write_dst(&operands[2], v, pc, 4)?;
                self.set_nz(v);
            }
            Op::AndL3 | Op::OrL3 | Op::XorL3 => {
                let a = self.read_src(&operands[0], pc, 4)?;
                let b = self.read_src(&operands[1], pc, 4)?;
                let v = match op {
                    Op::AndL3 => a & b,
                    Op::OrL3 => a | b,
                    _ => a ^ b,
                };
                self.write_dst(&operands[2], v, pc, 4)?;
                self.set_nz(v);
            }
            Op::AshL => {
                let count = self.read_src(&operands[0], pc, 4)? as i32;
                let src = self.read_src(&operands[1], pc, 4)?;
                let v = if count >= 0 {
                    src << (count as u32 & 31)
                } else {
                    ((src as i32) >> ((-count) as u32 & 31)) as u32
                };
                self.write_dst(&operands[2], v, pc, 4)?;
                self.set_nz(v);
            }
            Op::CmpL => {
                let a = self.read_src(&operands[0], pc, 4)?;
                let b = self.read_src(&operands[1], pc, 4)?;
                let (v, borrow) = a.overflowing_sub(b);
                self.flags = CxFlags {
                    n: (v as i32) < 0,
                    z: v == 0,
                    v: ((a ^ b) & (a ^ v)) >> 31 != 0,
                    c: borrow,
                };
            }
            Op::TstL => {
                let a = self.read_src(&operands[0], pc, 4)?;
                self.set_nz(a);
            }
            Op::Brw => {
                next_pc = insn_end.wrapping_add(disp.unwrap() as i32 as u32);
                cycles += cost::TAKEN_BRANCH;
                self.stats.taken_branches += 1;
            }
            Op::Beql
            | Op::Bneq
            | Op::Blss
            | Op::Bleq
            | Op::Bgtr
            | Op::Bgeq
            | Op::Blssu
            | Op::Bgtru => {
                let cc = op.condition().expect("conditional branch");
                if cc.eval(self.flags) {
                    next_pc = insn_end.wrapping_add(disp.unwrap() as i32 as u32);
                    cycles += cost::TAKEN_BRANCH;
                    self.stats.taken_branches += 1;
                }
            }
            Op::Calls => {
                let narg = self.read_src(&operands[0], pc, 4)?;
                let target = insn_end.wrapping_add(disp.unwrap() as i32 as u32);
                // Frame: [ret PC][saved FP][saved AP][narg][args…]
                self.push(narg, pc)?;
                self.push(self.reg(CReg::AP), pc)?;
                self.push(self.reg(CReg::FP), pc)?;
                self.push(insn_end, pc)?;
                let sp = self.reg(CReg::SP);
                self.set_reg(CReg::FP, sp);
                self.set_reg(CReg::AP, sp + 12);
                next_pc = target;
                self.depth += 1;
                self.stats.max_depth = self.stats.max_depth.max(self.depth);
                self.stats.calls += 1;
                self.stats.taken_branches += 1;
            }
            Op::Ret => {
                if self.depth == 0 {
                    return Err(CxError::RetAtTopLevel { pc });
                }
                let fp = self.reg(CReg::FP);
                let ret_pc = self.read_mem(fp, pc)?;
                let old_fp = self.read_mem(fp + 4, pc)?;
                let old_ap = self.read_mem(fp + 8, pc)?;
                let narg = self.read_mem(fp + 12, pc)?;
                self.set_reg(CReg::SP, fp + 16 + narg * 4);
                self.set_reg(CReg::FP, old_fp);
                self.set_reg(CReg::AP, old_ap);
                next_pc = ret_pc;
                self.depth -= 1;
                self.stats.rets += 1;
                self.stats.taken_branches += 1;
            }
        }

        let mem_accesses = self.mem.traffic().total() - mem_before;
        cycles += mem_accesses * cost::MEM_ACCESS;
        self.stats.cycles += cycles;
        self.stats.instructions += 1;
        *self.stats.op_counts.entry(op).or_insert(0) += 1;
        self.pc = next_pc;
        Ok(())
    }

    fn set_nz(&mut self, v: u32) {
        self.flags = CxFlags {
            n: (v as i32) < 0,
            z: v == 0,
            v: false,
            c: self.flags.c,
        };
    }

    fn set_nz_byte(&mut self, v: u32) {
        self.flags = CxFlags {
            n: (v as u8 as i8) < 0,
            z: v as u8 == 0,
            v: false,
            c: self.flags.c,
        };
    }

    fn fetch_u8(&self, cur: &mut u32, pc: u32) -> Result<u8, CxError> {
        let b = self
            .mem
            .peek_u8(*cur)
            .map_err(|err| CxError::Mem { pc, err })?;
        *cur += 1;
        Ok(b)
    }

    fn fetch_u32(&self, cur: &mut u32, pc: u32) -> Result<u32, CxError> {
        let mut v = 0u32;
        for i in 0..4 {
            v |= u32::from(self.fetch_u8(cur, pc)?) << (8 * i);
        }
        Ok(v)
    }

    /// Decodes one operand specifier from the instruction stream.
    fn fetch_operand(&self, cur: &mut u32, pc: u32) -> Result<Operand, CxError> {
        let b = self.fetch_u8(cur, pc)?;
        if b < 0x40 {
            return Ok(Operand::Lit(b));
        }
        let mode = b >> 4;
        let regn = b & 0x0f;
        let reg = CReg::new(regn);
        Ok(match (mode, reg) {
            (5, Some(r)) => Operand::Reg(r),
            (6, Some(r)) => Operand::Deferred(r),
            (7, Some(r)) => Operand::AutoDec(r),
            (8, Some(r)) => Operand::AutoInc(r),
            (8, None) => Operand::Imm(self.fetch_u32(cur, pc)?),
            (9, None) => Operand::Abs(self.fetch_u32(cur, pc)?),
            (0xa, Some(r)) => Operand::Disp8(self.fetch_u8(cur, pc)? as i8, r),
            (0xc, Some(r)) => {
                let lo = self.fetch_u8(cur, pc)?;
                let hi = self.fetch_u8(cur, pc)?;
                Operand::Disp16(i16::from_le_bytes([lo, hi]), r)
            }
            (0xe, Some(r)) => Operand::Disp32(self.fetch_u32(cur, pc)? as i32, r),
            _ => return Err(CxError::Decode { pc, byte: b }),
        })
    }

    /// Resolves an operand to a location, applying autoincrement/decrement
    /// side effects.
    fn resolve(&mut self, o: &Operand) -> Loc {
        match *o {
            Operand::Lit(v) => Loc::Val(u32::from(v)),
            Operand::Imm(v) => Loc::Val(v),
            Operand::Reg(r) => Loc::Reg(r),
            Operand::Deferred(r) => Loc::Mem(self.reg(r)),
            Operand::AutoDec(r) => {
                let a = self.reg(r).wrapping_sub(4);
                self.set_reg(r, a);
                Loc::Mem(a)
            }
            Operand::AutoInc(r) => {
                let a = self.reg(r);
                self.set_reg(r, a.wrapping_add(4));
                Loc::Mem(a)
            }
            Operand::Disp8(d, r) => Loc::Mem(self.reg(r).wrapping_add(d as i32 as u32)),
            Operand::Disp16(d, r) => Loc::Mem(self.reg(r).wrapping_add(d as i32 as u32)),
            Operand::Disp32(d, r) => Loc::Mem(self.reg(r).wrapping_add(d as u32)),
            Operand::Abs(a) => Loc::Mem(a),
        }
    }

    fn read_src(&mut self, o: &Operand, pc: u32, width: u32) -> Result<u32, CxError> {
        match self.resolve(o) {
            Loc::Val(v) => Ok(v),
            Loc::Reg(r) => Ok(self.reg(r)),
            Loc::Mem(a) => {
                let v = match width {
                    1 => self.mem.read_u8(a).map(u32::from),
                    2 => self.mem.read_u16(a).map(u32::from),
                    _ => self.mem.read_u32(a),
                };
                v.map_err(|err| CxError::Mem { pc, err })
            }
        }
    }

    fn write_dst(&mut self, o: &Operand, v: u32, pc: u32, width: u32) -> Result<(), CxError> {
        match self.resolve(o) {
            Loc::Val(_) => Err(CxError::WriteToLiteral { pc }),
            Loc::Reg(r) => {
                self.set_reg(r, v);
                Ok(())
            }
            Loc::Mem(a) => {
                let r = match width {
                    1 => self.mem.write_u8(a, v as u8),
                    2 => self.mem.write_u16(a, v as u16),
                    _ => self.mem.write_u32(a, v),
                };
                r.map_err(|err| CxError::Mem { pc, err })
            }
        }
    }

    fn push(&mut self, v: u32, pc: u32) -> Result<(), CxError> {
        let sp = self.reg(CReg::SP).wrapping_sub(4);
        self.set_reg(CReg::SP, sp);
        self.mem
            .write_u32(sp, v)
            .map_err(|err| CxError::Mem { pc, err })
    }

    fn read_mem(&mut self, a: u32, pc: u32) -> Result<u32, CxError> {
        self.mem.read_u32(a).map_err(|err| CxError::Mem { pc, err })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CxAsm;

    fn run(build: impl FnOnce(&mut CxAsm)) -> CxCpu {
        let mut a = CxAsm::new();
        build(&mut a);
        let prog = a.finish().unwrap();
        let mut cpu = CxCpu::new(CxConfig::default());
        cpu.load_program(&prog).unwrap();
        cpu.run().unwrap();
        cpu
    }

    #[test]
    fn mov_and_add_with_every_source_mode() {
        let cpu = run(|a| {
            a.emit(Op::MovL, &[Operand::Imm(1000), Operand::Reg(CReg::R1)]);
            a.emit(Op::MovL, &[Operand::Lit(63), Operand::Reg(CReg::R2)]);
            a.emit(
                Op::AddL3,
                &[
                    Operand::Reg(CReg::R1),
                    Operand::Reg(CReg::R2),
                    Operand::Reg(CReg::R0),
                ],
            );
            a.emit0(Op::Halt);
        });
        assert_eq!(cpu.result(), 1063);
    }

    #[test]
    fn memory_operands_work_in_alu_ops() {
        let cpu = run(|a| {
            // M[0x2000] := 40; M[0x2004] := 2; R0 := M[0x2000] + M[0x2004]
            a.emit(Op::MovL, &[Operand::Imm(40), Operand::Abs(0x2000)]);
            a.emit(Op::MovL, &[Operand::Imm(2), Operand::Abs(0x2004)]);
            a.emit(
                Op::AddL3,
                &[
                    Operand::Abs(0x2000),
                    Operand::Abs(0x2004),
                    Operand::Reg(CReg::R0),
                ],
            );
            a.emit0(Op::Halt);
        });
        assert_eq!(cpu.result(), 42);
        // the add alone performed 2 reads; total traffic 2 writes + 2 reads
        let s = cpu.stats();
        assert_eq!(s.data_reads, 2);
        assert_eq!(s.data_writes, 2);
    }

    #[test]
    fn displacement_addressing() {
        let cpu = run(|a| {
            a.emit(Op::MovL, &[Operand::Imm(0x2000), Operand::Reg(CReg::R1)]);
            a.emit(Op::MovL, &[Operand::Imm(7), Operand::Disp8(8, CReg::R1)]);
            a.emit(
                Op::MovL,
                &[Operand::Disp16(8, CReg::R1), Operand::Reg(CReg::R0)],
            );
            a.emit0(Op::Halt);
        });
        assert_eq!(cpu.result(), 7);
    }

    #[test]
    fn push_pop_via_autodec_autoinc() {
        let cpu = run(|a| {
            a.emit(Op::MovL, &[Operand::Imm(11), Operand::AutoDec(CReg::SP)]);
            a.emit(Op::MovL, &[Operand::Imm(22), Operand::AutoDec(CReg::SP)]);
            a.emit(
                Op::MovL,
                &[Operand::AutoInc(CReg::SP), Operand::Reg(CReg::R1)],
            ); // 22
            a.emit(
                Op::MovL,
                &[Operand::AutoInc(CReg::SP), Operand::Reg(CReg::R2)],
            ); // 11
            a.emit(
                Op::SubL3,
                &[
                    Operand::Reg(CReg::R2),
                    Operand::Reg(CReg::R1),
                    Operand::Reg(CReg::R0),
                ],
            );
            a.emit0(Op::Halt);
        });
        assert_eq!(cpu.result(), 11, "22 - 11");
        assert_eq!(cpu.reg(CReg::SP), CxConfig::default().stack_top);
    }

    #[test]
    fn sub_sets_borrow_and_branches_unsigned() {
        let cpu = run(|a| {
            let less = a.new_label();
            let end = a.new_label();
            a.emit(Op::CmpL, &[Operand::Lit(3), Operand::Lit(5)]);
            a.branch(Op::Blssu, less);
            a.emit(Op::MovL, &[Operand::Imm(0), Operand::Reg(CReg::R0)]);
            a.branch(Op::Brw, end);
            a.bind(less);
            a.emit(Op::MovL, &[Operand::Imm(1), Operand::Reg(CReg::R0)]);
            a.bind(end);
            a.emit0(Op::Halt);
        });
        assert_eq!(cpu.result(), 1, "3 < 5 unsigned");
    }

    #[test]
    fn loop_with_conditional_branch() {
        // sum 1..=10 == 55
        let cpu = run(|a| {
            let top = a.new_label();
            a.emit(Op::ClrL, &[Operand::Reg(CReg::R0)]);
            a.emit(Op::MovL, &[Operand::Lit(10), Operand::Reg(CReg::R1)]);
            a.bind(top);
            a.emit(Op::AddL2, &[Operand::Reg(CReg::R1), Operand::Reg(CReg::R0)]);
            a.emit(Op::SubL2, &[Operand::Lit(1), Operand::Reg(CReg::R1)]);
            a.emit(Op::TstL, &[Operand::Reg(CReg::R1)]);
            a.branch(Op::Bgtr, top);
            a.emit0(Op::Halt);
        });
        assert_eq!(cpu.result(), 55);
    }

    #[test]
    fn calls_and_ret_build_and_tear_frames() {
        // f(a, b) = a - b; called with (50, 8)
        let cpu = run(|a| {
            let f = a.new_label();
            // caller: push args right-to-left → arg0 on top
            a.emit(Op::PushL, &[Operand::Lit(8)]); // b (arg1)
            a.emit(Op::PushL, &[Operand::Lit(50)]); // a (arg0)
            a.calls(2, f);
            a.emit0(Op::Halt);
            a.bind(f);
            // args at 4(AP) and 8(AP)
            a.emit(
                Op::SubL3,
                &[
                    Operand::Disp8(8, CReg::AP),
                    Operand::Disp8(4, CReg::AP),
                    Operand::Reg(CReg::R0),
                ],
            );
            a.emit0(Op::Ret);
        });
        assert_eq!(cpu.result(), 42);
        let s = cpu.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.rets, 1);
        assert_eq!(s.max_depth, 1);
        assert_eq!(
            cpu.reg(CReg::SP),
            CxConfig::default().stack_top,
            "ret popped frame and arguments"
        );
    }

    #[test]
    fn recursive_factorial_through_the_calling_standard() {
        // fact(n) = n <= 1 ? 1 : n * fact(n-1)
        let cpu = run(|a| {
            let fact = a.new_label();
            let rec = a.new_label();
            a.emit(Op::PushL, &[Operand::Lit(10)]);
            a.calls(1, fact);
            a.emit0(Op::Halt);

            a.bind(fact);
            a.emit(Op::CmpL, &[Operand::Disp8(4, CReg::AP), Operand::Lit(1)]);
            a.branch(Op::Bgtr, rec);
            a.emit(Op::MovL, &[Operand::Lit(1), Operand::Reg(CReg::R0)]);
            a.emit0(Op::Ret);
            a.bind(rec);
            a.emit(
                Op::SubL3,
                &[
                    Operand::Lit(1),
                    Operand::Disp8(4, CReg::AP),
                    Operand::Reg(CReg::R1),
                ],
            );
            a.emit(Op::PushL, &[Operand::Reg(CReg::R1)]);
            a.calls(1, fact);
            a.emit(
                Op::MulL3,
                &[
                    Operand::Reg(CReg::R0),
                    Operand::Disp8(4, CReg::AP),
                    Operand::Reg(CReg::R0),
                ],
            );
            a.emit0(Op::Ret);
        });
        assert_eq!(cpu.result(), 3_628_800);
        assert_eq!(cpu.stats().max_depth, 10);
    }

    #[test]
    fn division_and_divide_by_zero() {
        let cpu = run(|a| {
            a.emit(
                Op::DivL3,
                &[Operand::Lit(6), Operand::Imm(252), Operand::Reg(CReg::R0)],
            );
            a.emit0(Op::Halt);
        });
        assert_eq!(cpu.result(), 42);

        let mut a = CxAsm::new();
        a.emit(
            Op::DivL3,
            &[Operand::Lit(0), Operand::Lit(1), Operand::Reg(CReg::R0)],
        );
        a.emit0(Op::Halt);
        let prog = a.finish().unwrap();
        let mut cpu = CxCpu::new(CxConfig::default());
        cpu.load_program(&prog).unwrap();
        assert!(matches!(cpu.run(), Err(CxError::DivideByZero { .. })));
    }

    #[test]
    fn ret_at_top_level_is_an_error() {
        let mut a = CxAsm::new();
        a.emit0(Op::Ret);
        let prog = a.finish().unwrap();
        let mut cpu = CxCpu::new(CxConfig::default());
        cpu.load_program(&prog).unwrap();
        assert!(matches!(cpu.run(), Err(CxError::RetAtTopLevel { .. })));
    }

    #[test]
    fn undecodable_byte_is_an_error() {
        let mut cpu = CxCpu::new(CxConfig::default());
        cpu.load_program(&CxProgram {
            bytes: vec![0xff],
            ..CxProgram::default()
        })
        .unwrap();
        assert!(matches!(cpu.run(), Err(CxError::Decode { byte: 0xff, .. })));
    }

    #[test]
    fn fuel_guards_infinite_loops() {
        let mut a = CxAsm::new();
        let top = a.new_label();
        a.bind(top);
        a.branch(Op::Brw, top);
        let prog = a.finish().unwrap();
        let mut cpu = CxCpu::new(CxConfig {
            fuel: 100,
            ..CxConfig::default()
        });
        cpu.load_program(&prog).unwrap();
        assert_eq!(cpu.run(), Err(CxError::OutOfFuel));
    }

    #[test]
    fn cost_model_charges_memory_and_specifiers() {
        // movl r1, r2: BASE only. movl @0x2000, r0: BASE + 2 (abs) + 1 mem.
        let cheap = run(|a| {
            a.emit(Op::MovL, &[Operand::Reg(CReg::R1), Operand::Reg(CReg::R2)]);
            a.emit0(Op::Halt);
        });
        let costly = run(|a| {
            a.emit(Op::MovL, &[Operand::Abs(0x2000), Operand::Reg(CReg::R0)]);
            a.emit0(Op::Halt);
        });
        assert_eq!(costly.stats().cycles - cheap.stats().cycles, 3);
    }

    #[test]
    fn shifts_left_and_right() {
        let cpu = run(|a| {
            a.emit(
                Op::MovL,
                &[Operand::Imm(-64i32 as u32), Operand::Reg(CReg::R1)],
            );
            a.emit(
                Op::AshL,
                &[
                    Operand::Imm(-3i32 as u32),
                    Operand::Reg(CReg::R1),
                    Operand::Reg(CReg::R2),
                ],
            );
            a.emit(
                Op::AshL,
                &[
                    Operand::Lit(2),
                    Operand::Reg(CReg::R2),
                    Operand::Reg(CReg::R0),
                ],
            );
            a.emit0(Op::Halt);
        });
        assert_eq!(cpu.result(), -32, "(-64 >> 3) << 2");
    }

    #[test]
    fn ifetch_bytes_reflect_variable_length() {
        let cpu = run(|a| {
            a.emit(Op::MovL, &[Operand::Imm(1), Operand::Reg(CReg::R0)]); // 1+5+1 = 7
            a.emit0(Op::Halt); // 1
        });
        assert_eq!(cpu.stats().ifetch_bytes, 8);
    }
}
