//! The `risc1` binary: thin wrapper over [`risc1_cli::dispatch`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match risc1_cli::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
