//! # `risc1-cli` — the `risc1` command-line tool
//!
//! ```text
//! risc1 asm <file.s>             assemble and disassemble back (listing)
//! risc1 lint <file.s> [--json]   static analysis: CFG + dataflow findings
//! risc1 run <file.s> [args…]     assemble and execute; prints result + stats
//! risc1 trace <file.s> [args…]   execute with the pipeline timing diagram
//! risc1 bench <workload>         run a suite workload on both machines
//! risc1 exp <id|all>             print an experiment report (e1…e12)
//! risc1 list                     list suite workloads and experiments
//! ```
//!
//! The library surface exists so the dispatch logic is unit-testable; the
//! binary is a thin `main` over [`dispatch`].

use risc1_asm::{assemble, disassemble};
use risc1_core::{Cpu, SimConfig};
use risc1_stats::measure_with;
use std::fmt::Write as _;

/// Result of a CLI invocation: the text to print, or an error message.
pub type CliResult = Result<String, String>;

/// Dispatches a command line (without the program name).
///
/// # Errors
/// Returns a usage or execution error as a human-readable string.
pub fn dispatch(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("asm") => cmd_asm(args.get(1).ok_or(USAGE)?),
        Some("lint") => cmd_lint(args.get(1).ok_or(USAGE)?, &args[2..]),
        Some("run") => cmd_run(args.get(1).ok_or(USAGE)?, &args[2..], false),
        Some("trace") => cmd_run(args.get(1).ok_or(USAGE)?, &args[2..], true),
        Some("bench") => cmd_bench(args.get(1).ok_or(USAGE)?),
        Some("exp") => cmd_exp(args.get(1).ok_or(USAGE)?),
        Some("list") => Ok(listing()),
        _ => Err(USAGE.to_string()),
    }
}

/// The usage banner.
pub const USAGE: &str = "usage: risc1 <asm|lint|run|trace|bench|exp|list> …
  risc1 asm <file.s>            assemble + listing
  risc1 lint <file.s> [--json] [--windows N]
                                static analysis (CFG + dataflow); exits
                                nonzero on error-severity findings
  risc1 run <file.s> [args…]    execute (args are main's integer arguments)
  risc1 trace <file.s> [args…]  execute with a pipeline diagram
  risc1 bench <workload-id>     run one suite workload on RISC I and CX
  risc1 exp <e1…e12|all>        print an experiment report
  risc1 list                    available workloads and experiments";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn parse_args(args: &[String]) -> Result<Vec<i32>, String> {
    args.iter()
        .map(|a| {
            a.parse::<i32>()
                .map_err(|e| format!("bad argument `{a}`: {e}"))
        })
        .collect()
}

fn cmd_asm(path: &str) -> CliResult {
    let src = read(path)?;
    let prog = assemble(&src).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; {} instructions, {} bytes",
        prog.len(),
        prog.code_bytes()
    );
    out.push_str(&disassemble(&prog));
    Ok(out)
}

fn cmd_lint(path: &str, rest: &[String]) -> CliResult {
    let mut json = false;
    let mut config = risc1_lint::LintConfig::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--windows" => {
                let n = it.next().ok_or("--windows needs a value")?;
                config.windows = n
                    .parse()
                    .map_err(|e| format!("bad --windows value `{n}`: {e}"))?;
            }
            other => return Err(format!("unknown lint flag `{other}`\n{USAGE}")),
        }
    }
    let src = read(path)?;
    let prog = assemble(&src).map_err(|e| e.to_string())?;
    let diags = risc1_lint::lint_program(&prog, &config);
    let rendered = if json {
        risc1_lint::render_json(&diags)
    } else {
        risc1_lint::render_text(&diags)
    };
    if risc1_lint::has_errors(&diags) {
        Err(rendered)
    } else {
        Ok(rendered)
    }
}

fn cmd_run(path: &str, rest: &[String], trace: bool) -> CliResult {
    let src = read(path)?;
    let prog = assemble(&src).map_err(|e| e.to_string())?;
    let args = parse_args(rest)?;
    let cfg = SimConfig {
        record_trace: trace,
        ..SimConfig::default()
    };
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(&prog).map_err(|e| e.to_string())?;
    cpu.set_args(&args);
    cpu.run().map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "result: {}", cpu.result());
    let _ = writeln!(out, "{}", cpu.stats());
    if trace {
        let _ = writeln!(
            out,
            "\n{}",
            risc1_core::pipeline::render_timing(cpu.trace(), 64)
        );
    }
    Ok(out)
}

fn cmd_bench(id: &str) -> CliResult {
    let w = risc1_workloads::by_id(id)
        .ok_or_else(|| format!("unknown workload `{id}` (try `risc1 list`)"))?;
    let m = measure_with(&w, &w.args.clone(), SimConfig::default());
    let mut out = String::new();
    let _ = writeln!(out, "{}: {}", w.id, w.description);
    let _ = writeln!(out, "result        {}", m.result);
    let _ = writeln!(
        out,
        "RISC I        {} instructions, {} cycles (cpi {:.2})",
        m.risc.instructions,
        m.risc.cycles,
        m.risc.cpi()
    );
    let _ = writeln!(
        out,
        "CX            {} instructions, {} cycles (cpi {:.2})",
        m.cx.instructions,
        m.cx.cycles,
        m.cx.cpi()
    );
    let _ = writeln!(
        out,
        "speedup       {:.2}x  (CX cycles / RISC I cycles)",
        m.speedup()
    );
    let _ = writeln!(
        out,
        "code size     RISC I {} B vs CX {} B ({:.2}x)",
        m.risc_code_bytes,
        m.cx_code_bytes,
        m.code_ratio()
    );
    Ok(out)
}

fn cmd_exp(id: &str) -> CliResult {
    use risc1_experiments as e;
    Ok(match id {
        "e1" => e::e1_complexity::run(),
        "e2" => e::e2_instruction_set::run(),
        "e3" => e::e3_formats::run(),
        "e4" => e::e4_windows_figure::run(),
        "e5" => e::e5_call_cost::run(),
        "e6" => e::e6_exec_time::run(),
        "e7" => e::e7_code_size::run(),
        "e8" => e::e8_window_sweep::run(),
        "e9" => e::e9_delay_slots::run(),
        "e10" => e::e10_area::run(),
        "e11" => e::e11_pipeline_trace::run(),
        "e12" => e::e12_instruction_mix::run(),
        "ablations" => e::ablations::run(),
        "all" => e::run_all(),
        other => {
            return Err(format!(
                "unknown experiment `{other}` (e1…e12, ablations, all)"
            ))
        }
    })
}

fn listing() -> String {
    let mut out = String::from("workloads:\n");
    for w in risc1_workloads::all() {
        let _ = writeln!(out, "  {:16} {}", w.id, w.description);
    }
    out.push_str("\nexperiments: e1…e12, ablations, all (see DESIGN.md §3)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn usage_on_empty_or_unknown() {
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn list_shows_workloads() {
        let out = dispatch(&s(&["list"])).unwrap();
        assert!(out.contains("acker") && out.contains("sieve"));
    }

    #[test]
    fn exp_rejects_unknown_id() {
        assert!(dispatch(&s(&["exp", "e99"])).is_err());
        assert!(dispatch(&s(&["exp", "e2"])).unwrap().contains("ldhi"));
    }

    #[test]
    fn bench_runs_a_small_workload() {
        let out = dispatch(&s(&["bench", "fib"])).unwrap();
        assert!(out.contains("speedup"));
        assert!(dispatch(&s(&["bench", "zzz"])).is_err());
    }

    #[test]
    fn asm_and_run_roundtrip_through_a_temp_file() {
        let dir = std::env::temp_dir().join("risc1_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.s");
        std::fs::write(&path, "add r16, r26, #2\nadd r26, r16, #0\nhalt\nnop\n").unwrap();
        let p = path.to_str().unwrap();
        let asm = dispatch(&s(&["asm", p])).unwrap();
        assert!(asm.contains("add r16, r26, #2"));
        let run = dispatch(&s(&["run", p, "40"])).unwrap();
        assert!(run.contains("result: 42"), "{run}");
        let trace = dispatch(&s(&["trace", p, "40"])).unwrap();
        assert!(trace.contains('E'));
        let bad = dispatch(&s(&["run", p, "x"]));
        assert!(bad.is_err());
    }
}
