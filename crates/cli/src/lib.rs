//! # `risc1-cli` — the `risc1` command-line tool
//!
//! ```text
//! risc1 asm <file.s>             assemble and disassemble back (listing)
//! risc1 lint <file.s> [--json]   static analysis: CFG + dataflow findings
//!   --trap-handler <sym>         declare a trap-vector entry point
//!                                (repeatable); handlers must reti
//! risc1 lint --spec-audit        cross-check every opcode fact against the
//!                                executable ISA spec table
//! risc1 run <file.s> [args…]     assemble and execute; prints result + stats
//!   --fuel N                     instruction budget (default 200M)
//!   --engine <tier>              uncached | cached | superblock (default) |
//!                                trace
//!   --trap-handlers              install recovery stubs for vectorable faults
//!   --inject <seed> [--rate N]   deterministic fault injection (N per 10000
//!                                steps; default 20)
//!   --record <trace.json>        write a replayable journal of the campaign
//!   --supervise                  checkpoint + rollback-and-retry supervisor
//!     [--ckpt-every N]           checkpoint interval in instructions
//!     [--max-retries K]          rollback attempts before the fault surfaces
//! risc1 replay <trace.json>      re-execute a recorded campaign bit for bit
//!   [--minimize [--out <path>]]  delta-debug the journal to a minimal subset
//!   [--fetch <addr> --job <id>]  pull the journal in chunks from a running
//!                                serve instance instead of a local file
//! risc1 trace <file.s> [args…]   execute with the pipeline timing diagram
//! risc1 bench [<workload>]       one workload: RISC I vs CX; no id: time
//!   [--quick] [--out <path>]     the suite trace vs. superblock vs. cached
//!   [--baseline <file>]          vs. uncached and write BENCH_interp.json
//!                                (CI perf gate; --baseline also fails on
//!                                >10% regression vs. a stored report)
//! risc1 serve <--tcp addr|--stdin|--smoke>
//!                                fault-tolerant batch execution service
//!                                (JSON jobs, fair-share queues, dedup)
//!   [--wal-dir <dir>]            crash-safe write-ahead job log
//!   [--recover <dir>]            replay the WAL on startup (warm restart)
//! risc1 exp <id|all>             print an experiment report (e1…e16)
//! risc1 list                     list suite workloads and experiments
//! ```
//!
//! The library surface exists so the dispatch logic is unit-testable; the
//! binary is a thin `main` over [`dispatch`]. Every user input error comes
//! back as `Err(message)` — the binary prints it and exits nonzero, it
//! never panics.

use risc1_asm::{assemble, disassemble};
use risc1_core::deadline::DEADLINE_POLL_STEPS;
use risc1_core::inject::{install_recovery_handlers, InjectModes, RECOVERY_STUB_BASE};
use risc1_core::{
    Cpu, Deadline, ExecEngine, FaultInjector, Halt, InjectConfig, Journal, SimConfig, TrapKind,
};
use risc1_ir::{
    minimize_journal, record_risc_injected, recorded_outcome, replay_journal, run_risc_supervised,
    run_sharded_injected, run_sharded_with, InjectOutcome, SupervisorConfig, SupervisorOutcome,
};
use risc1_stats::measure_with;
use std::fmt::Write as _;

mod serve_cmd;
mod spec_audit;

/// Result of a CLI invocation: the text to print, or an error message.
pub type CliResult = Result<String, String>;

/// Dispatches a command line (without the program name).
///
/// # Errors
/// Returns a usage or execution error as a human-readable string.
pub fn dispatch(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("asm") => cmd_asm(args.get(1).ok_or(USAGE)?),
        Some("lint") if args.get(1).map(String::as_str) == Some("--spec-audit") => {
            if let Some(extra) = args.get(2) {
                return Err(format!(
                    "lint --spec-audit takes no arguments, got `{extra}`\n{USAGE}"
                ));
            }
            spec_audit::run()
        }
        Some("lint") => cmd_lint(args.get(1).ok_or(USAGE)?, &args[2..]),
        Some("run") => cmd_run(args.get(1).ok_or(USAGE)?, &args[2..], false),
        Some("replay") => cmd_replay(&args[1..]),
        Some("trace") => cmd_run(args.get(1).ok_or(USAGE)?, &args[2..], true),
        Some("bench") => cmd_bench(&args[1..]),
        Some("serve") => serve_cmd::run(&args[1..]),
        Some("exp") => cmd_exp(args.get(1).ok_or(USAGE)?),
        Some("list") => Ok(listing()),
        _ => Err(USAGE.to_string()),
    }
}

/// The usage banner.
pub const USAGE: &str = "usage: risc1 <asm|lint|run|trace|bench|exp|list> …
  risc1 asm <file.s>            assemble + listing
  risc1 lint <file.s> [--json] [--windows N]
                                static analysis (CFG + dataflow); exits
                                nonzero on error-severity findings
       [--trap-handler <sym>]   declare a trap-vector entry point (symbol
                                or byte offset; repeatable) - its body is
                                live code and must return with reti
  risc1 lint --spec-audit       audit the executable ISA spec table against
                                the opcode metadata, codec, assembler and
                                icache over all 128 opcode points; exits
                                nonzero on any divergence
  risc1 run <file.s> [args…]    execute (args are main's integer arguments)
       [--fuel N]               instruction budget (default 200M)
       [--timeout-ms N]         wall-clock budget; polled between steps,
                                so it never perturbs the machine
       [--engine <tier>]        interpreter tier: uncached | cached |
                                superblock (default) | trace (fastest —
                                all tiers are architecturally
                                bit-identical)
       [--trap-handlers]        install recovery stubs: vectorable faults
                                enter handlers instead of ending the run
       [--inject <seed>]        deterministic fault injection from <seed>
       [--rate N]               injection rate per 10000 steps (default 20)
       [--record <trace.json>]  write a replayable journal of the campaign
                                (requires --inject)
       [--supervise]            supervised run: incremental checkpoints +
                                rollback-and-retry on structured faults
       [--ckpt-every N]         checkpoint interval in instructions
       [--max-retries K]        rollback attempts before the fault surfaces
       [--shard-cycles N]       checkpoint-parallel run: snapshot every N
                                retired instructions, re-execute the
                                shards on worker threads, and prove the
                                stitched result bit-identical to a
                                sequential run before printing it
       [--threads T]            shard worker threads (with --shard-cycles;
                                default: available parallelism)
  risc1 replay <trace.json>     re-execute a recorded campaign bit for bit
       [--minimize]             delta-debug to a minimal failing event set
       [--out <path>]           write the minimized journal here
       [--fetch <addr>]         pull the journal from a running serve
                                instance over TCP (sequence-numbered
                                chunks) instead of reading a local file
       [--job <id>]             the service job id to fetch (with --fetch)
  risc1 trace <file.s> [args…]  execute with a pipeline diagram
  risc1 bench [<workload-id>]   with an id: run one suite workload on
                                RISC I and CX; without: time the whole
                                suite trace vs. superblock vs. cached
                                vs. uncached and write BENCH_interp.json
                                (CI perf gate: all ratios must beat 1.0)
       [--quick]                small arguments + short timing budget
       [--out <path>]           where to write the JSON (suite mode;
                                default BENCH_interp.json)
       [--baseline <file>]      also fail if either geomean regressed
                                more than 10% vs. a stored report
  risc1 serve --tcp <addr>      batch execution service: newline-delimited
                                JSON jobs over TCP (fair-share queuing,
                                dedup, watchdogs, crash-only workers)
  risc1 serve --stdin           same protocol over stdin/stdout
  risc1 serve --smoke           self-test: start a real TCP server, run a
                                mixed 3-job campaign through sockets and
                                assert bit-identity with direct execution
       [--threads N]            worker threads (default: parallelism)
       [--queue-cap N]          per-client queue bound (default 64)
       [--cache-cap N]          dedup result-cache entries (default 256)
       [--artifact-dir <dir>]   panic-journal funnel (default
                                target/replay-artifacts)
       [--wal-dir <dir>]        append every admission and completion to a
                                crash-safe write-ahead log in <dir>
       [--recover <dir>]        replay the WAL in <dir> on startup:
                                completed results re-seed the cache,
                                incomplete jobs re-enqueue (implies
                                --wal-dir <dir>)
  risc1 exp <e1…e16|all>        print an experiment report
  risc1 list                    available workloads and experiments

  RISC1_THREADS=<n> pins the worker count for parallel experiment
  campaigns (e13–e15) and shard workers (default: available parallelism)";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn parse_args(args: &[String]) -> Result<Vec<i32>, String> {
    args.iter()
        .map(|a| {
            a.parse::<i32>()
                .map_err(|e| format!("bad argument `{a}`: {e}"))
        })
        .collect()
}

fn cmd_asm(path: &str) -> CliResult {
    let src = read(path)?;
    let prog = assemble(&src).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; {} instructions, {} bytes",
        prog.len(),
        prog.code_bytes()
    );
    out.push_str(&disassemble(&prog));
    Ok(out)
}

fn cmd_lint(path: &str, rest: &[String]) -> CliResult {
    let mut json = false;
    let mut config = risc1_lint::LintConfig::default();
    let mut handlers: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--windows" => {
                let n = it.next().ok_or("--windows needs a value")?;
                config.windows = n
                    .parse()
                    .map_err(|e| format!("bad --windows value `{n}`: {e}"))?;
            }
            "--trap-handler" => {
                let v = it
                    .next()
                    .ok_or("--trap-handler needs a symbol or byte offset")?;
                handlers.push(v.clone());
            }
            other => return Err(format!("unknown lint flag `{other}`\n{USAGE}")),
        }
    }
    let src = read(path)?;
    let prog = assemble(&src).map_err(|e| e.to_string())?;
    for h in &handlers {
        let off = match prog.symbols.get(h.as_str()) {
            Some(&o) => o,
            None => h.parse::<u32>().map_err(|_| {
                format!("--trap-handler `{h}`: neither a symbol in this program nor a byte offset")
            })?,
        };
        config.trap_handlers.push(off);
    }
    let diags = risc1_lint::lint_program(&prog, &config);
    let rendered = if json {
        risc1_lint::render_json(&diags)
    } else {
        risc1_lint::render_text(&diags)
    };
    if risc1_lint::has_errors(&diags) {
        Err(rendered)
    } else {
        Ok(rendered)
    }
}

/// Options accepted by `run`/`trace` after the file name.
struct RunOpts {
    args: Vec<i32>,
    inject_seed: Option<u64>,
    rate: Option<u32>,
    trap_handlers: bool,
    record: Option<String>,
    supervise: bool,
    ckpt_every: Option<u64>,
    max_retries: Option<u32>,
    fuel: Option<u64>,
    timeout_ms: Option<u64>,
    engine: Option<ExecEngine>,
    shard_cycles: Option<u64>,
    threads: Option<usize>,
}

fn parse_run_opts(rest: &[String]) -> Result<RunOpts, String> {
    let mut plain: Vec<String> = Vec::new();
    let mut inject_seed = None;
    let mut rate = None;
    let mut trap_handlers = false;
    let mut record = None;
    let mut supervise = false;
    let mut ckpt_every = None;
    let mut max_retries = None;
    let mut fuel = None;
    let mut timeout_ms = None;
    let mut engine = None;
    let mut shard_cycles = None;
    let mut threads = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trap-handlers" => trap_handlers = true,
            "--supervise" => supervise = true,
            "--inject" => {
                let v = it.next().ok_or("--inject needs a seed")?;
                inject_seed = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("bad --inject seed `{v}`: {e}"))?,
                );
            }
            "--rate" => {
                let v = it.next().ok_or("--rate needs a value")?;
                rate = Some(
                    v.parse::<u32>()
                        .map_err(|e| format!("bad --rate value `{v}`: {e}"))?,
                );
            }
            "--record" => {
                let v = it.next().ok_or("--record needs a file path")?;
                record = Some(v.clone());
            }
            "--ckpt-every" => {
                let v = it.next().ok_or("--ckpt-every needs a value")?;
                ckpt_every = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("bad --ckpt-every value `{v}`: {e}"))?,
                );
            }
            "--max-retries" => {
                let v = it.next().ok_or("--max-retries needs a value")?;
                max_retries = Some(
                    v.parse::<u32>()
                        .map_err(|e| format!("bad --max-retries value `{v}`: {e}"))?,
                );
            }
            "--fuel" => {
                let v = it.next().ok_or("--fuel needs a value")?;
                fuel = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("bad --fuel value `{v}`: {e}"))?,
                );
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                timeout_ms = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("bad --timeout-ms value `{v}`: {e}"))?,
                );
            }
            "--engine" => {
                let v = it.next().ok_or("--engine needs a tier name")?;
                engine = Some(parse_engine(v)?);
            }
            "--shard-cycles" => {
                let v = it.next().ok_or("--shard-cycles needs a value")?;
                shard_cycles = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("bad --shard-cycles value `{v}`: {e}"))?,
                );
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                threads = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --threads value `{v}`: {e}"))?,
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown run flag `{other}`\n{USAGE}"))
            }
            other => plain.push(other.to_string()),
        }
    }
    if rate.is_some() && inject_seed.is_none() {
        return Err("--rate only makes sense with --inject".to_string());
    }
    if record.is_some() && inject_seed.is_none() {
        return Err("--record only makes sense with --inject".to_string());
    }
    if record.is_some() && supervise {
        return Err("--record and --supervise are mutually exclusive \
                    (journals record a single attempt)"
            .to_string());
    }
    if (ckpt_every.is_some() || max_retries.is_some()) && !supervise {
        return Err("--ckpt-every/--max-retries only make sense with --supervise".to_string());
    }
    if timeout_ms.is_some() && record.is_some() {
        return Err("--timeout-ms and --record are mutually exclusive                     (journals record a complete campaign)"
            .to_string());
    }
    if threads.is_some() && shard_cycles.is_none() {
        return Err("--threads only makes sense with --shard-cycles".to_string());
    }
    if shard_cycles.is_some() && supervise {
        return Err("--shard-cycles and --supervise are mutually exclusive".to_string());
    }
    if shard_cycles.is_some() && record.is_some() {
        return Err("--shard-cycles and --record are mutually exclusive".to_string());
    }
    if shard_cycles.is_some() && timeout_ms.is_some() {
        return Err("--shard-cycles and --timeout-ms are mutually exclusive \
             (shard boundaries are instruction counts, not wall-clock)"
            .to_string());
    }
    Ok(RunOpts {
        args: parse_args(&plain)?,
        inject_seed,
        rate,
        trap_handlers,
        record,
        supervise,
        ckpt_every,
        max_retries,
        fuel,
        timeout_ms,
        engine,
        shard_cycles,
        threads,
    })
}

fn parse_engine(v: &str) -> Result<ExecEngine, String> {
    ExecEngine::from_name(v)
        .ok_or_else(|| format!("bad --engine `{v}` (uncached | cached | superblock | trace)"))
}

fn cmd_run(path: &str, rest: &[String], trace: bool) -> CliResult {
    let src = read(path)?;
    let prog = assemble(&src).map_err(|e| e.to_string())?;
    let opts = parse_run_opts(rest)?;
    let mut cfg = SimConfig {
        record_trace: trace,
        ..SimConfig::default()
    };
    if let Some(fuel) = opts.fuel {
        cfg.fuel = fuel;
    }
    if let Some(engine) = opts.engine {
        cfg.engine = engine;
    }
    let recovery = opts.trap_handlers || opts.inject_seed.is_some();
    if opts.shard_cycles.is_some() {
        if trace {
            return Err("--shard-cycles is not available under `trace` \
                        (pipeline diagrams need one continuous run)"
                .to_string());
        }
        return cmd_run_sharded(&prog, &opts, cfg, recovery);
    }
    if opts.supervise {
        return cmd_run_supervised(&prog, &opts, cfg, recovery);
    }
    if let (Some(seed), Some(record)) = (opts.inject_seed, &opts.record) {
        let mut icfg = InjectConfig::with_seed(seed);
        if let Some(r) = opts.rate {
            icfg.rate = r;
        }
        return cmd_run_recorded(&prog, &opts, cfg, icfg, recovery, record);
    }
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(&prog).map_err(|e| e.to_string())?;
    cpu.try_set_args(&opts.args).map_err(|e| e.to_string())?;
    if recovery {
        install_recovery_handlers(&mut cpu, RECOVERY_STUB_BASE).map_err(|e| e.to_string())?;
    }
    let deadline = opts.timeout_ms.map(Deadline::after_ms);
    let mut out = String::new();
    if let Some(seed) = opts.inject_seed {
        let mut icfg = InjectConfig::with_seed(seed);
        if let Some(r) = opts.rate {
            icfg.rate = r;
        }
        let rate = icfg.rate;
        let mut injector = FaultInjector::new(icfg);
        let mut step: u64 = 0;
        let mut timed_out = false;
        let fault = loop {
            if let Some(d) = deadline {
                if Deadline::should_poll(step) && d.expired() {
                    timed_out = true;
                    break None;
                }
            }
            injector.pre_step(&mut cpu);
            let halt = cpu.step();
            step += 1;
            match halt {
                Ok(Halt::Running) => {}
                Ok(Halt::Returned) => break None,
                Err(e) => break Some(e),
            }
        };
        let _ = writeln!(
            out,
            "injected {} faults (seed {seed}, rate {rate}/10000)",
            injector.events().len()
        );
        for ev in injector.events() {
            let _ = writeln!(out, "  {ev}");
        }
        if timed_out {
            let _ = writeln!(out, "{}", cpu.stats());
            return Err(format!(
                "{out}timeout: wall-clock budget ({} ms) expired",
                opts.timeout_ms.unwrap_or(0)
            ));
        }
        if let Some(e) = fault {
            let _ = writeln!(out, "{}", cpu.stats());
            return Err(format!("{out}fault: {e}"));
        }
    } else if let Some(d) = deadline {
        // Batch `step_n` between wall-clock polls: same architectural
        // behaviour as `run()`, one syscall per poll interval.
        loop {
            if d.expired() {
                let _ = writeln!(out, "{}", cpu.stats());
                return Err(format!(
                    "{out}timeout: wall-clock budget ({} ms) expired",
                    opts.timeout_ms.unwrap_or(0)
                ));
            }
            match cpu.step_n(DEADLINE_POLL_STEPS).map_err(|e| e.to_string())? {
                Halt::Running => {}
                Halt::Returned => break,
            }
        }
    } else {
        cpu.run().map_err(|e| e.to_string())?;
    }
    let _ = writeln!(out, "result: {}", cpu.result());
    let _ = writeln!(out, "{}", cpu.stats());
    if trace {
        let _ = writeln!(
            out,
            "\n{}",
            risc1_core::pipeline::render_timing(cpu.trace(), 64)
        );
    }
    Ok(out)
}

/// `run --shard-cycles N`: checkpoint-parallel execution. A fast planning
/// pass cuts the run at every N retired instructions, worker threads
/// re-execute the shards from their snapshots, and the stitcher proves
/// the folded result bit-identical to sequential execution before
/// anything is printed.
fn cmd_run_sharded(
    prog: &risc1_core::Program,
    opts: &RunOpts,
    cfg: SimConfig,
    recovery: bool,
) -> CliResult {
    let shard_cycles = opts.shard_cycles.expect("caller checked");
    let threads = opts.threads.unwrap_or(0);
    let injected = opts.inject_seed.is_some();
    let report = if injected || recovery {
        // `--trap-handlers` without `--inject` still needs the recovery
        // stubs, which the injected planner installs; a zero-rate, no-mode
        // injector makes that path architecturally identical to a plain
        // run with handlers.
        let mut icfg = InjectConfig::with_seed(opts.inject_seed.unwrap_or(0));
        if let Some(r) = opts.rate {
            icfg.rate = r;
        }
        if !injected {
            icfg.rate = 0;
            icfg.modes = InjectModes::none();
        }
        run_sharded_injected(prog, &opts.args, cfg, icfg, recovery, shard_cycles, threads)
            .map(|rep| (rep, Some(icfg)))
    } else {
        run_sharded_with(prog, &opts.args, cfg, shard_cycles, threads).map(|rep| (rep, None))
    };
    let (rep, icfg) = report.map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sharded run: {} shard(s) of {} instruction(s) on {} thread(s)",
        rep.shards(),
        shard_cycles,
        rep.threads
    );
    let _ = writeln!(
        out,
        "plan {:.1} ms + shards {:.1} ms; stitch proved: arch {:#018x}, mem {:#018x}",
        rep.plan_wall.as_secs_f64() * 1e3,
        rep.exec_wall.as_secs_f64() * 1e3,
        rep.arch_digest,
        rep.mem_digest,
    );
    if let Some(icfg) = icfg.filter(|_| injected) {
        let _ = writeln!(
            out,
            "injected {} faults (seed {}, rate {}/10000)",
            rep.report.events.len(),
            icfg.seed,
            icfg.rate
        );
        for ev in &rep.report.events {
            let _ = writeln!(out, "  {ev}");
        }
    }
    match rep.report.outcome {
        InjectOutcome::Halted { result } => {
            let _ = writeln!(out, "result: {result}");
            let _ = writeln!(out, "{}", rep.report.stats);
            Ok(out)
        }
        InjectOutcome::Faulted { ref error } => {
            let _ = writeln!(out, "{}", rep.report.stats);
            Err(format!("{out}fault: {error}"))
        }
    }
}

/// `run --supervise`: execute under the checkpoint + rollback-and-retry
/// supervisor and render its report.
fn cmd_run_supervised(
    prog: &risc1_core::Program,
    opts: &RunOpts,
    cfg: SimConfig,
    recovery: bool,
) -> CliResult {
    let inject = opts.inject_seed.map(|seed| {
        let mut icfg = InjectConfig::with_seed(seed);
        if let Some(r) = opts.rate {
            icfg.rate = r;
        }
        icfg
    });
    let mut sup = SupervisorConfig::default();
    if let Some(n) = opts.ckpt_every {
        sup.ckpt_every = n;
    }
    if let Some(k) = opts.max_retries {
        sup.max_retries = k;
    }
    sup.deadline = opts.timeout_ms.map(Deadline::after_ms);
    let report = run_risc_supervised(prog, &opts.args, cfg, inject, recovery, sup)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "supervised run: {} attempt(s), {} rollback(s), {} instruction(s) discarded",
        report.attempts, report.rollbacks, report.lost_instructions
    );
    let c = report.checkpoints;
    let _ = writeln!(
        out,
        "checkpoints: {} taken, {} page(s) / {} byte(s) copied, \
         {} modeled cycle(s) ({:.2}% overhead)",
        c.checkpoints,
        c.pages_copied,
        c.bytes_copied,
        c.modeled_cycles,
        report.checkpoint_overhead() * 100.0
    );
    if !report.events.is_empty() {
        let _ = writeln!(
            out,
            "injected {} fault(s) across attempts",
            report.events.len()
        );
        for ev in &report.events {
            let _ = writeln!(out, "  {ev}");
        }
    }
    match report.outcome {
        SupervisorOutcome::Halted { result } => {
            let _ = writeln!(out, "result: {result}");
            let _ = writeln!(out, "{}", report.stats);
            Ok(out)
        }
        SupervisorOutcome::Faulted { error } => {
            let _ = writeln!(out, "{}", report.stats);
            Err(format!("{out}fault (retries exhausted): {error}"))
        }
        SupervisorOutcome::WatchdogExpired => {
            let _ = writeln!(out, "{}", report.stats);
            Err(format!("{out}watchdog budget expired"))
        }
        SupervisorOutcome::DeadlineExceeded => {
            let _ = writeln!(out, "{}", report.stats);
            Err(format!("{out}timeout: wall-clock budget expired"))
        }
    }
}

/// `run --inject --record`: run the campaign while writing a replayable
/// journal.
fn cmd_run_recorded(
    prog: &risc1_core::Program,
    opts: &RunOpts,
    cfg: SimConfig,
    icfg: InjectConfig,
    recovery: bool,
    record: &str,
) -> CliResult {
    let (journal, report) =
        record_risc_injected(prog, &opts.args, cfg, icfg, recovery).map_err(|e| e.to_string())?;
    std::fs::write(record, journal.to_json()).map_err(|e| format!("{record}: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recorded {} event(s) (seed {}, rate {}/10000) to {record}",
        journal.events.len(),
        icfg.seed,
        icfg.rate
    );
    for ev in &report.events {
        let _ = writeln!(out, "  {ev}");
    }
    match report.outcome {
        risc1_ir::InjectOutcome::Halted { result } => {
            let _ = writeln!(out, "result: {result}");
            let _ = writeln!(out, "{}", report.stats);
            Ok(out)
        }
        risc1_ir::InjectOutcome::Faulted { error } => {
            let _ = writeln!(out, "{}", report.stats);
            Err(format!("{out}fault: {error}"))
        }
    }
}

/// `replay <trace.json>` / `replay --fetch <addr> --job <id>`: re-execute
/// a recorded campaign bit for bit — from a local journal file or from a
/// running serve instance's chunked journal stream — optionally
/// delta-debugging it down to a minimal failing event set.
fn cmd_replay(rest: &[String]) -> CliResult {
    let mut minimize = false;
    let mut out_path: Option<String> = None;
    let mut fetch: Option<String> = None;
    let mut job: Option<u64> = None;
    let mut path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--minimize" => minimize = true,
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                out_path = Some(v.clone());
            }
            "--fetch" => {
                let v = it.next().ok_or("--fetch needs an address (host:port)")?;
                fetch = Some(v.clone());
            }
            "--job" => {
                let v = it.next().ok_or("--job needs a job id")?;
                job = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("bad --job id `{v}`: {e}"))?,
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown replay flag `{other}`\n{USAGE}"))
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err(format!("replay takes one journal file\n{USAGE}"));
                }
            }
        }
    }
    if out_path.is_some() && !minimize {
        return Err("--out only makes sense with --minimize".to_string());
    }
    if job.is_some() && fetch.is_none() {
        return Err("--job only makes sense with --fetch".to_string());
    }
    let (text, origin) = match (fetch, path) {
        (Some(addr), None) => {
            let id = job.ok_or("--fetch needs --job <id>")?;
            (fetch_journal(&addr, id)?, format!("{addr} job {id}"))
        }
        (None, Some(p)) => (read(&p)?, p),
        (Some(_), Some(_)) => {
            return Err("give either a journal file or --fetch, not both".to_string())
        }
        (None, None) => return Err(format!("replay needs a journal file or --fetch\n{USAGE}")),
    };
    let journal = Journal::from_json(&text).map_err(|e| format!("{origin}: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "journal: {} event(s), seed {}, rate {}/10000, recovery {}",
        journal.events.len(),
        journal.seed,
        journal.rate,
        if journal.recovery { "on" } else { "off" }
    );
    let report = replay_journal(&journal).map_err(|e| e.to_string())?;
    let replayed = recorded_outcome(&report);
    let _ = writeln!(out, "replayed outcome: {}", replayed.signature);
    let _ = writeln!(out, "instructions: {}", replayed.instructions);
    let counts: Vec<String> = TrapKind::ALL
        .iter()
        .map(|k| format!("{}={}", k.name(), replayed.trap_counts[k.index()]))
        .collect();
    let _ = writeln!(out, "trap counts: {}", counts.join(" "));
    if let Some(recorded) = &journal.outcome {
        if *recorded != replayed {
            let _ = writeln!(out, "recorded outcome: {}", recorded.signature);
            let _ = writeln!(out, "recorded instructions: {}", recorded.instructions);
            return Err(format!("{out}replay DIVERGED from the recording"));
        }
        let _ = writeln!(out, "replay matches the recording bit for bit");
    }
    if minimize {
        let minimized = minimize_journal(&journal).map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "minimized: {} event(s) -> {} event(s), same signature",
            journal.events.len(),
            minimized.events.len()
        );
        for ev in &minimized.events {
            let _ = writeln!(out, "  {ev}");
        }
        if let Some(p) = out_path {
            std::fs::write(&p, minimized.to_json()).map_err(|e| format!("{p}: {e}"))?;
            let _ = writeln!(out, "wrote minimized journal to {p}");
        }
    }
    Ok(out)
}

/// Pulls job `id`'s replay journal from a serve instance at `addr`, one
/// bounded sequence-numbered chunk per request, and reassembles the text.
fn fetch_journal(addr: &str, id: u64) -> Result<String, String> {
    use risc1_core::json::{get, Parser};
    use std::io::{BufRead, BufReader, Write};
    let mut tx = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut rx = BufReader::new(tx.try_clone().map_err(|e| e.to_string())?);
    let mut text = String::new();
    let mut seq = 0u64;
    loop {
        let req = format!("{{\"op\":\"journal\",\"id\":{id},\"seq\":{seq}}}\n");
        tx.write_all(req.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        rx.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        let v = Parser::new(line.trim_end())
            .parse_document()
            .map_err(|e| format!("chunk {seq} is not valid JSON: {e}"))?;
        let obj = v.as_obj("journal chunk").map_err(|e| e.to_string())?;
        if get(obj, "ok").and_then(|o| o.as_bool("ok")) != Ok(true) {
            return Err(format!(
                "server refused journal chunk {seq}: {}",
                line.trim_end()
            ));
        }
        text.push_str(
            get(obj, "data")
                .and_then(|d| d.as_str("data"))
                .map_err(|e| e.to_string())?,
        );
        if get(obj, "last").and_then(|l| l.as_bool("last")) == Ok(true) {
            return Ok(text);
        }
        seq += 1;
    }
}

fn cmd_bench(args: &[String]) -> CliResult {
    // A single positional id keeps the original RISC-vs-CX comparison;
    // no positional (optionally `--quick` / `--out`) runs the host-side
    // interpreter benchmark across the suite and writes BENCH_interp.json.
    match args.first().map(String::as_str) {
        Some(id) if !id.starts_with("--") => cmd_bench_one(id, &args[1..]),
        _ => cmd_bench_suite(args),
    }
}

fn cmd_bench_suite(args: &[String]) -> CliResult {
    let mut quick = false;
    let mut out_path = "BENCH_interp.json".to_string();
    let mut baseline = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = it
                    .next()
                    .ok_or_else(|| format!("--out needs a path\n{USAGE}"))?
                    .clone();
            }
            "--baseline" => {
                baseline = Some(
                    it.next()
                        .ok_or_else(|| format!("--baseline needs a path\n{USAGE}"))?
                        .clone(),
                );
            }
            other => return Err(format!("unknown bench flag `{other}`\n{USAGE}")),
        }
    }
    let report = risc1_experiments::bench::run_suite(quick);
    std::fs::write(&out_path, report.to_json()).map_err(|e| format!("{out_path}: {e}"))?;
    let sb = report.geomean_superblock_speedup();
    let cached = report.geomean_cached_speedup();
    let trace = report.geomean_trace_speedup();
    let mut out = report.render();
    let _ = writeln!(out, "\nwrote {out_path}");
    // The CI perf gate: each tier must pay for itself in aggregate — the
    // decode cache over raw stepping, and superblocks and traces over the
    // cache.
    if cached <= 1.0 {
        return Err(format!(
            "{out}\nperf gate failed: cached geomean speedup {cached:.2}x is not > 1.0"
        ));
    }
    if sb <= 1.0 {
        return Err(format!(
            "{out}\nperf gate failed: superblock geomean speedup {sb:.2}x over cached is not > 1.0"
        ));
    }
    if trace <= 1.0 {
        return Err(format!(
            "{out}\nperf gate failed: trace geomean speedup {trace:.2}x over cached is not > 1.0"
        ));
    }
    // The sharded gate is conditional on actual parallelism: with one
    // worker the planning pass is pure overhead and only the (always
    // enforced) bit-identity stitch proof is meaningful.
    let shard = report.geomean_shard_speedup();
    if report.shard_workers() >= 2 && shard <= 1.0 {
        return Err(format!(
            "{out}\nperf gate failed: sharded geomean speedup {shard:.2}x over sequential is \
             not > 1.0 despite {} workers",
            report.shard_workers()
        ));
    }
    if let Some(path) = baseline {
        let doc = read(&path)?;
        let line = risc1_experiments::bench::check_against_baseline(&report, &doc)
            .map_err(|e| format!("{out}\n{e}"))?;
        let _ = writeln!(out, "{line}");
    }
    Ok(out)
}

fn cmd_bench_one(id: &str, rest: &[String]) -> CliResult {
    let mut engine = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                let v = it.next().ok_or("--engine needs a tier name")?;
                engine = Some(parse_engine(v)?);
            }
            other => return Err(format!("unknown bench flag `{other}`\n{USAGE}")),
        }
    }
    let w = risc1_workloads::by_id(id)
        .ok_or_else(|| format!("unknown workload `{id}` (try `risc1 list`)"))?;
    let mut cfg = SimConfig::default();
    if let Some(engine) = engine {
        cfg.engine = engine;
    }
    let m = measure_with(&w, &w.args.clone(), cfg);
    let mut out = String::new();
    let _ = writeln!(out, "{}: {}", w.id, w.description);
    let _ = writeln!(out, "result        {}", m.result);
    let _ = writeln!(
        out,
        "RISC I        {} instructions, {} cycles (cpi {:.2})",
        m.risc.instructions,
        m.risc.cycles,
        m.risc.cpi()
    );
    let _ = writeln!(
        out,
        "CX            {} instructions, {} cycles (cpi {:.2})",
        m.cx.instructions,
        m.cx.cycles,
        m.cx.cpi()
    );
    let _ = writeln!(
        out,
        "speedup       {:.2}x  (CX cycles / RISC I cycles)",
        m.speedup()
    );
    let _ = writeln!(
        out,
        "code size     RISC I {} B vs CX {} B ({:.2}x)",
        m.risc_code_bytes,
        m.cx_code_bytes,
        m.code_ratio()
    );
    Ok(out)
}

fn cmd_exp(id: &str) -> CliResult {
    use risc1_experiments as e;
    Ok(match id {
        "e1" => e::e1_complexity::run(),
        "e2" => e::e2_instruction_set::run(),
        "e3" => e::e3_formats::run(),
        "e4" => e::e4_windows_figure::run(),
        "e5" => e::e5_call_cost::run(),
        "e6" => e::e6_exec_time::run(),
        "e7" => e::e7_code_size::run(),
        "e8" => e::e8_window_sweep::run(),
        "e9" => e::e9_delay_slots::run(),
        "e10" => e::e10_area::run(),
        "e11" => e::e11_pipeline_trace::run(),
        "e12" => e::e12_instruction_mix::run(),
        "e13" => e::e13_fault_recovery::run(),
        "e14" => e::e14_checkpoint_overhead::run(),
        "e15" => e::e15_fusion_ablation::run(),
        "e16" => e::e16_shard_scaling::run(),
        "ablations" => e::ablations::run(),
        "all" => e::run_all(),
        other => {
            return Err(format!(
                "unknown experiment `{other}` (e1…e16, ablations, all)"
            ))
        }
    })
}

fn listing() -> String {
    let mut out = String::from("workloads:\n");
    for w in risc1_workloads::all() {
        let _ = writeln!(out, "  {:16} {}", w.id, w.description);
    }
    out.push_str("\nexperiments: e1…e16, ablations, all (see DESIGN.md §3)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn usage_on_empty_or_unknown() {
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn list_shows_workloads() {
        let out = dispatch(&s(&["list"])).unwrap();
        assert!(out.contains("acker") && out.contains("sieve"));
    }

    #[test]
    fn spec_audit_passes_on_the_tree() {
        let out = dispatch(&s(&["lint", "--spec-audit"])).unwrap();
        assert!(out.contains("spec-audit: ok"), "{out}");
    }

    #[test]
    fn spec_audit_rejects_stray_arguments() {
        let err = dispatch(&s(&["lint", "--spec-audit", "foo.s"])).unwrap_err();
        assert!(err.contains("takes no arguments"), "{err}");
    }

    #[test]
    fn exp_rejects_unknown_id() {
        assert!(dispatch(&s(&["exp", "e99"])).is_err());
        assert!(dispatch(&s(&["exp", "e2"])).unwrap().contains("ldhi"));
    }

    #[test]
    fn bench_runs_a_small_workload() {
        let out = dispatch(&s(&["bench", "fib"])).unwrap();
        assert!(out.contains("speedup"));
        // Any engine tier produces the same measurement (simulated
        // behaviour is engine-independent).
        let cached = dispatch(&s(&["bench", "fib", "--engine", "cached"])).unwrap();
        assert_eq!(out, cached);
        assert!(dispatch(&s(&["bench", "zzz"])).is_err());
        assert!(dispatch(&s(&["bench", "fib", "--quick"])).is_err());
        assert!(dispatch(&s(&["bench", "fib", "--engine", "warp"])).is_err());
    }

    #[test]
    fn bench_suite_writes_the_json_gate_artifact() {
        let dir = std::env::temp_dir().join("risc1_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_interp.json");
        let p = path.to_str().unwrap();
        // Debug-build timing is too noisy for the >1.0 gate, so accept
        // either verdict — both paths render the table and write the file.
        let out = match dispatch(&s(&["bench", "--quick", "--out", p])) {
            Ok(t) | Err(t) => t,
        };
        assert!(out.contains("geomean"), "{out}");
        let json = std::fs::read_to_string(p).unwrap();
        assert!(
            json.contains("\"schema\": \"risc1-bench-interp/v4\""),
            "{json}"
        );
        assert!(json.contains("\"id\": \"fib\""));
        assert!(json.contains("\"superblock_ips\""), "{json}");
        assert!(json.contains("\"trace_ips\""), "{json}");
        assert!(json.contains("\"trace_coverage\""), "{json}");
        assert!(json.contains("\"geomean_superblock_speedup\""), "{json}");
        assert!(json.contains("\"geomean_trace_speedup\""), "{json}");
        assert!(json.contains("\"sharded\""), "{json}");
        assert!(json.contains("\"shard_speedup\""), "{json}");
        assert!(json.contains("\"shard_workers\""), "{json}");
        // A self-baseline never regresses by >10%, so the comparison
        // passes whenever the primary >1.0 gate does; a baseline with
        // absurdly high stored aggregates must fail the run outright.
        let absurd = dir.join("absurd_baseline.json");
        std::fs::write(
            &absurd,
            "{\"geomean_cached_speedup\": 1000.0,\n \"geomean_superblock_speedup\": 1000.0,\n \"geomean_trace_speedup\": 1000.0}\n",
        )
        .unwrap();
        let vs_absurd = dispatch(&s(&[
            "bench",
            "--quick",
            "--out",
            p,
            "--baseline",
            absurd.to_str().unwrap(),
        ]));
        let text = match vs_absurd {
            Ok(t) | Err(t) => t,
        };
        assert!(
            text.contains("regression") || text.contains("not > 1.0"),
            "{text}"
        );
        assert!(dispatch(&s(&["bench", "--bogus"])).is_err());
        assert!(dispatch(&s(&["bench", "--out"])).is_err());
        assert!(dispatch(&s(&["bench", "--baseline"])).is_err());
        assert!(dispatch(&s(&["bench", "--quick", "--baseline", "/nonexistent.json"])).is_err());
    }

    #[test]
    fn asm_and_run_roundtrip_through_a_temp_file() {
        let dir = std::env::temp_dir().join("risc1_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.s");
        std::fs::write(&path, "add r16, r26, #2\nadd r26, r16, #0\nhalt\nnop\n").unwrap();
        let p = path.to_str().unwrap();
        let asm = dispatch(&s(&["asm", p])).unwrap();
        assert!(asm.contains("add r16, r26, #2"));
        let run = dispatch(&s(&["run", p, "40"])).unwrap();
        assert!(run.contains("result: 42"), "{run}");
        // The engine tier is a pure speed knob — architectural output is
        // identical (only the superblock/trace telemetry lines may appear).
        let arch = |t: &str| {
            t.lines()
                .filter(|l| !l.starts_with("superblocks") && !l.starts_with("traces"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for engine in ["uncached", "cached", "superblock", "trace"] {
            let tier = dispatch(&s(&["run", p, "40", "--engine", engine])).unwrap();
            assert_eq!(arch(&run), arch(&tier), "--engine {engine}");
        }
        assert!(dispatch(&s(&["run", p, "40", "--engine", "warp"])).is_err());
        assert!(dispatch(&s(&["run", p, "40", "--engine"])).is_err());
        let trace = dispatch(&s(&["trace", p, "40", "--engine", "cached"])).unwrap();
        assert!(trace.contains('E'));
        let bad = dispatch(&s(&["run", p, "x"]));
        assert!(bad.is_err());
    }

    fn write_temp(name: &str, src: &str) -> String {
        let dir = std::env::temp_dir().join("risc1_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, src).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn lint_trap_handler_flag_declares_a_root() {
        let p = write_temp(
            "h.s",
            ".entry main
            handler:
                add  r2, r24, #0
                ret  r25, #0
                nop
            main:
                halt
                nop
            ",
        );
        // Without the flag the handler is just dead code; with it, the
        // body is live and the missing reti is a warning (exit code 0).
        let bare = dispatch(&s(&["lint", &p])).unwrap();
        assert!(!bare.contains("trap-handler-missing-reti"), "{bare}");
        let flagged = dispatch(&s(&["lint", &p, "--trap-handler", "handler"])).unwrap();
        assert!(flagged.contains("trap-handler-missing-reti"), "{flagged}");
        assert!(!flagged.contains("unreachable-code"), "{flagged}");
        let unknown = dispatch(&s(&["lint", &p, "--trap-handler", "nosuch"]));
        assert!(unknown.unwrap_err().contains("nosuch"));
    }

    #[test]
    fn record_replay_and_minimize_round_trip_through_files() {
        let p = write_temp("rec.s", "add r16, r26, #2\nadd r26, r16, #0\nhalt\nnop\n");
        let trace = write_temp("rec_trace.json", "");
        // Record a campaign (rate high enough to apply something).
        let rec = dispatch(&s(&[
            "run", &p, "40", "--inject", "9", "--rate", "4000", "--record", &trace,
        ]));
        let text = match &rec {
            Ok(t) => t.clone(),
            Err(t) => t.clone(),
        };
        assert!(text.contains("recorded"), "{text}");
        // Replay must match the recording exactly, whatever the outcome.
        let rep = dispatch(&s(&["replay", &trace])).unwrap();
        assert!(rep.contains("replay matches the recording"), "{rep}");
        // Minimize and write the result; the minimized journal replays too.
        let min_path = write_temp("rec_trace.min.json", "");
        let min = dispatch(&s(&["replay", &trace, "--minimize", "--out", &min_path])).unwrap();
        assert!(min.contains("minimized:"), "{min}");
        let again = dispatch(&s(&["replay", &min_path])).unwrap();
        assert!(again.contains("replay matches the recording"), "{again}");
        // Flag validation.
        assert!(dispatch(&s(&["replay", &trace, "--out", "x"])).is_err());
        assert!(dispatch(&s(&["run", &p, "40", "--record", &trace])).is_err());
        assert!(dispatch(&s(&["replay", "/nonexistent.json"])).is_err());
    }

    #[test]
    fn supervised_run_reports_checkpoints() {
        let p = write_temp("sup.s", "add r16, r26, #2\nadd r26, r16, #0\nhalt\nnop\n");
        let out = dispatch(&s(&[
            "run",
            &p,
            "40",
            "--supervise",
            "--ckpt-every",
            "2",
            "--max-retries",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("supervised run"), "{out}");
        assert!(out.contains("result: 42"), "{out}");
        // Supervisor flags require --supervise; --record conflicts.
        assert!(dispatch(&s(&["run", &p, "40", "--ckpt-every", "5"])).is_err());
        assert!(dispatch(&s(&[
            "run",
            &p,
            "40",
            "--inject",
            "1",
            "--record",
            "t.json",
            "--supervise",
        ]))
        .is_err());
    }

    /// The doc-comment triangular-number loop: long enough to cut into
    /// many shards at a small `--shard-cycles`.
    const TRI_LOOP: &str = "        add   r16, r0, #0
        add   r17, r26, #0
loop:   sub   r0, r17, #0 {scc}
        jmpr  eq, done
        nop
        add   r16, r16, r17
        jmpr  alw, loop
        sub   r17, r17, #1
done:   add   r26, r16, #0
        ret   r25, #8
        nop
";

    #[test]
    fn sharded_run_reports_and_validates() {
        let p = write_temp("shard.s", TRI_LOOP);
        let out = dispatch(&s(&[
            "run",
            &p,
            "500",
            "--shard-cycles",
            "300",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("sharded run:"), "{out}");
        assert!(out.contains("result: 125250"), "{out}");
        assert!(out.contains("stitch proved"), "{out}");
        // Engine choice is a pure speed knob under sharding too.
        let uncached = dispatch(&s(&[
            "run",
            &p,
            "500",
            "--shard-cycles",
            "300",
            "--engine",
            "uncached",
        ]))
        .unwrap();
        assert!(uncached.contains("result: 125250"), "{uncached}");
        // Flag validation.
        assert!(dispatch(&s(&["run", &p, "500", "--threads", "2"])).is_err());
        assert!(dispatch(&s(&["run", &p, "500", "--shard-cycles", "0"])).is_err());
        assert!(dispatch(&s(&[
            "run",
            &p,
            "500",
            "--shard-cycles",
            "300",
            "--supervise"
        ]))
        .is_err());
        assert!(dispatch(&s(&[
            "run",
            &p,
            "500",
            "--shard-cycles",
            "300",
            "--timeout-ms",
            "99",
        ]))
        .is_err());
        assert!(dispatch(&s(&["trace", &p, "500", "--shard-cycles", "300"])).is_err());
    }

    #[test]
    fn sharded_injection_replays_the_sequential_schedule() {
        let p = write_temp("shard_inj.s", TRI_LOOP);
        let events = |text: &str| {
            text.lines()
                .filter(|l| l.starts_with("  "))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        let plain = match dispatch(&s(&["run", &p, "400", "--inject", "7", "--rate", "90"])) {
            Ok(t) | Err(t) => t,
        };
        let sharded = match dispatch(&s(&[
            "run",
            &p,
            "400",
            "--inject",
            "7",
            "--rate",
            "90",
            "--shard-cycles",
            "250",
        ])) {
            Ok(t) | Err(t) => t,
        };
        assert!(plain.contains("injected"), "{plain}");
        assert!(sharded.contains("injected"), "{sharded}");
        assert_eq!(
            events(&plain),
            events(&sharded),
            "sharded injection must replay the sequential schedule\n{plain}\n{sharded}"
        );
        // --trap-handlers without --inject shards too (zero-rate path).
        let handled = dispatch(&s(&[
            "run",
            &p,
            "400",
            "--trap-handlers",
            "--shard-cycles",
            "250",
        ]))
        .unwrap();
        assert!(handled.contains("result:"), "{handled}");
        assert!(!handled.contains("injected"), "{handled}");
    }

    #[test]
    fn run_injection_flags_are_deterministic_and_validated() {
        let p = write_temp("inj.s", "add r16, r26, #2\nadd r26, r16, #0\nhalt\nnop\n");
        let a = dispatch(&s(&["run", &p, "40", "--inject", "7", "--rate", "5000"]));
        let b = dispatch(&s(&["run", &p, "40", "--inject", "7", "--rate", "5000"]));
        assert_eq!(a, b, "identical seed must reproduce the run verbatim");
        let text = match &a {
            Ok(t) => t.clone(),
            Err(t) => t.clone(),
        };
        assert!(text.contains("injected"), "{text}");
        assert!(dispatch(&s(&["run", &p, "40", "--rate", "5"])).is_err());
        assert!(dispatch(&s(&["run", &p, "40", "--inject", "x"])).is_err());
        let handled = dispatch(&s(&["run", &p, "40", "--trap-handlers"])).unwrap();
        assert!(handled.contains("result: 42"), "{handled}");
    }
}
