//! `risc1 serve`: the fault-tolerant batch execution service, over TCP or
//! stdin/stdout, plus the `--smoke` self-test CI gates on.

use risc1_core::json::{get, Json, Parser};
use risc1_core::{InjectConfig, Journal, SimConfig};
use risc1_ir::{
    compile_risc, recorded_outcome, replay_journal, run_risc, run_risc_deadline, run_risc_injected,
    snapshot_risc_prefix, RiscOpts, TimedOutcome,
};
use risc1_serve::{serve_lines, serve_tcp, wire, ExecService, JobOutput, ServiceConfig};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};

type CliResult = Result<String, String>;

struct ServeOpts {
    mode: Mode,
    threads: Option<usize>,
    queue_cap: Option<usize>,
    cache_cap: Option<usize>,
    artifact_dir: Option<String>,
    wal_dir: Option<String>,
    recover: bool,
}

enum Mode {
    Tcp(String),
    Stdin,
    Smoke,
}

fn parse_opts(rest: &[String]) -> Result<ServeOpts, String> {
    let mut mode = None;
    let mut threads = None;
    let mut queue_cap = None;
    let mut cache_cap = None;
    let mut artifact_dir = None;
    let mut wal_dir = None;
    let mut recover = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tcp" => {
                let v = it.next().ok_or("--tcp needs an address (host:port)")?;
                mode = Some(Mode::Tcp(v.clone()));
            }
            "--stdin" => mode = Some(Mode::Stdin),
            "--smoke" => mode = Some(Mode::Smoke),
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                threads = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --threads value `{v}`: {e}"))?,
                );
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                queue_cap = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --queue-cap value `{v}`: {e}"))?,
                );
            }
            "--cache-cap" => {
                let v = it.next().ok_or("--cache-cap needs a value")?;
                cache_cap = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --cache-cap value `{v}`: {e}"))?,
                );
            }
            "--artifact-dir" => {
                let v = it.next().ok_or("--artifact-dir needs a path")?;
                artifact_dir = Some(v.clone());
            }
            "--wal-dir" => {
                let v = it.next().ok_or("--wal-dir needs a path")?;
                wal_dir = Some(v.clone());
            }
            "--recover" => {
                let v = it.next().ok_or("--recover needs the WAL directory")?;
                wal_dir = Some(v.clone());
                recover = true;
            }
            other => return Err(format!("unknown serve flag `{other}`")),
        }
    }
    Ok(ServeOpts {
        mode: mode.ok_or("serve needs a mode: --tcp <addr> | --stdin | --smoke")?,
        threads,
        queue_cap,
        cache_cap,
        artifact_dir,
        wal_dir,
        recover,
    })
}

fn service_config(opts: &ServeOpts) -> ServiceConfig {
    let mut cfg = ServiceConfig::default();
    if let Some(t) = opts.threads {
        cfg.threads = t.max(1);
    }
    if let Some(q) = opts.queue_cap {
        cfg.queue_cap = q.max(1);
    }
    if let Some(c) = opts.cache_cap {
        cfg.cache_cap = c.max(1);
    }
    if let Some(d) = &opts.artifact_dir {
        cfg.artifact_dir = d.clone();
    }
    cfg.wal_dir = opts.wal_dir.clone();
    cfg.recover = opts.recover;
    cfg
}

/// `risc1 serve --tcp <addr> | --stdin | --smoke [tuning flags]
///  [--wal-dir <dir>] [--recover <dir>]`.
///
/// # Errors
/// Flag errors, bind failures, or (in smoke mode) any transcript check
/// that fails.
pub fn run(rest: &[String]) -> CliResult {
    let opts = parse_opts(rest)?;
    let cfg = service_config(&opts);
    match &opts.mode {
        Mode::Tcp(addr) => {
            let listener =
                TcpListener::bind(addr.as_str()).map_err(|e| format!("bind {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            // Announce the bound address immediately (port 0 resolves here)
            // so scripted clients can connect before the server returns.
            eprintln!("serving on {local}");
            let service = ExecService::start(cfg);
            serve_tcp(&service, listener).map_err(|e| format!("serve: {e}"))?;
            Ok(format!("serve: clean shutdown ({local})\n"))
        }
        Mode::Stdin => {
            let service = ExecService::start(cfg);
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let shut = serve_lines(&service, stdin.lock(), stdout.lock())
                .map_err(|e| format!("serve: {e}"))?;
            if !shut {
                service.shutdown();
            }
            Ok("serve: clean shutdown (stdin)\n".to_owned())
        }
        Mode::Smoke => smoke(cfg),
    }
}

/// One request/response exchange over the smoke connection, appended to
/// the transcript.
fn exchange(
    out: &mut String,
    tx: &mut TcpStream,
    rx: &mut BufReader<TcpStream>,
    request: &str,
) -> Result<Json, String> {
    tx.write_all(request.as_bytes())
        .and_then(|()| tx.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    rx.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
    let _ = writeln!(out, "> {request}");
    let _ = writeln!(out, "< {}", line.trim_end());
    Parser::new(line.trim_end())
        .parse_document()
        .map_err(|e| format!("response is not valid JSON: {e}"))
}

fn job_ids(response: &Json) -> Result<Vec<(u64, u64, bool)>, String> {
    let obj = response.as_obj("response").map_err(|e| e.to_string())?;
    let jobs = get(obj, "jobs")
        .and_then(|j| j.as_arr("jobs"))
        .map_err(|e| e.to_string())?;
    jobs.iter()
        .map(|j| {
            let j = j.as_obj("job")?;
            Ok((
                get(j, "seed")?.as_u64("seed")?,
                get(j, "id")?.as_u64("id")?,
                get(j, "dedup")?.as_bool("dedup")?,
            ))
        })
        .collect::<Result<Vec<_>, risc1_core::json::JsonError>>()
        .map_err(|e| e.to_string())
}

fn done_digest(response: &Json) -> Result<String, String> {
    let obj = response.as_obj("response").map_err(|e| e.to_string())?;
    let state = get(obj, "state")
        .and_then(|s| s.as_str("state"))
        .map_err(|e| e.to_string())?;
    if state != "done" {
        return Err(format!("job not done after wait: state {state}"));
    }
    let result = get(obj, "result")
        .and_then(|r| r.as_obj("result"))
        .map_err(|e| e.to_string())?;
    get(result, "digest")
        .and_then(|d| d.as_str("digest"))
        .map(str::to_owned)
        .map_err(|e| e.to_string())
}

/// The CI smoke gate: start a real TCP server, drive a 3-job mixed
/// campaign (one clean, two injected — faults included) through sockets,
/// assert every result is bit-identical to direct execution, exercise
/// dedup, and shut down cleanly. The transcript is the output.
fn smoke(mut cfg: ServiceConfig) -> CliResult {
    let w = risc1_workloads::by_id("fib").ok_or("smoke workload `fib` missing")?;
    let prog = compile_risc(&w.module, RiscOpts::default()).map_err(|e| e.to_string())?;
    let (_, base) = run_risc(&prog, &w.small_args).map_err(|e| e.to_string())?;
    let sim = SimConfig {
        fuel: base.instructions * 3 + 10_000,
        ..SimConfig::default()
    };
    let rate = (4 * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32;

    cfg.queue_cap = cfg.queue_cap.min(16);
    let service = ExecService::start(cfg);
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(out, "smoke: serving on {addr}");
    let result = std::thread::scope(|scope| -> CliResult {
        let server = scope.spawn(|| serve_tcp(&service, listener));

        // Every in-process gate (including the shutdown handshake) runs in
        // this inner closure: a failing gate must not leave the accept
        // loop blocked, or the scope would hang forever joining the server
        // thread. The error path below always unblocks it first.
        let gates = (|| -> Result<(String, String, Vec<u64>), String> {
            let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
            let mut rx = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
            let mut tx = stream;

            // 1 clean job + 2 injected jobs (all modes, recovery on).
            let clean_req = wire::submit_request(
                "smoke",
                1,
                &prog,
                &w.small_args,
                &sim,
                &[0],
                false,
                0,
                "none",
                false,
                "direct",
                None,
                false,
                None,
            );
            let inject_req = wire::submit_request(
                "smoke",
                1,
                &prog,
                &w.small_args,
                &sim,
                &[3, 11],
                true,
                rate,
                "all",
                true,
                "direct",
                None,
                false,
                None,
            );
            let clean = exchange(&mut out, &mut tx, &mut rx, &clean_req)?;
            let injected = exchange(&mut out, &mut tx, &mut rx, &inject_req)?;
            let mut jobs = job_ids(&clean)?;
            jobs.extend(job_ids(&injected)?);
            if jobs.len() != 3 || jobs.iter().any(|&(_, _, dedup)| dedup) {
                return Err(format!("expected 3 fresh jobs, got {jobs:?}\n{out}"));
            }

            // Expected digests from direct, in-process execution.
            let clean_direct =
                run_risc_deadline(&prog, &w.small_args, sim.clone(), None, false, None, None)
                    .map_err(|e| e.to_string())?;
            let TimedOutcome::Finished(clean_report) = clean_direct else {
                return Err("clean direct run timed out without a deadline".into());
            };
            let mut expected = vec![JobOutput::Finished(clean_report).digest()];
            for &(seed, _, _) in &jobs[1..] {
                let report = run_risc_injected(
                    &prog,
                    &w.small_args,
                    sim.clone(),
                    InjectConfig {
                        seed,
                        rate,
                        modes: risc1_core::inject::InjectModes::all(),
                    },
                    true,
                )
                .map_err(|e| e.to_string())?;
                expected.push(JobOutput::Finished(report).digest());
            }

            for (&(seed, id, _), want) in jobs.iter().zip(&expected) {
                let poll = format!("{{\"op\":\"poll\",\"id\":{id},\"wait_ms\":60000}}");
                let response = exchange(&mut out, &mut tx, &mut rx, &poll)?;
                let got = done_digest(&response)?;
                let want = format!("{want:016x}");
                if got != want {
                    return Err(format!(
                        "seed {seed}: served digest {got} != direct digest {want}\n{out}"
                    ));
                }
            }

            // Duplicate submission: every ticket must be a dedup hit.
            let dup = exchange(&mut out, &mut tx, &mut rx, &inject_req)?;
            if !job_ids(&dup)?.iter().all(|&(_, _, dedup)| dedup) {
                return Err(format!("duplicate submission was not deduped\n{out}"));
            }

            let status = exchange(&mut out, &mut tx, &mut rx, "{\"op\":\"status\"}")?;
            let sobj = status.as_obj("status").map_err(|e| e.to_string())?;
            let counters = get(sobj, "counters")
                .and_then(|c| c.as_obj("counters"))
                .map_err(|e| e.to_string())?;
            let completed = get(counters, "completed")
                .and_then(|v| v.as_u64("completed"))
                .map_err(|e| e.to_string())?;
            let panics = get(counters, "panics")
                .and_then(|v| v.as_u64("panics"))
                .map_err(|e| e.to_string())?;
            if completed != 3 || panics != 0 {
                return Err(format!(
                    "status: expected 3 completed / 0 panics, got {completed}/{panics}\n{out}"
                ));
            }

            // Streamed replay journal: record seed 3's campaign server-side,
            // pull it in sequence-numbered chunks, replay it bit for bit.
            let journal_req = wire::submit_request(
                "smoke",
                1,
                &prog,
                &w.small_args,
                &sim,
                &[3],
                true,
                rate,
                "all",
                true,
                "direct",
                None,
                true,
                None,
            );
            let jr = exchange(&mut out, &mut tx, &mut rx, &journal_req)?;
            let jid = job_ids(&jr)?
                .first()
                .map(|&(_, id, _)| id)
                .ok_or("journal submit returned no job")?;
            let poll = format!("{{\"op\":\"poll\",\"id\":{jid},\"wait_ms\":60000}}");
            let jdone = exchange(&mut out, &mut tx, &mut rx, &poll)?;
            let jdigest = done_digest(&jdone)?;
            if jdigest != format!("{:016x}", expected[1]) {
                return Err(format!(
                    "journal job digest {jdigest} != direct digest of seed 3\n{out}"
                ));
            }
            let mut text = String::new();
            let mut seq = 0u64;
            loop {
                let req = format!("{{\"op\":\"journal\",\"id\":{jid},\"seq\":{seq}}}");
                let chunk = exchange(&mut out, &mut tx, &mut rx, &req)?;
                let cobj = chunk.as_obj("journal chunk").map_err(|e| e.to_string())?;
                if get(cobj, "ok").and_then(|v| v.as_bool("ok")) != Ok(true) {
                    return Err(format!("journal chunk {seq} refused\n{out}"));
                }
                text.push_str(
                    get(cobj, "data")
                        .and_then(|d| d.as_str("data"))
                        .map_err(|e| e.to_string())?,
                );
                if get(cobj, "last").and_then(|l| l.as_bool("last")) == Ok(true) {
                    break;
                }
                seq += 1;
            }
            let journal =
                Journal::from_json(&text).map_err(|e| format!("streamed journal: {e}"))?;
            let replayed = replay_journal(&journal).map_err(|e| format!("replay: {e}"))?;
            if Some(recorded_outcome(&replayed)) != journal.outcome {
                return Err(format!(
                    "streamed journal did not replay bit for bit\n{out}"
                ));
            }
            let _ = writeln!(
                out,
                "smoke: journal streamed in {} chunk(s), replayed bit for bit",
                seq + 1
            );

            // Warm start: snapshot the clean run's prefix, submit it, and the
            // served digest must still equal the cold run's.
            let prefix = (base.instructions / 2).max(1);
            let snap = snapshot_risc_prefix(&prog, &w.small_args, sim.clone(), false, prefix)
                .map_err(|e| e.to_string())?;
            if snap.at_instruction() == 0 {
                return Err("warm-start snapshot covers no prefix".into());
            }
            let warm_req = wire::submit_request(
                "smoke",
                1,
                &prog,
                &w.small_args,
                &sim,
                &[0],
                false,
                0,
                "none",
                false,
                "direct",
                None,
                false,
                Some(&snap),
            );
            let wr = exchange(&mut out, &mut tx, &mut rx, &warm_req)?;
            let wid = job_ids(&wr)?
                .first()
                .map(|&(_, id, _)| id)
                .ok_or("warm-start submit returned no job")?;
            let poll = format!("{{\"op\":\"poll\",\"id\":{wid},\"wait_ms\":60000}}");
            let wdone = exchange(&mut out, &mut tx, &mut rx, &poll)?;
            let wdigest = done_digest(&wdone)?;
            if wdigest != format!("{:016x}", expected[0]) {
                return Err(format!(
                    "warm-start digest {wdigest} != cold digest (prefix {} insns)\n{out}",
                    snap.at_instruction()
                ));
            }
            let _ = writeln!(
                out,
                "smoke: warm start skipped {} prefix instruction(s), digest unchanged",
                snap.at_instruction()
            );

            // A tampered snapshot must land as a structured rejection.
            let tampered = snap
                .to_json()
                .replace("\"halted\":false", "\"halted\":true");
            let reject_req = tampered_snapshot_request(&prog, &w.small_args, &sim, &tampered);
            let rr = exchange(&mut out, &mut tx, &mut rx, &reject_req)?;
            let rid = job_ids(&rr)?
                .first()
                .map(|&(_, id, _)| id)
                .ok_or("tampered submit returned no job")?;
            let poll = format!("{{\"op\":\"poll\",\"id\":{rid},\"wait_ms\":60000}}");
            let rdone = exchange(&mut out, &mut tx, &mut rx, &poll)?;
            if done_kind(&rdone)? != "snapshot-rejected" {
                return Err(format!("tampered snapshot was not rejected\n{out}"));
            }

            // Counters surface the durability story.
            let status = exchange(&mut out, &mut tx, &mut rx, "{\"op\":\"status\"}")?;
            let sobj = status.as_obj("status").map_err(|e| e.to_string())?;
            let counters = get(sobj, "counters")
                .and_then(|c| c.as_obj("counters"))
                .map_err(|e| e.to_string())?;
            let rejected = get(counters, "snapshots_rejected")
                .and_then(|v| v.as_u64("snapshots_rejected"))
                .map_err(|e| e.to_string())?;
            if rejected != 1 {
                return Err(format!(
                    "expected 1 rejected snapshot, got {rejected}\n{out}"
                ));
            }

            let bye = exchange(&mut out, &mut tx, &mut rx, "{\"op\":\"shutdown\"}")?;
            let bobj = bye.as_obj("shutdown").map_err(|e| e.to_string())?;
            if get(bobj, "ok").and_then(|v| v.as_bool("ok")) != Ok(true) {
                return Err(format!("shutdown not acknowledged\n{out}"));
            }
            Ok((clean_req, inject_req, expected))
        })();
        let (clean_req, inject_req, expected) = match gates {
            Ok(v) => v,
            Err(e) => {
                // Unblock the accept loop so the scope's implicit join of
                // the server thread terminates, then surface the failure.
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let _ = s.write_all(b"{\"op\":\"shutdown\"}\n");
                    let mut ack = String::new();
                    let _ = BufReader::new(s).read_line(&mut ack);
                }
                return Err(e);
            }
        };
        server
            .join()
            .map_err(|_| "server thread panicked".to_owned())?
            .map_err(|e| format!("server: {e}"))?;

        // Crash-recovery law, end to end: a real server process, a real
        // kill -9, a real restart with --recover.
        kill_restart_gate(&mut out, &clean_req, &inject_req, &expected)?;

        let _ = writeln!(
            out,
            "smoke: 3 jobs bit-identical, dedup ok, journal streamed, warm start ok, \
             recovery ok, clean shutdown"
        );
        Ok(out.clone())
    });
    result
}

/// A submit request wrapping an intentionally corrupted snapshot body
/// (which still parses, so the rejection happens at restore time).
fn tampered_snapshot_request(
    prog: &risc1_core::Program,
    args: &[i32],
    sim: &SimConfig,
    snapshot_json: &str,
) -> String {
    let mut w = risc1_core::json::Writer::new();
    w.obj_open();
    w.key("op");
    w.str("submit");
    w.key("client");
    w.str("smoke");
    w.key("program");
    wire::write_program(&mut w, prog);
    w.key("args");
    w.arr_open();
    for &a in args {
        w.num(i128::from(a));
    }
    w.arr_close();
    w.key("cfg");
    risc1_core::journal::write_config(&mut w, sim);
    // Same seed as the completed warm-start job: the dedup key folds the
    // snapshot's full content, so the tampered body must miss the cache
    // and reach restore-time verification.
    w.key("seeds");
    w.arr_open();
    w.num(0);
    w.arr_close();
    w.key("inject");
    w.bool(false);
    w.key("snapshot");
    w.raw(snapshot_json);
    w.obj_close();
    w.finish()
}

fn done_kind(response: &Json) -> Result<String, String> {
    let obj = response.as_obj("response").map_err(|e| e.to_string())?;
    let result = get(obj, "result")
        .and_then(|r| r.as_obj("result"))
        .map_err(|e| e.to_string())?;
    get(result, "kind")
        .and_then(|k| k.as_str("kind"))
        .map(str::to_owned)
        .map_err(|e| e.to_string())
}

/// A spawned server that is killed if the gate errors out early.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Reads the `serving on <addr>` announcement from a child's stderr.
fn read_serving_addr(stderr: &mut std::process::ChildStderr) -> Result<String, String> {
    let mut lines = BufReader::new(stderr).lines();
    for line in &mut lines {
        let line = line.map_err(|e| format!("child stderr: {e}"))?;
        if let Some(addr) = line.strip_prefix("serving on ") {
            return Ok(addr.trim().to_owned());
        }
    }
    Err("child exited before announcing its address".into())
}

fn connect(addr: &str) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let rx = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    Ok((stream, rx))
}

/// Spawn a durable server, admit the smoke campaign, `kill -9` the
/// process, restart it with `--recover`, and require every pre-crash job
/// id to answer with a digest bit-identical to direct execution.
///
/// Skipped (with a transcript note) when not running as the installed
/// `risc1` binary — e.g. from a unit-test harness, which must not re-spawn
/// itself.
fn kill_restart_gate(
    out: &mut String,
    clean_req: &str,
    inject_req: &str,
    expected: &[u64],
) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    if exe.file_stem().and_then(|s| s.to_str()) != Some("risc1") {
        let _ = writeln!(
            out,
            "smoke: kill-restart gate skipped (not running as the risc1 binary)"
        );
        return Ok(());
    }
    // Under target/ rather than the system temp dir: a failing gate leaves
    // the log behind, where CI uploads target/wal-artifacts/ for offline
    // inspection. The success path below removes it.
    let wal =
        std::path::Path::new("target/wal-artifacts").join(format!("smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal);

    // Server one: admit the campaign, then die hard.
    let mut child = ChildGuard(
        std::process::Command::new(&exe)
            .args(["serve", "--tcp", "127.0.0.1:0", "--wal-dir"])
            .arg(&wal)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn server: {e}"))?,
    );
    let addr = read_serving_addr(child.0.stderr.as_mut().expect("piped stderr"))?;
    let _ = writeln!(out, "smoke: durable server on {addr}");
    let (mut tx, mut rx) = connect(&addr)?;
    let clean = exchange(out, &mut tx, &mut rx, clean_req)?;
    let injected = exchange(out, &mut tx, &mut rx, inject_req)?;
    let mut jobs = job_ids(&clean)?;
    jobs.extend(job_ids(&injected)?);
    if jobs.len() != expected.len() {
        return Err(format!(
            "expected {} admitted jobs, got {jobs:?}",
            expected.len()
        ));
    }
    // The admissions are in the log (they were before the tickets were
    // issued); now the process dies mid-campaign.
    child.0.kill().map_err(|e| format!("kill: {e}"))?;
    let _ = child.0.wait();
    let _ = writeln!(out, "smoke: server killed (SIGKILL) mid-campaign");

    // Server two: recover the log and serve the original ids.
    let mut child = ChildGuard(
        std::process::Command::new(&exe)
            .args(["serve", "--tcp", "127.0.0.1:0", "--recover"])
            .arg(&wal)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn recovered server: {e}"))?,
    );
    let addr = read_serving_addr(child.0.stderr.as_mut().expect("piped stderr"))?;
    let _ = writeln!(out, "smoke: recovered server on {addr}");
    let (mut tx, mut rx) = connect(&addr)?;
    for (&(seed, id, _), want) in jobs.iter().zip(expected) {
        let poll = format!("{{\"op\":\"poll\",\"id\":{id},\"wait_ms\":60000}}");
        let response = exchange(out, &mut tx, &mut rx, &poll)?;
        let got = done_digest(&response)?;
        let want = format!("{want:016x}");
        if got != want {
            return Err(format!(
                "recovery: seed {seed} digest {got} != direct digest {want}\n{out}"
            ));
        }
    }
    let status = exchange(out, &mut tx, &mut rx, "{\"op\":\"status\"}")?;
    let sobj = status.as_obj("status").map_err(|e| e.to_string())?;
    let counters = get(sobj, "counters")
        .and_then(|c| c.as_obj("counters"))
        .map_err(|e| e.to_string())?;
    let replayed = get(counters, "wal_replayed")
        .and_then(|v| v.as_u64("wal_replayed"))
        .map_err(|e| e.to_string())?;
    let reseeded = get(counters, "wal_reseeded")
        .and_then(|v| v.as_u64("wal_reseeded"))
        .map_err(|e| e.to_string())?;
    if (replayed + reseeded) as usize != expected.len() {
        return Err(format!(
            "recovery counters {replayed}+{reseeded} do not cover {} admitted jobs",
            expected.len()
        ));
    }
    let _ = writeln!(
        out,
        "smoke: recovered {reseeded} result(s) from the WAL, re-ran {replayed}, \
         all digests bit-identical"
    );
    let bye = exchange(out, &mut tx, &mut rx, "{\"op\":\"shutdown\"}")?;
    let bobj = bye.as_obj("shutdown").map_err(|e| e.to_string())?;
    if get(bobj, "ok").and_then(|v| v.as_bool("ok")) != Ok(true) {
        return Err("recovered server did not acknowledge shutdown".into());
    }
    let _ = child.0.wait();
    let _ = std::fs::remove_dir_all(&wal);
    Ok(())
}
