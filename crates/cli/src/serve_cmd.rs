//! `risc1 serve`: the fault-tolerant batch execution service, over TCP or
//! stdin/stdout, plus the `--smoke` self-test CI gates on.

use risc1_core::json::{get, Json, Parser};
use risc1_core::{InjectConfig, SimConfig};
use risc1_ir::{
    compile_risc, run_risc, run_risc_deadline, run_risc_injected, RiscOpts, TimedOutcome,
};
use risc1_serve::{serve_lines, serve_tcp, wire, ExecService, JobOutput, ServiceConfig};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};

type CliResult = Result<String, String>;

struct ServeOpts {
    mode: Mode,
    threads: Option<usize>,
    queue_cap: Option<usize>,
    cache_cap: Option<usize>,
    artifact_dir: Option<String>,
}

enum Mode {
    Tcp(String),
    Stdin,
    Smoke,
}

fn parse_opts(rest: &[String]) -> Result<ServeOpts, String> {
    let mut mode = None;
    let mut threads = None;
    let mut queue_cap = None;
    let mut cache_cap = None;
    let mut artifact_dir = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tcp" => {
                let v = it.next().ok_or("--tcp needs an address (host:port)")?;
                mode = Some(Mode::Tcp(v.clone()));
            }
            "--stdin" => mode = Some(Mode::Stdin),
            "--smoke" => mode = Some(Mode::Smoke),
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                threads = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --threads value `{v}`: {e}"))?,
                );
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                queue_cap = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --queue-cap value `{v}`: {e}"))?,
                );
            }
            "--cache-cap" => {
                let v = it.next().ok_or("--cache-cap needs a value")?;
                cache_cap = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --cache-cap value `{v}`: {e}"))?,
                );
            }
            "--artifact-dir" => {
                let v = it.next().ok_or("--artifact-dir needs a path")?;
                artifact_dir = Some(v.clone());
            }
            other => return Err(format!("unknown serve flag `{other}`")),
        }
    }
    Ok(ServeOpts {
        mode: mode.ok_or("serve needs a mode: --tcp <addr> | --stdin | --smoke")?,
        threads,
        queue_cap,
        cache_cap,
        artifact_dir,
    })
}

fn service_config(opts: &ServeOpts) -> ServiceConfig {
    let mut cfg = ServiceConfig::default();
    if let Some(t) = opts.threads {
        cfg.threads = t.max(1);
    }
    if let Some(q) = opts.queue_cap {
        cfg.queue_cap = q.max(1);
    }
    if let Some(c) = opts.cache_cap {
        cfg.cache_cap = c.max(1);
    }
    if let Some(d) = &opts.artifact_dir {
        cfg.artifact_dir = d.clone();
    }
    cfg
}

/// `risc1 serve --tcp <addr> | --stdin | --smoke [tuning flags]`.
///
/// # Errors
/// Flag errors, bind failures, or (in smoke mode) any transcript check
/// that fails.
pub fn run(rest: &[String]) -> CliResult {
    let opts = parse_opts(rest)?;
    let cfg = service_config(&opts);
    match &opts.mode {
        Mode::Tcp(addr) => {
            let listener =
                TcpListener::bind(addr.as_str()).map_err(|e| format!("bind {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            // Announce the bound address immediately (port 0 resolves here)
            // so scripted clients can connect before the server returns.
            eprintln!("serving on {local}");
            let service = ExecService::start(cfg);
            serve_tcp(&service, listener).map_err(|e| format!("serve: {e}"))?;
            Ok(format!("serve: clean shutdown ({local})\n"))
        }
        Mode::Stdin => {
            let service = ExecService::start(cfg);
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let shut = serve_lines(&service, stdin.lock(), stdout.lock())
                .map_err(|e| format!("serve: {e}"))?;
            if !shut {
                service.shutdown();
            }
            Ok("serve: clean shutdown (stdin)\n".to_owned())
        }
        Mode::Smoke => smoke(cfg),
    }
}

/// One request/response exchange over the smoke connection, appended to
/// the transcript.
fn exchange(
    out: &mut String,
    tx: &mut TcpStream,
    rx: &mut BufReader<TcpStream>,
    request: &str,
) -> Result<Json, String> {
    tx.write_all(request.as_bytes())
        .and_then(|()| tx.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    rx.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
    let _ = writeln!(out, "> {request}");
    let _ = writeln!(out, "< {}", line.trim_end());
    Parser::new(line.trim_end())
        .parse_document()
        .map_err(|e| format!("response is not valid JSON: {e}"))
}

fn job_ids(response: &Json) -> Result<Vec<(u64, u64, bool)>, String> {
    let obj = response.as_obj("response").map_err(|e| e.to_string())?;
    let jobs = get(obj, "jobs")
        .and_then(|j| j.as_arr("jobs"))
        .map_err(|e| e.to_string())?;
    jobs.iter()
        .map(|j| {
            let j = j.as_obj("job")?;
            Ok((
                get(j, "seed")?.as_u64("seed")?,
                get(j, "id")?.as_u64("id")?,
                get(j, "dedup")?.as_bool("dedup")?,
            ))
        })
        .collect::<Result<Vec<_>, risc1_core::json::JsonError>>()
        .map_err(|e| e.to_string())
}

fn done_digest(response: &Json) -> Result<String, String> {
    let obj = response.as_obj("response").map_err(|e| e.to_string())?;
    let state = get(obj, "state")
        .and_then(|s| s.as_str("state"))
        .map_err(|e| e.to_string())?;
    if state != "done" {
        return Err(format!("job not done after wait: state {state}"));
    }
    let result = get(obj, "result")
        .and_then(|r| r.as_obj("result"))
        .map_err(|e| e.to_string())?;
    get(result, "digest")
        .and_then(|d| d.as_str("digest"))
        .map(str::to_owned)
        .map_err(|e| e.to_string())
}

/// The CI smoke gate: start a real TCP server, drive a 3-job mixed
/// campaign (one clean, two injected — faults included) through sockets,
/// assert every result is bit-identical to direct execution, exercise
/// dedup, and shut down cleanly. The transcript is the output.
fn smoke(mut cfg: ServiceConfig) -> CliResult {
    let w = risc1_workloads::by_id("fib").ok_or("smoke workload `fib` missing")?;
    let prog = compile_risc(&w.module, RiscOpts::default()).map_err(|e| e.to_string())?;
    let (_, base) = run_risc(&prog, &w.small_args).map_err(|e| e.to_string())?;
    let sim = SimConfig {
        fuel: base.instructions * 3 + 10_000,
        ..SimConfig::default()
    };
    let rate = (4 * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32;

    cfg.queue_cap = cfg.queue_cap.min(16);
    let service = ExecService::start(cfg);
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(out, "smoke: serving on {addr}");
    let result = std::thread::scope(|scope| -> CliResult {
        let server = scope.spawn(|| serve_tcp(&service, listener));

        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let mut rx = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut tx = stream;

        // 1 clean job + 2 injected jobs (all modes, recovery on).
        let clean_req = wire::submit_request(
            "smoke",
            1,
            &prog,
            &w.small_args,
            &sim,
            &[0],
            false,
            0,
            "none",
            false,
            "direct",
            None,
        );
        let inject_req = wire::submit_request(
            "smoke",
            1,
            &prog,
            &w.small_args,
            &sim,
            &[3, 11],
            true,
            rate,
            "all",
            true,
            "direct",
            None,
        );
        let clean = exchange(&mut out, &mut tx, &mut rx, &clean_req)?;
        let injected = exchange(&mut out, &mut tx, &mut rx, &inject_req)?;
        let mut jobs = job_ids(&clean)?;
        jobs.extend(job_ids(&injected)?);
        if jobs.len() != 3 || jobs.iter().any(|&(_, _, dedup)| dedup) {
            return Err(format!("expected 3 fresh jobs, got {jobs:?}\n{out}"));
        }

        // Expected digests from direct, in-process execution.
        let clean_direct =
            run_risc_deadline(&prog, &w.small_args, sim.clone(), None, false, None, None)
                .map_err(|e| e.to_string())?;
        let TimedOutcome::Finished(clean_report) = clean_direct else {
            return Err("clean direct run timed out without a deadline".into());
        };
        let mut expected = vec![JobOutput::Finished(clean_report).digest()];
        for &(seed, _, _) in &jobs[1..] {
            let report = run_risc_injected(
                &prog,
                &w.small_args,
                sim.clone(),
                InjectConfig {
                    seed,
                    rate,
                    modes: risc1_core::inject::InjectModes::all(),
                },
                true,
            )
            .map_err(|e| e.to_string())?;
            expected.push(JobOutput::Finished(report).digest());
        }

        for (&(seed, id, _), want) in jobs.iter().zip(&expected) {
            let poll = format!("{{\"op\":\"poll\",\"id\":{id},\"wait_ms\":60000}}");
            let response = exchange(&mut out, &mut tx, &mut rx, &poll)?;
            let got = done_digest(&response)?;
            let want = format!("{want:016x}");
            if got != want {
                return Err(format!(
                    "seed {seed}: served digest {got} != direct digest {want}\n{out}"
                ));
            }
        }

        // Duplicate submission: every ticket must be a dedup hit.
        let dup = exchange(&mut out, &mut tx, &mut rx, &inject_req)?;
        if !job_ids(&dup)?.iter().all(|&(_, _, dedup)| dedup) {
            return Err(format!("duplicate submission was not deduped\n{out}"));
        }

        let status = exchange(&mut out, &mut tx, &mut rx, "{\"op\":\"status\"}")?;
        let sobj = status.as_obj("status").map_err(|e| e.to_string())?;
        let counters = get(sobj, "counters")
            .and_then(|c| c.as_obj("counters"))
            .map_err(|e| e.to_string())?;
        let completed = get(counters, "completed")
            .and_then(|v| v.as_u64("completed"))
            .map_err(|e| e.to_string())?;
        let panics = get(counters, "panics")
            .and_then(|v| v.as_u64("panics"))
            .map_err(|e| e.to_string())?;
        if completed != 3 || panics != 0 {
            return Err(format!(
                "status: expected 3 completed / 0 panics, got {completed}/{panics}\n{out}"
            ));
        }

        let bye = exchange(&mut out, &mut tx, &mut rx, "{\"op\":\"shutdown\"}")?;
        let bobj = bye.as_obj("shutdown").map_err(|e| e.to_string())?;
        if get(bobj, "ok").and_then(|v| v.as_bool("ok")) != Ok(true) {
            return Err(format!("shutdown not acknowledged\n{out}"));
        }
        server
            .join()
            .map_err(|_| "server thread panicked".to_owned())?
            .map_err(|e| format!("server: {e}"))?;
        let _ = writeln!(out, "smoke: 3 jobs bit-identical, dedup ok, clean shutdown");
        Ok(out.clone())
    });
    result
}
