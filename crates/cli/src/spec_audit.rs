//! `risc1 lint --spec-audit` — the spec-table consistency checker.
//!
//! The executable spec table ([`risc1_isa::spec::ENTRIES`]) is the single
//! source of truth for per-instruction semantics. This pass sweeps all 128
//! opcode points and cross-checks every other place an instruction fact
//! lives against the table:
//!
//! * the `Opcode` metadata methods (format, category, cycle counts, memory
//!   references, window motion, transfer/delay-slot behaviour),
//! * the encoder/decoder (every canonical sample round-trips bit for bit,
//!   and every unassigned opcode point is rejected),
//! * the assembler (the printed form of every canonical sample reassembles
//!   to the same word),
//! * the icache's prepared lines (the `base_cycles` a line is stamped with
//!   equals the table's).
//!
//! Any divergence is reported and the command exits nonzero, so CI fails
//! the moment a consumer drifts from the table. [`audit_entries`] takes the
//! table as a parameter so the test suite can perturb a row and prove the
//! audit actually notices.

use risc1_asm::assemble;
use risc1_isa::insn::Instruction;
use risc1_isa::opcode::{Category, Format, Opcode};
use risc1_isa::spec::{self, MemEffect, OperandShape, SpecEntry, Transfer, WindowMotion};

/// Number of distinct checks the audit performs per assigned opcode
/// (metadata agreement, encode/decode, assembler round-trip, icache), used
/// only for the summary line.
const CHECK_FAMILIES: usize = 4;

/// Runs the audit against the real table and renders the result.
///
/// # Errors
/// Returns the rendered divergence report when any cross-check fails.
pub fn run() -> Result<String, String> {
    let problems = audit_entries(&spec::ENTRIES);
    if problems.is_empty() {
        let samples: usize = spec::ENTRIES
            .iter()
            .map(|e| e.canonical_samples().len())
            .sum();
        Ok(format!(
            "spec-audit: ok — {} opcode points audited ({} assigned, {} unassigned), \
             {} canonical samples round-tripped, {} check families per opcode\n",
            spec::OPCODE_POINTS,
            spec::ENTRIES.len(),
            spec::OPCODE_POINTS - spec::ENTRIES.len(),
            samples,
            CHECK_FAMILIES,
        ))
    } else {
        let mut out = String::new();
        for p in &problems {
            out.push_str("spec-audit: ");
            out.push_str(p);
            out.push('\n');
        }
        out.push_str(&format!("spec-audit: {} divergence(s)\n", problems.len()));
        Err(out)
    }
}

/// Cross-checks `entries` (normally [`spec::ENTRIES`]) against the opcode
/// metadata, codec, assembler, and icache. Returns one message per
/// divergence; empty means the tree is consistent.
pub fn audit_entries(entries: &[SpecEntry]) -> Vec<String> {
    let mut problems = Vec::new();

    if entries.len() != Opcode::ALL.len() {
        problems.push(format!(
            "table has {} rows but the ISA defines {} opcodes",
            entries.len(),
            Opcode::ALL.len()
        ));
    }
    for (row, (e, &op)) in entries.iter().zip(Opcode::ALL).enumerate() {
        if e.opcode != op {
            problems.push(format!(
                "row {row} describes {} but Table II order puts {} there",
                e.opcode.mnemonic(),
                op.mnemonic()
            ));
        }
    }

    for code in 0..spec::OPCODE_POINTS as u8 {
        match Opcode::from_code(code) {
            Some(op) => audit_assigned(entries, code, op, &mut problems),
            None => audit_unassigned(entries, code, &mut problems),
        }
    }
    problems
}

/// All checks for one assigned opcode point.
fn audit_assigned(entries: &[SpecEntry], code: u8, op: Opcode, problems: &mut Vec<String>) {
    let rows: Vec<&SpecEntry> = entries.iter().filter(|e| e.opcode == op).collect();
    let entry = match rows.as_slice() {
        [one] => *one,
        [] => {
            problems.push(format!(
                "opcode {:#04x} ({}) has no spec row",
                code,
                op.mnemonic()
            ));
            return;
        }
        many => {
            problems.push(format!(
                "opcode {:#04x} ({}) has {} spec rows",
                code,
                op.mnemonic(),
                many.len()
            ));
            return;
        }
    };
    let m = op.mnemonic();
    let mut diverge = |what: &str, table: String, elsewhere: String| {
        problems.push(format!(
            "{m}: {what} — table says {table}, elsewhere says {elsewhere}"
        ));
    };

    // --- Opcode metadata agreement -------------------------------------
    let shape_format = match entry.shape {
        OperandShape::Short | OperandShape::ShortCond => Format::Short,
        OperandShape::Long | OperandShape::LongCond => Format::Long,
    };
    if shape_format != op.format() {
        diverge(
            "format",
            format!("{:?}", entry.shape),
            format!("{:?}", op.format()),
        );
    }
    let shape_cond = matches!(
        entry.shape,
        OperandShape::ShortCond | OperandShape::LongCond
    );
    if shape_cond != op.uses_condition() {
        diverge(
            "condition field",
            format!("{:?}", entry.shape),
            format!("uses_condition = {}", op.uses_condition()),
        );
    }
    let cat_scc = matches!(op.category(), Category::Arithmetic | Category::Shift);
    if entry.scc_allowed != cat_scc {
        diverge(
            "scc legality",
            format!("scc_allowed = {}", entry.scc_allowed),
            format!("category {:?}", op.category()),
        );
    }
    if u64::from(entry.base_cycles) != op.base_cycles() {
        diverge(
            "base cycles",
            entry.base_cycles.to_string(),
            op.base_cycles().to_string(),
        );
    }
    let mem_refs = match entry.mem {
        MemEffect::None => 0,
        MemEffect::Read { .. } | MemEffect::Write { .. } => 1,
    };
    if mem_refs != op.data_mem_refs() {
        diverge(
            "data memory references",
            mem_refs.to_string(),
            op.data_mem_refs().to_string(),
        );
    }
    if matches!(entry.mem, MemEffect::Read { .. }) != op.is_load() {
        diverge(
            "load classification",
            format!("{:?}", entry.mem),
            format!("is_load = {}", op.is_load()),
        );
    }
    if matches!(entry.mem, MemEffect::Write { .. }) != op.is_store() {
        diverge(
            "store classification",
            format!("{:?}", entry.mem),
            format!("is_store = {}", op.is_store()),
        );
    }
    if (entry.window != WindowMotion::None) != op.moves_window() {
        diverge(
            "window motion",
            format!("{:?}", entry.window),
            format!("moves_window = {}", op.moves_window()),
        );
    }
    if (entry.window == WindowMotion::Push) != op.is_call() {
        diverge(
            "call classification",
            format!("{:?}", entry.window),
            format!("is_call = {}", op.is_call()),
        );
    }
    if (entry.window == WindowMotion::Pop) != op.is_ret() {
        diverge(
            "return classification",
            format!("{:?}", entry.window),
            format!("is_ret = {}", op.is_ret()),
        );
    }
    if (entry.transfer != Transfer::None) != op.is_transfer() {
        diverge(
            "transfer classification",
            format!("{:?}", entry.transfer),
            format!("is_transfer = {}", op.is_transfer()),
        );
    }
    if entry.has_delay_slot != op.has_delay_slot() {
        diverge(
            "delay slot",
            entry.has_delay_slot.to_string(),
            format!("has_delay_slot = {}", op.has_delay_slot()),
        );
    }

    // --- Canonical samples: codec, assembler, icache -------------------
    for insn in entry.canonical_samples() {
        if insn.opcode != op {
            problems.push(format!(
                "{m}: canonical sample `{insn}` has the wrong opcode"
            ));
            continue;
        }
        if let Err(v) = spec::validate(&insn) {
            problems.push(format!(
                "{m}: canonical sample `{insn}` fails its own spec validation: {v}"
            ));
        }
        let word = insn.encode();
        match Instruction::decode(word) {
            Ok(back) if back == insn => {}
            Ok(back) => problems.push(format!(
                "{m}: `{insn}` encodes to {word:#010x} but decodes back as `{back}`"
            )),
            Err(e) => problems.push(format!(
                "{m}: `{insn}` encodes to {word:#010x} which does not decode: {e}"
            )),
        }
        match assemble(&insn.to_string()) {
            Ok(prog) if prog.words == [word] => {}
            Ok(prog) => problems.push(format!(
                "{m}: `{insn}` reassembles to {:?}, not [{word:#010x}]",
                prog.words
            )),
            Err(e) => problems.push(format!(
                "{m}: printed form `{insn}` does not reassemble: {e}"
            )),
        }
        let prepared = risc1_core::prepared_base_cycles(&insn);
        if prepared != entry.base_cycles {
            problems.push(format!(
                "{m}: icache prepares `{insn}` with base_cycles {prepared}, table says {}",
                entry.base_cycles
            ));
        }
    }
}

/// All checks for one unassigned opcode point: nothing anywhere may claim it.
fn audit_unassigned(entries: &[SpecEntry], code: u8, problems: &mut Vec<String>) {
    if let Some(e) = entries.iter().find(|e| e.opcode as u8 == code) {
        problems.push(format!(
            "unassigned opcode {:#04x} has a spec row ({})",
            code,
            e.opcode.mnemonic()
        ));
    }
    if spec::entry_for_code(code).is_some() {
        problems.push(format!(
            "unassigned opcode {:#04x} resolves via entry_for_code",
            code
        ));
    }
    let word = u32::from(code) << 25;
    if Instruction::decode(word).is_ok() {
        problems.push(format!(
            "unassigned opcode {:#04x} decodes (word {word:#010x}) — \
             the decoder is less strict than the table",
            code
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_tree_is_consistent() {
        let problems = audit_entries(&spec::ENTRIES);
        assert!(problems.is_empty(), "unexpected divergences: {problems:#?}");
        let report = run().expect("audit passes on the real table");
        assert!(report.contains("spec-audit: ok"), "{report}");
        assert!(report.contains("128 opcode points"), "{report}");
    }

    #[test]
    fn a_perturbed_cycle_count_is_caught() {
        // The negative test the acceptance criteria demand: nudge one row's
        // base_cycles and the audit must notice both disagreeing consumers
        // (the Opcode metadata and the icache's prepared lines).
        let mut table = spec::ENTRIES;
        table[0].base_cycles += 1;
        let problems = audit_entries(&table);
        assert!(
            problems.iter().any(|p| p.contains("base cycles")),
            "metadata divergence not reported: {problems:#?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("icache prepares")),
            "icache divergence not reported: {problems:#?}"
        );
    }

    #[test]
    fn a_misordered_table_is_caught() {
        let mut table = spec::ENTRIES;
        table.swap(0, 2);
        let problems = audit_entries(&table);
        assert!(
            problems.iter().any(|p| p.contains("Table II order")),
            "{problems:#?}"
        );
    }

    #[test]
    fn a_wrong_delay_slot_claim_is_caught() {
        let mut table = spec::ENTRIES;
        let jmp = table
            .iter_mut()
            .find(|e| e.opcode == Opcode::Jmp)
            .expect("jmp row");
        jmp.has_delay_slot = false;
        let problems = audit_entries(&table);
        assert!(
            problems.iter().any(|p| p.contains("delay slot")),
            "{problems:#?}"
        );
    }
}
