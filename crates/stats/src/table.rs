//! Minimal fixed-width table rendering for experiment output.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names, text).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A text table: headers plus rows, rendered with aligned columns.
///
/// ```
/// use risc1_stats::Table;
/// let mut t = Table::new(&["benchmark", "cycles"]);
/// t.row(vec!["acker".into(), "123456".into()]);
/// let s = t.to_string();
/// assert!(s.contains("acker"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows extend the table.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn columns(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0)
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self.columns();
        let mut w = vec![0; cols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    fn align(cell: &str) -> Align {
        // Numbers (and ratios like "2.5x", percentages) right-align.
        let t = cell.trim_end_matches(['x', '%', '±']);
        if !t.is_empty() && t.chars().all(|c| c.is_ascii_digit() || ".-+e".contains(c)) {
            Align::Right
        } else {
            Align::Left
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String], head: bool| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w - cell.chars().count();
                let aligned = if head || Self::align(cell) == Align::Left {
                    format!("{cell}{}", " ".repeat(pad))
                } else {
                    format!("{}{cell}", " ".repeat(pad))
                };
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&aligned);
            }
            writeln!(f, "{}", line.trim_end())
        };
        render_row(f, &self.headers, true)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row, false)?;
        }
        Ok(())
    }
}

/// Formats a ratio as the paper prints them, e.g. `2.4x`.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "—".to_string()
    } else {
        format!("{:.2}x", num / den)
    }
}

/// Formats a fraction as a percentage, e.g. `37.5%`.
pub fn percent(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "n"]);
        t.row(vec!["a".into(), "5".into()]);
        t.row(vec!["long-name".into(), "123".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("long-name"));
        // numeric column right-aligned: "5" under "123"'s last digit
        let c5 = lines[2].rfind('5').unwrap();
        let c3 = lines[3].rfind('3').unwrap();
        assert_eq!(c5, c3);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "extra".into()]);
        t.row(vec![]);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(s.contains("extra"));
    }

    #[test]
    fn ratio_and_percent_formatting() {
        assert_eq!(ratio(5.0, 2.0), "2.50x");
        assert_eq!(ratio(1.0, 0.0), "—");
        assert_eq!(percent(0.375), "37.5%");
    }

    #[test]
    fn alignment_classifier() {
        assert_eq!(Table::align("123"), Align::Right);
        assert_eq!(Table::align("2.50x"), Align::Right);
        assert_eq!(Table::align("37.5%"), Align::Right);
        assert_eq!(Table::align("acker"), Align::Left);
        assert_eq!(Table::align(""), Align::Left);
    }
}
