//! # `risc1-stats` — measurement harness and table rendering
//!
//! Every experiment in the evaluation follows the same shape: compile a
//! workload for both machines, run it, and view the counters as a table.
//! This crate provides that plumbing once:
//!
//! * [`measure::measure`] — compile + run one workload on RISC I and CX,
//!   returning a [`measure::Measurement`] with every counter both tables
//!   and figures draw from;
//! * [`table::Table`] — fixed-width text tables (the format the experiment
//!   binaries print, mirroring the paper's tables).

pub mod measure;
pub mod table;

pub use measure::{measure, measure_risc, measure_with, Measurement};
pub use table::Table;
