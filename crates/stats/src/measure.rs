//! Compile-and-measure harness: one workload → counters for both machines.

use risc1_cisc::CxStats;
use risc1_core::{ExecStats, SimConfig};
use risc1_ir::{compile_cx, compile_mc, compile_risc, run_cx, run_mc, run_risc_with, RiscOpts};
use risc1_m68::McStats;
use risc1_workloads::Workload;

/// Everything measured from running one workload on both machines with the
/// same arguments.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload id.
    pub id: &'static str,
    /// The common result value (asserted equal across machines).
    pub result: i32,
    /// RISC I dynamic counters.
    pub risc: ExecStats,
    /// CX dynamic counters.
    pub cx: CxStats,
    /// MC (16-bit-class machine) dynamic counters.
    pub mc: McStats,
    /// RISC I static code size in bytes.
    pub risc_code_bytes: u64,
    /// CX static code size in bytes.
    pub cx_code_bytes: u64,
    /// MC static code size in bytes.
    pub mc_code_bytes: u64,
}

impl Measurement {
    /// CX cycles over RISC I cycles — the paper's headline speed ratio
    /// (>1 means RISC I wins).
    pub fn speedup(&self) -> f64 {
        self.cx.cycles as f64 / self.risc.cycles.max(1) as f64
    }

    /// RISC I code bytes over CX code bytes — the paper's code-size
    /// penalty (>1 means RISC I programs are bigger).
    pub fn code_ratio(&self) -> f64 {
        self.risc_code_bytes as f64 / self.cx_code_bytes.max(1) as f64
    }

    /// MC cycles over RISC I cycles (>1 means RISC I wins against the
    /// 16-bit-class machine too).
    pub fn speedup_mc(&self) -> f64 {
        self.mc.cycles as f64 / self.risc.cycles.max(1) as f64
    }

    /// RISC I code bytes over MC code bytes.
    pub fn code_ratio_mc(&self) -> f64 {
        self.risc_code_bytes as f64 / self.mc_code_bytes.max(1) as f64
    }
}

/// Compiles and runs `workload` with the given arguments on both machines
/// (RISC I under `cfg`), asserting the results agree.
///
/// # Panics
/// Panics if either backend fails to compile or run, or if the two
/// machines disagree — a measurement of diverging programs would be
/// meaningless.
pub fn measure_with(workload: &Workload, args: &[i32], cfg: SimConfig) -> Measurement {
    let risc_prog = compile_risc(&workload.module, RiscOpts::default())
        .unwrap_or_else(|e| panic!("{}: risc compile: {e}", workload.id));
    let cx_prog =
        compile_cx(&workload.module).unwrap_or_else(|e| panic!("{}: cx compile: {e}", workload.id));
    let mc_prog =
        compile_mc(&workload.module).unwrap_or_else(|e| panic!("{}: mc compile: {e}", workload.id));
    let (rv, risc) = run_risc_with(&risc_prog, args, cfg)
        .unwrap_or_else(|e| panic!("{}: risc run: {e}", workload.id));
    let (cv, cx) =
        run_cx(&cx_prog, args).unwrap_or_else(|e| panic!("{}: cx run: {e}", workload.id));
    let (mv, mc) =
        run_mc(&mc_prog, args).unwrap_or_else(|e| panic!("{}: mc run: {e}", workload.id));
    assert_eq!(rv, cv, "{}: risc and cx disagree", workload.id);
    assert_eq!(rv, mv, "{}: risc and mc disagree", workload.id);
    Measurement {
        id: workload.id,
        result: rv,
        risc,
        cx,
        mc,
        risc_code_bytes: risc_prog.code_bytes(),
        cx_code_bytes: cx_prog.code_bytes(),
        mc_code_bytes: mc_prog.code_bytes(),
    }
}

/// [`measure_with`] at the default configuration and the workload's
/// paper-scale arguments.
pub fn measure(workload: &Workload) -> Measurement {
    measure_with(workload, &workload.args.clone(), SimConfig::default())
}

/// Runs only the RISC I side (window sweeps, delay-slot studies), with
/// explicit compile options.
///
/// # Panics
/// Panics on compile or run failure.
pub fn measure_risc(
    workload: &Workload,
    args: &[i32],
    cfg: SimConfig,
    opts: RiscOpts,
) -> ExecStats {
    let prog = compile_risc(&workload.module, opts)
        .unwrap_or_else(|e| panic!("{}: risc compile: {e}", workload.id));
    let (_, stats) = run_risc_with(&prog, args, cfg)
        .unwrap_or_else(|e| panic!("{}: risc run: {e}", workload.id));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_workloads::by_id;

    #[test]
    fn measurement_populates_both_sides() {
        let w = by_id("fib").unwrap();
        let m = measure_with(&w, &w.small_args, SimConfig::default());
        assert!(m.risc.instructions > 0);
        assert!(m.cx.instructions > 0);
        assert!(m.risc_code_bytes > 0 && m.cx_code_bytes > 0);
        assert!(m.speedup() > 0.0);
        assert!(m.code_ratio() > 0.0);
    }

    #[test]
    fn call_heavy_workload_favours_risc() {
        // The paper's central claim, in miniature: on call-dominated
        // programs, RISC I with register windows beats the microcoded
        // CISC. Fibonacci shows the full effect; Ackermann recurses so
        // deeply that window overflow traps eat part of the margin (an
        // effect the paper itself analyses), but RISC I still wins.
        let fib = by_id("fib").unwrap();
        let m = measure_with(&fib, &fib.small_args, SimConfig::default());
        assert!(
            m.speedup() > 2.5,
            "expected RISC I ≥2.5x on fib, got {:.2}",
            m.speedup()
        );
        let acker = by_id("acker").unwrap();
        let m = measure_with(&acker, &acker.small_args, SimConfig::default());
        assert!(
            m.speedup() > 1.2,
            "expected RISC I to win acker despite window thrashing, got {:.2}",
            m.speedup()
        );
        assert!(m.risc.window_overflows > 0, "acker must overflow the file");
    }

    #[test]
    fn risc_code_is_larger() {
        // And the paper's concession: fixed 32-bit instructions cost
        // static code size against byte-coded CISC.
        let w = by_id("sieve").unwrap();
        let m = measure_with(&w, &w.small_args, SimConfig::default());
        assert!(
            m.code_ratio() > 1.0,
            "expected RISC I code larger, got {:.2}",
            m.code_ratio()
        );
    }
}
